//! # dynbatch
//!
//! **A batch system with fair scheduling for unpredictably evolving
//! applications** — a from-scratch Rust reproduction of Prabhakaran et
//! al., *"A Batch System with Fair Scheduling for Evolving Applications"*
//! (ICPP 2014).
//!
//! Evolving applications (adaptive-mesh CFD like Quadflow, nested weather
//! simulations, task-parallel codes) cannot predict their resource needs
//! at submission. This crate family provides:
//!
//! * a **Torque-like resource manager** with the paper's extended TM API —
//!   `tm_dynget()` / `tm_dynfree()` — so running jobs can grow and shrink
//!   ([`server`]);
//! * a **Maui-like scheduler** whose iteration (the paper's Algorithm 2)
//!   admits dynamic requests against **dynamic-fairness policies** that
//!   bound the delay inflicted on queued rigid jobs ([`sched`]);
//! * a deterministic **discrete-event simulator** ([`sim`]) and a
//!   **threaded wall-clock daemon** ([`daemon`]) driving the identical
//!   decision code;
//! * the paper's evaluation workloads: the **dynamic ESP benchmark** and
//!   calibrated **Quadflow** models ([`workload`]);
//! * accounting and reporting ([`metrics`]).
//!
//! ## Quickstart
//!
//! ```
//! use dynbatch::core::{CredRegistry, DfsConfig, JobSpec, SchedulerConfig,
//!                      ExecutionModel, SimDuration, SimTime};
//! use dynbatch::cluster::Cluster;
//! use dynbatch::sim::BatchSim;
//! use dynbatch::workload::WorkloadItem;
//!
//! // A 4-node × 8-core cluster under the paper's scheduler settings.
//! let mut sched = SchedulerConfig::paper_eval();
//! sched.dfs = DfsConfig::highest_priority();
//! let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched);
//!
//! // One rigid job and one evolving job that asks for 4 extra cores.
//! let mut reg = CredRegistry::new();
//! let alice = reg.user("alice");
//! let bob = reg.user("bob");
//! let g = reg.group_of(alice);
//! sim.load(&[
//!     WorkloadItem {
//!         at: SimTime::ZERO,
//!         spec: JobSpec::rigid("solver", alice, g, 16, SimDuration::from_secs(600)),
//!     },
//!     WorkloadItem {
//!         at: SimTime::ZERO,
//!         spec: JobSpec::evolving("amr", bob, g, 8,
//!             ExecutionModel::esp_evolving(1000, 700, 4)),
//!     },
//! ]);
//! sim.run();
//! assert_eq!(sim.server().accounting().outcomes().len(), 2);
//! assert_eq!(sim.stats().dyn_granted, 1); // the idle cluster granted it
//! ```

pub use dynbatch_cluster as cluster;
pub use dynbatch_core as core;
pub use dynbatch_daemon as daemon;
pub use dynbatch_metrics as metrics;
pub use dynbatch_sched as sched;
pub use dynbatch_server as server;
pub use dynbatch_sim as sim;
pub use dynbatch_simtime as simtime;
pub use dynbatch_workload as workload;
