//! `dynbatch` — command-line front end to the batch-system simulator.
//!
//! ```text
//! dynbatch esp [--static] [--seed N] [--seeds K] [--dfs-cap SECS]
//!              [--nodes N] [--cores-per-node C] [--walltime-factor F]
//!     Run the (dynamic or static) ESP benchmark and print a Table-II row.
//!
//! dynbatch run --trace FILE.json | --swf FILE.swf
//!              [--dfs-cap SECS] [--nodes N] [--cores-per-node C]
//!              [--evolving-fraction F] [--max-jobs N]
//!              [--guarantee] [--shrink-malleable] [--grow-malleable]
//!              [--csv-waits FILE] [--csv-gantt FILE]
//!     Run a workload trace and print the summary; optionally dump the
//!     per-job waiting-time series and/or the Gantt schedule as CSV.
//!
//! dynbatch gen-esp --out FILE.json [--static] [--seed N]
//!     Write the ESP workload as a replayable JSON trace.
//! ```

use dynbatch::core::{CredRegistry, DfsConfig, SchedulerConfig, SimDuration};
use dynbatch::metrics::{gantt_csv, render_csv, render_table2, waits_by_submission};
use dynbatch::sim::{run_experiment, ExperimentConfig};
use dynbatch::workload::{generate_esp, parse_swf, EspConfig, SwfConfig, Trace, WorkloadItem};
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs plus boolean `--key`.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(raw[i].clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad value {v:?}")),
        }
    }
}

fn sched_from(args: &Args) -> Result<SchedulerConfig, String> {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = match args.get("dfs-cap") {
        None => DfsConfig::highest_priority(),
        Some(v) => {
            let cap: u64 = v
                .parse()
                .map_err(|_| format!("--dfs-cap: bad value {v:?}"))?;
            DfsConfig::uniform_target(cap, SimDuration::from_hours(1))
        }
    };
    s.reservation_depth = args.num("reservation-depth", 5usize)?;
    s.reservation_delay_depth = args.num("reservation-delay-depth", 5usize)?;
    s.guarantee_evolving = args.has("guarantee");
    s.shrink_malleable_for_dyn = args.has("shrink-malleable");
    s.grow_malleable_on_idle = args.has("grow-malleable");
    Ok(s)
}

fn cluster_from(args: &Args, sched: SchedulerConfig) -> Result<ExperimentConfig, String> {
    Ok(ExperimentConfig {
        label: "cli".into(),
        nodes: args.num("nodes", 15u32)?,
        cores_per_node: args.num("cores-per-node", 8u32)?,
        sched,
    })
}

fn cmd_esp(args: &Args) -> Result<(), String> {
    let seeds: u64 = args.num("seeds", 1u64)?;
    let base_seed: u64 = args.num("seed", EspConfig::default().seed)?;
    let mut summaries = Vec::new();
    let mut acc: Option<dynbatch::metrics::RunSummary> = None;
    let n = seeds.max(1);
    for k in 0..n {
        let mut wl_cfg = if args.has("static") {
            EspConfig::paper_static()
        } else {
            EspConfig::paper_dynamic()
        };
        wl_cfg.seed = if n == 1 { base_seed } else { base_seed + k };
        wl_cfg.walltime_factor = args.num("walltime-factor", 1.0f64)?;
        let mut reg = CredRegistry::new();
        let wl = generate_esp(&wl_cfg, &mut reg);
        let cfg = cluster_from(args, sched_from(args)?)?;
        let r = run_experiment(&cfg, &wl);
        acc = Some(match acc {
            None => r.summary,
            Some(mut a) => {
                a.makespan += r.summary.makespan;
                a.utilization += r.summary.utilization;
                a.throughput_jobs_per_min += r.summary.throughput_jobs_per_min;
                a.satisfied_dyn_jobs += r.summary.satisfied_dyn_jobs;
                a
            }
        });
    }
    let mut s = acc.expect("at least one run");
    s.makespan = s.makespan / n;
    s.utilization /= n as f64;
    s.throughput_jobs_per_min /= n as f64;
    s.satisfied_dyn_jobs /= n as usize;
    s.label = if args.has("static") {
        "ESP-static".into()
    } else {
        "ESP-dynamic".into()
    };
    summaries.push(s);
    print!("{}", render_table2(&summaries));
    Ok(())
}

fn load_workload(args: &Args) -> Result<Vec<WorkloadItem>, String> {
    if let Some(path) = args.get("trace") {
        let trace = Trace::load(path).map_err(|e| format!("{path}: {e}"))?;
        Ok(trace.items)
    } else if let Some(path) = args.get("swf") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            total_cores: args.num("nodes", 15u32)? * args.num("cores-per-node", 8u32)?,
            evolving_fraction: args.num("evolving-fraction", 0.0f64)?,
            max_jobs: args.num("max-jobs", 0usize)?,
            ..Default::default()
        };
        parse_swf(&text, &cfg, &mut reg).map_err(|e| e.to_string())
    } else {
        Err("run: need --trace FILE.json or --swf FILE.swf".into())
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let wl = load_workload(args)?;
    let cfg = cluster_from(args, sched_from(args)?)?;
    let r = run_experiment(&cfg, &wl);
    print!("{}", render_table2(std::slice::from_ref(&r.summary)));
    println!(
        "\njobs: {}  grants: {}  rejects: {} ({} fairness)  resizes: {}  preemptions: {}",
        r.outcomes.len(),
        r.stats.dyn_granted,
        r.stats.dyn_rejected,
        r.stats.dyn_rejected_fairness,
        r.stats.malleable_resizes,
        r.stats.preemptions,
    );
    if let Some(path) = args.get("csv-gantt") {
        std::fs::write(path, gantt_csv(&r.outcomes)).map_err(|e| format!("{path}: {e}"))?;
        println!("schedule (Gantt) written to {path}");
    }
    if let Some(path) = args.get("csv-waits") {
        let rows: Vec<Vec<f64>> = waits_by_submission(&r.outcomes)
            .into_iter()
            .map(|(i, w)| vec![i as f64, w])
            .collect();
        std::fs::write(path, render_csv(&["job", "wait_s"], &rows))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("waiting-time series written to {path}");
    }
    Ok(())
}

fn cmd_gen_esp(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("gen-esp: need --out FILE.json")?;
    let mut wl_cfg = if args.has("static") {
        EspConfig::paper_static()
    } else {
        EspConfig::paper_dynamic()
    };
    wl_cfg.seed = args.num("seed", EspConfig::default().seed)?;
    let mut reg = CredRegistry::new();
    let items = generate_esp(&wl_cfg, &mut reg);
    let trace = Trace::new(
        format!(
            "ESP ({}) seed {}",
            if args.has("static") {
                "static"
            } else {
                "dynamic"
            },
            wl_cfg.seed
        ),
        reg,
        items,
    );
    trace.save(out).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {} jobs to {out}", trace.items.len());
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let result = match args.positional.first().map(String::as_str) {
        Some("esp") => cmd_esp(&args),
        Some("run") => cmd_run(&args),
        Some("gen-esp") => cmd_gen_esp(&args),
        _ => {
            eprintln!(
                "usage: dynbatch <esp|run|gen-esp> [flags]\n\
                 see the module docs (src/bin/dynbatch.rs) for the flag list"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
