//! Quickstart: submit rigid and evolving jobs to a simulated cluster and
//! watch the dynamic allocation machinery work.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, ExecutionModel, JobSpec, SchedulerConfig, SimDuration, SimTime,
};
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;

fn main() {
    // A small cluster: 4 nodes × 8 cores, scheduled with the paper's
    // settings (ReservationDepth = ReservationDelayDepth = 5, EASY
    // backfill) and dynamic requests at highest priority.
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched);

    let mut reg = CredRegistry::new();
    let alice = reg.user("alice");
    let bob = reg.user("bob");
    let carol = reg.user("carol");
    let g = reg.group_of(alice);

    sim.load(&[
        // A rigid solver: 16 cores for 10 minutes, fixed.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("solver", alice, g, 16, SimDuration::from_secs(600)),
        },
        // An evolving AMR code: starts on 8 cores; after 16 % of its
        // 1000 s static runtime it discovers it needs 4 more cores, and
        // with them would finish in 700 s instead.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving("amr", bob, g, 8, ExecutionModel::esp_evolving(1000, 700, 4)),
        },
        // A latecomer that has to queue.
        WorkloadItem {
            at: SimTime::from_secs(60),
            spec: JobSpec::rigid("post", carol, g, 24, SimDuration::from_secs(300)),
        },
    ]);

    sim.run();

    println!("simulated time: {}", sim.now());
    println!(
        "scheduler cycles: {}, dynamic grants: {}, rejections: {}",
        sim.stats().cycles,
        sim.stats().dyn_granted,
        sim.stats().dyn_rejected
    );
    println!(
        "\n{:<8} {:>6} {:>8} {:>10} {:>10} {:>7}",
        "job", "cores", "wait", "runtime", "turnaround", "grants"
    );
    for o in sim.server().accounting().outcomes() {
        println!(
            "{:<8} {:>2}->{:<3} {:>8} {:>10} {:>10} {:>7}",
            o.name,
            o.cores_requested,
            o.cores_final,
            o.wait(),
            o.runtime(),
            o.turnaround(),
            o.dyn_grants
        );
    }
    let util = sim.utilization().utilization(sim.last_completion());
    println!("\nsystem utilization: {:.1} %", util * 100.0);
}
