//! A live run of the *threaded* batch system — real daemons, real
//! channels, wall-clock time — modelling the paper's nested-weather-
//! simulation motivation: a main simulation that must spawn an auxiliary
//! analysis alongside itself without disturbing its own allocation, then
//! release the extra nodes when the phenomenon passes.
//!
//! One wall millisecond is one model millisecond; the whole demo takes a
//! couple of seconds.
//!
//! ```text
//! cargo run --example live_daemon
//! ```

use dynbatch::core::{
    DfsConfig, ExecutionModel, GroupId, JobClass, JobSpec, JobState, SchedulerConfig, SimDuration,
    UserId,
};
use dynbatch::daemon::{DaemonConfig, DaemonHandle};
use dynbatch::server::TmResponse;
use std::time::Duration;

fn rigid(name: &str, user: u32, cores: u32, millis: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        user: UserId(user),
        group: GroupId(0),
        class: JobClass::Rigid,
        cores,
        walltime: SimDuration::from_millis(millis),
        exec: ExecutionModel::Fixed {
            duration: SimDuration::from_millis(millis),
        },
        priority_boost: 0,
        suppress_backfill_while_queued: false,
        malleable: None,
        moldable: None,
        dyn_timeout: None,
        queue: None,
    }
}

fn main() {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    let daemon = DaemonHandle::start(DaemonConfig {
        nodes: 8,
        cores_per_node: 8,
        sched,
        faults: None,
        replication: None,
    });
    println!("booted: 1 pbs_server + 8 pbs_mom daemons (8 cores each)\n");

    // The main weather simulation: 24 cores, long-running.
    let weather = daemon
        .qsub(rigid("weather-main", 0, 24, 2_000))
        .expect("qsub weather");
    assert!(daemon.wait_for_state(weather, JobState::Running, Duration::from_secs(2)));
    println!("weather-main running on 24 cores");

    // A storm appears: track it with a nested simulation on extra nodes,
    // leaving the main allocation untouched.
    let (resp, latency) = daemon.tm_dynget_timed(weather, 16);
    let added = match resp {
        TmResponse::DynGranted { added } => {
            println!(
                "tm_dynget(+16 cores) GRANTED in {:?}: hostlist {added}",
                latency
            );
            added
        }
        other => {
            println!("tm_dynget denied: {other:?}");
            daemon.shutdown();
            return;
        }
    };

    // ... nested simulation runs on `added` (an MPI code would
    // MPI_Comm_spawn onto that hostlist) ...
    std::thread::sleep(Duration::from_millis(300));

    // The storm dissipates: release the extra nodes — any subset may go
    // back (no SLURM-style all-or-nothing restriction).
    let half = {
        let mut a = added.clone();
        a.take(8)
    };
    match daemon.tm_dynfree(weather, half) {
        TmResponse::Freed => println!("released 8 of the 16 extra cores (partial dyn_free)"),
        other => println!("unexpected: {other:?}"),
    }

    // Meanwhile other users' rigid jobs keep flowing through the queue.
    for i in 0..4 {
        daemon
            .qsub(rigid(&format!("batch{i}"), 1 + i, 16, 150))
            .expect("qsub batch");
    }
    println!("4 rigid jobs submitted behind the weather job");

    assert!(
        daemon.await_drained(Duration::from_secs(10)),
        "workload drains"
    );
    println!("\nall jobs completed; shutting down daemons");
    daemon.shutdown();
}
