//! The full Feitelson/Rudolph job taxonomy (paper §I) in one simulation:
//!
//! * **rigid** — fixed cores, fixed runtime;
//! * **moldable** — the batch system picks the start width from a range;
//! * **malleable** — the batch system resizes it *while it runs*;
//! * **evolving** — the *application* asks for more mid-run
//!   (`tm_dynget()`), gated by dynamic fairness.
//!
//! ```text
//! cargo run --example all_classes
//! ```

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, ExecutionModel, JobSpec, SchedulerConfig, SimDuration, SimTime,
};
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;

fn main() {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::uniform_target(600, SimDuration::from_hours(1));
    sched.shrink_malleable_for_dyn = true;
    sched.grow_malleable_on_idle = true;
    let mut sim = BatchSim::new(Cluster::homogeneous(6, 8), sched);

    let mut reg = CredRegistry::new();
    let users: Vec<_> = ["rigid", "moldy", "elastic", "amr"]
        .iter()
        .map(|n| reg.user(n))
        .collect();
    let g = reg.group_of(users[0]);

    sim.load(&[
        // Rigid: 16 cores for 10 minutes, not negotiable.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("rigid", users[0], g, 16, SimDuration::from_secs(600)),
        },
        // Moldable: takes whatever width in [8, 32] lets it start now.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::moldable("moldable", users[1], g, 16, 8, 32, 19_200),
        },
        // Malleable: a work pool the scheduler stretches over idle cores
        // and squeezes when an evolving job needs room.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::malleable("malleable", users[2], g, 8, 4, 48, 14_400),
        },
        // Evolving: realises at 16 % of its runtime that it needs 8 more
        // cores (and would finish in 700 s instead of 1000 s with them).
        WorkloadItem {
            at: SimTime::from_secs(30),
            spec: JobSpec::evolving(
                "evolving",
                users[3],
                g,
                8,
                ExecutionModel::esp_evolving(1000, 700, 8),
            ),
        },
    ]);

    sim.run();

    println!("six nodes × 8 cores; all four job classes in flight\n");
    println!(
        "{:<10} {:<10} {:>7} {:>10} {:>10} {:>8} {:>8}",
        "job", "class", "cores", "wait", "runtime", "dyn-req", "grants"
    );
    for o in sim.server().accounting().outcomes() {
        println!(
            "{:<10} {:<10} {:>2}->{:<3} {:>10} {:>10} {:>8} {:>8}",
            o.name,
            format!("{}", o.class),
            o.cores_requested,
            o.cores_final,
            o.wait(),
            o.runtime(),
            o.dyn_requests,
            o.dyn_grants
        );
    }
    let s = sim.stats();
    println!(
        "\nscheduler: {} cycles, {} dynamic grants, {} malleable resizes, {} s delay charged",
        s.cycles,
        s.dyn_granted,
        s.malleable_resizes,
        s.delay_charged_ms / 1000
    );
    println!(
        "utilization: {:.1} %",
        sim.utilization().utilization(sim.last_completion()) * 100.0
    );
}
