//! Site-style dynamic-fairness configuration (the paper's Fig 6) applied
//! to the paper's Fig 1 scenario.
//!
//! Fig 1: a 6-node cluster. Job A (user01) runs on 2 nodes for 8 hours,
//! job B (user02) on 2 nodes for 4 hours; job C (user03, 4 nodes) queues
//! and would start when B finishes. If A dynamically grabs the 2 idle
//! nodes, C slips a further 4 hours — the unfairness the DFS policies
//! exist to bound. This example parses a Maui-style DFS config and shows
//! the scheduler's verdict on A's request as the policy changes.
//!
//! ```text
//! cargo run --example fair_site_config
//! ```

use dynbatch::core::{
    config::parse_dfs_config, CredRegistry, DfsConfig, QueueId, SchedulerConfig, SimDuration,
    SimTime,
};
use dynbatch::sched::{DynRequest, Maui, QueuedJob, RunningJob, Snapshot};

const HOUR: u64 = 3600;

/// The Fig 1 state as a scheduler snapshot (1 core = 1 node here).
fn fig1_snapshot(reg: &mut CredRegistry) -> Snapshot {
    let user01 = reg.user("user01");
    let user02 = reg.user("user02");
    let user03 = reg.user("user03");
    Snapshot {
        now: SimTime::ZERO,
        total_cores: 6,
        running: vec![
            RunningJob {
                id: dynbatch::core::JobId(1),
                user: user01,
                group: reg.group_of(user01),
                cores: 2,
                start_time: SimTime::ZERO,
                walltime_end: SimTime::from_secs(8 * HOUR),
                backfilled: false,
                reserved_extra: 0,
                malleable: None,
            },
            RunningJob {
                id: dynbatch::core::JobId(2),
                user: user02,
                group: reg.group_of(user02),
                cores: 2,
                start_time: SimTime::ZERO,
                walltime_end: SimTime::from_secs(4 * HOUR),
                backfilled: false,
                reserved_extra: 0,
                malleable: None,
            },
        ],
        queued: vec![QueuedJob {
            id: dynbatch::core::JobId(3),
            user: user03,
            group: reg.group_of(user03),
            queue: QueueId(0),
            cores: 4,
            walltime: SimDuration::from_hours(4),
            submit_time: SimTime::ZERO,
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        }],
        dyn_requests: vec![DynRequest {
            job: dynbatch::core::JobId(1),
            user: user01,
            group: reg.group_of(user01),
            extra_cores: 2,
            remaining_walltime: SimDuration::from_hours(8),
            seq: 0,
            deadline: None,
        }],
        usage: None,
        deltas: None,
    }
}

fn verdict(dfs: DfsConfig, reg: &mut CredRegistry) -> String {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = dfs;
    let mut maui = Maui::new(sched);
    let out = maui.iterate(&fig1_snapshot(reg));
    match &out.dyn_decisions[0] {
        dynbatch::sched::DynDecision::Granted { delays, .. } => {
            let total: u64 = delays.iter().map(|d| d.delay.as_secs()).sum();
            format!("GRANTED (job C delayed by {:.1} h)", total as f64 / 3600.0)
        }
        dynbatch::sched::DynDecision::Rejected { reason, .. } => format!("REJECTED ({reason:?})"),
        dynbatch::sched::DynDecision::Deferred { reason, .. } => format!("DEFERRED ({reason:?})"),
    }
}

fn main() {
    println!("Fig 1 scenario: job A (user01) asks for the 2 idle nodes until its");
    println!("walltime end; queued job C (user03) would slip from t+4h to t+8h.\n");

    // Policy 1: DFS disabled — the Dynamic-HP behaviour.
    let mut reg = CredRegistry::new();
    println!(
        "DFSPolicy NONE:                  {}",
        verdict(DfsConfig::highest_priority(), &mut reg)
    );

    // Policy 2: a uniform 1-hour cumulative cap — the 4 h delay is unfair.
    let mut reg = CredRegistry::new();
    println!(
        "uniform 1 h target cap:          {}",
        verdict(
            DfsConfig::uniform_target(3600, SimDuration::from_hours(24)),
            &mut reg
        )
    );

    // Policy 3: the paper's Fig 6 site configuration, parsed verbatim.
    let fig6 = r"
DFSPOLICY         DFSSINGLEANDTARGETDELAY
DFSINTERVAL       06:00:00
DFSDECAY          0.4
USERCFG[user01]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
                  DFSSINGLEDELAYTIME=0
USERCFG[user02]   DFSDYNDELAYPERM=0
USERCFG[user03]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=0 \
                  DFSSINGLEDELAYTIME=00:30:00
USERCFG[user04]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=02:00:00 \
                  DFSSINGLEDELAYTIME=00:15:00
GROUPCFG[group05] DFSTARGETDELAYTIME=04:00:00
GROUPCFG[group06] DFSDYNDELAYPERM=0
";
    let mut reg = CredRegistry::new();
    let cfg = parse_dfs_config(fig6, &mut reg).expect("Fig 6 parses");
    println!(
        "paper Fig 6 config:              {}",
        verdict(cfg, &mut reg)
    );
    println!("\n(under Fig 6, user03's jobs may each be delayed at most 30 minutes,");
    println!(" so A's 4-hour land-grab is refused — C's reservation stands.)");
}
