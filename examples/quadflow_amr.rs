//! An adaptive-mesh CFD job (the paper's Quadflow scenario) running
//! through the batch system while rigid jobs come and go.
//!
//! The Cylinder test case starts on 16 cores. Each grid adaptation may
//! blow up the cell count; when cells-per-process crosses the threshold
//! the application calls `tm_dynget()` for 16 more cores. Whether it gets
//! them depends on what else occupies the cluster — run and see.
//!
//! ```text
//! cargo run --example quadflow_amr
//! ```

use dynbatch::cluster::Cluster;
use dynbatch::core::{CredRegistry, DfsConfig, JobSpec, SchedulerConfig, SimDuration, SimTime};
use dynbatch::sim::BatchSim;
use dynbatch::workload::{dynamic_breakdown, static_breakdown, QuadflowCase, WorkloadItem};

fn main() {
    let case = QuadflowCase::Cylinder;
    println!(
        "{}: {} phases, growth threshold {} cells/process\n",
        case.name(),
        case.model().phases.len(),
        case.model().threshold_cells_per_proc
    );

    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();

    // Scenario A: a quiet cluster — the request is granted at the final
    // adaptation and the run matches the 32-core static profile.
    // Scenario B: a rigid background job camps on the spare cores for the
    // first 11 hours — the request is denied at the adaptation, and the
    // job crawls through its final phase on 16 cores until it ends.
    for (label, filler_hours) in [("quiet cluster", 0u64), ("busy cluster", 40)] {
        let mut reg = CredRegistry::new();
        let cfd = reg.user("cfd-group");
        let other = reg.user("throughput-group");
        let g = reg.group_of(cfd);
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), sched.clone());

        let mut items = vec![WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving(
                case.name(),
                cfd,
                g,
                case.base_cores(),
                case.execution_model(),
            ),
        }];
        if filler_hours > 0 {
            items.push(WorkloadItem {
                at: SimTime::ZERO,
                spec: JobSpec::rigid(
                    "background",
                    other,
                    g,
                    104,
                    SimDuration::from_hours(filler_hours),
                ),
            });
        }
        sim.load(&items);
        sim.run();

        let o = sim
            .server()
            .accounting()
            .outcomes()
            .iter()
            .find(|o| o.name == case.name())
            .expect("CFD job completed");
        println!(
            "{label:<14} runtime {:>6.2} h | requests {} | grants {} | final cores {}",
            o.runtime().as_secs_f64() / 3600.0,
            o.dyn_requests,
            o.dyn_grants,
            o.cores_final
        );
    }

    println!("\nreference profiles:");
    for b in [
        static_breakdown(case, 16),
        static_breakdown(case, 32),
        dynamic_breakdown(case),
    ] {
        println!("  {:<22} {:>6.2} h", b.label, b.total_secs() / 3600.0);
    }
}
