//! Replication chaos: the 50-seed leader-kill sweep.
//!
//! Each seed derives a stream-fault mix (frame drops, one-pump delays,
//! batch reorders, follower crash/reseed cycles) and a leader-kill
//! coordinate in `total_appended` space, then drives a scripted scenario
//! on a journaled leader replicated to two followers. When the leader's
//! journal passes the kill coordinate the leader is abandoned (no
//! further pumps — a real crash ships nothing) and the hub promotes the
//! highest-watermark follower.
//!
//! Invariants per seed:
//!
//! 1. **Promoted ≡ crash-free at the replicated watermark** — the
//!    promoted replica's state digest and accounting log are
//!    byte-identical to the reference run at the op boundary its
//!    watermark maps to (every record is an op boundary here:
//!    `snapshot_every = 0`, one mutation record per op).
//! 2. **No acked command lost under `ack_after_replicate`** — ops the
//!    seed marks "gated" block on `await_replicated` before acking, and
//!    the failover report's `acked_lost` stays zero; the unreplicated
//!    tail is explicitly reported via `lost_records`, never silently
//!    dropped.
//! 3. **The promoted leader continues correctly** — the remaining script
//!    driven on the promoted server (fresh scheduler, journal re-enabled
//!    under the new term) ends byte-identical to the reference resumed
//!    from the same boundary by journal recovery.
//! 4. **Survivors re-seed under the new term** — the non-promoted
//!    follower converges to the promoted leader's digest after failover.
//! 5. **Zero leaked threads** — after `shutdown()`, no follower thread
//!    tagged with this seed's prefix survives (`/proc/self/task` scan).
//!
//! If every follower happens to be mid-reseed at the kill (both crashed
//! by the fault plan, catch-up frames still in flight), promotion
//! correctly refuses; the seed then asserts the daemon's fallback — the
//! dead leader's own journal recovers byte-identically.

use dynbatch::cluster::{Allocation, Cluster};
use dynbatch::core::{
    json, AllocPolicy, DfsConfig, ExecutionModel, GroupId, JobId, JobSpec, NodeId, SchedulerConfig,
    SimDuration, SimTime, UserId,
};
use dynbatch::sched::Maui;
use dynbatch::server::replication::{HubConfig, ReplFaultPlan, ReplicationHub};
use dynbatch::server::{Journal, PbsServer};
use dynbatch::simtime::SplitMix64;
use std::time::Duration;

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn rigid(name: &str, user: u32, cores: u32, secs: u64) -> JobSpec {
    JobSpec::rigid(
        name,
        UserId(user),
        GroupId(0),
        cores,
        SimDuration::from_secs(secs),
    )
}

fn evolving(name: &str, user: u32, cores: u32) -> JobSpec {
    JobSpec::evolving(
        name,
        UserId(user),
        GroupId(0),
        cores,
        ExecutionModel::esp_evolving(1846, 1230, 4),
    )
}

fn hp_maui() -> Maui {
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::highest_priority();
    Maui::new(cfg)
}

/// One scripted input (subset of the crash-recovery sweep's op set; each
/// op appends at most one journal record under `snapshot_every = 0`).
enum Op {
    Sub(JobSpec),
    Cycle,
    Finish(JobId),
    DynGet {
        job: JobId,
        extra: u32,
        deadline: Option<u64>,
    },
    DynFree {
        job: JobId,
        node: u32,
        cores: u32,
    },
    Qdel(JobId),
    Fail(u32),
    Repair(u32),
    Expire,
}

fn apply_op(s: &mut PbsServer, m: &mut Maui, op: &Op, now: SimTime) {
    match op {
        Op::Sub(spec) => {
            let _ = s.qsub(spec.clone(), now);
        }
        Op::Cycle => {
            let snap = s.snapshot_incremental(now);
            let outcome = m.iterate(&snap);
            s.apply(&outcome, now);
        }
        Op::Finish(job) => {
            let _ = s.job_finished(*job, now);
            m.dfs_mut().job_left_queue(*job);
        }
        Op::DynGet {
            job,
            extra,
            deadline,
        } => {
            let _ = s.tm_dynget_negotiated(*job, *extra, deadline.map(t), now);
        }
        Op::DynFree { job, node, cores } => {
            let released = Allocation::from_pairs([(NodeId(*node), *cores)]);
            let _ = s.tm_dynfree(*job, &released, now);
        }
        Op::Qdel(job) => {
            let _ = s.qdel(*job, now);
        }
        Op::Fail(node) => {
            let _ = s.node_failed(NodeId(*node), now);
        }
        Op::Repair(node) => {
            let _ = s.node_repaired(NodeId(*node));
        }
        Op::Expire => {
            let _ = s.expire_dyn_requests(now);
        }
    }
}

/// The scripted scenario: submissions, negotiated growth, shrink, qdel,
/// a node failure/repair, finishes. Job ids sequential: A=1, B=2, EV=3,
/// D=4, C=5, E=6.
fn script() -> Vec<(u64, Op)> {
    const A: JobId = JobId(1);
    const B: JobId = JobId(2);
    const EV: JobId = JobId(3);
    const D: JobId = JobId(4);
    const E: JobId = JobId(6);
    vec![
        (0, Op::Sub(rigid("A", 0, 16, 100))),
        (0, Op::Cycle),
        (1, Op::Sub(rigid("B", 1, 64, 500))),
        (1, Op::Cycle),
        (2, Op::Sub(evolving("EV", 2, 8))),
        (2, Op::Cycle),
        (3, Op::Sub(evolving("D", 3, 8))),
        (3, Op::Cycle),
        (
            5,
            Op::DynGet {
                job: EV,
                extra: 4,
                deadline: Some(60),
            },
        ),
        (5, Op::Cycle),
        (
            6,
            Op::DynGet {
                job: D,
                extra: 100,
                deadline: Some(400),
            },
        ),
        (6, Op::Cycle),
        (7, Op::Sub(rigid("C", 4, 40, 50))),
        (7, Op::Cycle),
        (20, Op::Qdel(D)),
        (20, Op::Cycle),
        (
            30,
            Op::DynFree {
                job: EV,
                node: 11,
                cores: 2,
            },
        ),
        (30, Op::Cycle),
        (40, Op::Fail(2)),
        (40, Op::Cycle),
        (50, Op::Repair(2)),
        (50, Op::Cycle),
        (105, Op::Finish(A)),
        (105, Op::Cycle),
        (130, Op::Sub(rigid("E", 5, 8, 40))),
        (130, Op::Cycle),
        (170, Op::Finish(E)),
        (170, Op::Cycle),
        (450, Op::Expire),
        (450, Op::Cycle),
        (520, Op::Finish(B)),
        (520, Op::Cycle),
        (600, Op::Finish(EV)),
        (600, Op::Cycle),
    ]
}

fn accounting_text(s: &PbsServer) -> String {
    s.accounting()
        .outcomes()
        .iter()
        .map(|o| json::model::outcome_to_json(o).to_string_compact())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Reference run (no replication, no crash): per-op journal clones,
/// digests, accounting prefixes and `total_appended` coordinates.
struct Reference {
    journals: Vec<Journal>,
    digest_at: Vec<String>,
    accounting_at: Vec<String>,
    appended_at: Vec<u64>,
    /// Fresh-server baseline (genesis only): watermark 1.
    base_journal: Journal,
    base_digest: String,
}

fn run_reference() -> Reference {
    let mut s = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
    s.enable_journal(0);
    let mut m = hp_maui();
    let base_journal = s.journal().unwrap().clone();
    let base_digest = s.state_digest();
    let mut journals = Vec::new();
    let mut digest_at = Vec::new();
    let mut accounting_at = Vec::new();
    let mut appended_at = Vec::new();
    for (secs, op) in &script() {
        apply_op(&mut s, &mut m, op, t(*secs));
        journals.push(s.journal().unwrap().clone());
        digest_at.push(s.state_digest());
        accounting_at.push(accounting_text(&s));
        appended_at.push(s.journal().unwrap().total_appended());
    }
    Reference {
        journals,
        digest_at,
        accounting_at,
        appended_at,
        base_journal,
        base_digest,
    }
}

/// Maps a replicated watermark to the op boundary whose state it equals.
/// With `snapshot_every = 0` every record position past the genesis
/// snapshot is exactly one op's mutation record, so `w == 1` is the
/// fresh server and any other `w` is the last op that appended it.
fn boundary_of(reference: &Reference, w: u64) -> Option<usize> {
    if w <= 1 {
        return None;
    }
    let mut found = None;
    for (i, &a) in reference.appended_at.iter().enumerate() {
        if a == w {
            found = Some(i);
        }
        if a > w {
            break;
        }
    }
    Some(found.expect("watermark lands on an op boundary"))
}

/// Daemon threads still alive that carry `tag`.
fn tagged_threads(tag: &str) -> Vec<String> {
    let mut live = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return live; // not Linux: skip the leak check
    };
    for e in entries.flatten() {
        if let Ok(name) = std::fs::read_to_string(e.path().join("comm")) {
            let name = name.trim_end().to_string();
            if name.starts_with(tag) {
                live.push(name);
            }
        }
    }
    live
}

fn assert_no_tagged_threads(tag: &str) {
    for _ in 0..250 {
        if tagged_threads(tag).is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!(
        "follower threads leaked past shutdown: {:?}",
        tagged_threads(tag)
    );
}

/// Drives the remaining script (`from` onward) on `s` with a fresh
/// scheduler; returns final digest + accounting.
fn drive_rest(mut s: PbsServer, from: usize) -> (String, String) {
    let mut m = hp_maui();
    for (secs, op) in script().iter().skip(from) {
        apply_op(&mut s, &mut m, op, t(*secs));
    }
    (s.state_digest(), accounting_text(&s))
}

fn chaos_run(seed: u64, reference: &Reference) {
    let mut rng = SplitMix64::new(seed).derive(0x5245_504c);
    let total = *reference.appended_at.last().unwrap();
    // Kill somewhere past the first mutation but possibly before the end.
    let kill_at = 2 + rng.next_below(total - 1);
    let horizon = total;

    let tag = format!("rc{seed:02}f");
    let cfg = HubConfig {
        digest_every: [0u64, 4, 32][rng.next_below(3) as usize],
        faults: ReplFaultPlan::from_seed(seed, 2, horizon),
        ..HubConfig::default()
    };
    let mut hub = ReplicationHub::new(cfg);
    hub.add_follower(&format!("{tag}0"));
    hub.add_follower(&format!("{tag}1"));

    let mut s = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
    s.enable_journal(0);
    let mut m = hp_maui();
    hub.pump(&s); // genesis seed

    let mut acked_through = 0u64;
    let mut killed_after_op: Option<usize> = None;
    for (i, (secs, op)) in script().iter().enumerate() {
        apply_op(&mut s, &mut m, op, t(*secs));
        let appended = s.journal().unwrap().total_appended();
        if appended >= kill_at {
            // Leader dies at this boundary: nothing more is streamed.
            killed_after_op = Some(i);
            break;
        }
        hub.pump(&s);
        // ~40% of boundaries ack under the replication gate.
        if rng.chance_permille(400) {
            assert!(
                hub.await_replicated(&s, appended),
                "seed {seed}: replication gate wedged at record {appended}"
            );
            acked_through = appended;
        }
    }
    let killed_after_op = killed_after_op.expect("kill coordinate inside the script");
    let old_appended = s.journal().unwrap().total_appended();

    match hub.fail_over(old_appended, acked_through) {
        Ok((mut promoted, report)) => {
            // Invariant 2: the gate means no acked command is ever lost.
            assert_eq!(
                report.acked_lost, 0,
                "seed {seed}: acked-but-unreplicated records lost"
            );
            assert_eq!(
                report.lost_records,
                old_appended - report.promoted_watermark,
                "seed {seed}: unreplicated tail must be reported exactly"
            );
            assert_eq!(report.new_term, 2);

            // Invariant 1: promoted ≡ crash-free reference at the
            // replicated watermark.
            let w = report.promoted_watermark;
            assert!(w >= acked_through, "seed {seed}: promoted below the gate");
            let (ref_digest, ref_accounting, resume_at) = match boundary_of(reference, w) {
                None => (reference.base_digest.clone(), String::new(), 0usize),
                Some(b) => (
                    reference.digest_at[b].clone(),
                    reference.accounting_at[b].clone(),
                    b + 1,
                ),
            };
            assert_eq!(
                promoted.state_digest(),
                ref_digest,
                "seed {seed}: promoted state diverges from reference at watermark {w}"
            );
            assert_eq!(
                accounting_text(&promoted),
                ref_accounting,
                "seed {seed}: promoted accounting diverges at watermark {w}"
            );

            // Invariant 3: the promoted leader continues the remaining
            // script exactly like a journal-recovered reference would.
            promoted.enable_journal(0); // new term, fresh genesis
            hub.pump(&promoted); // survivors re-seed under term 2
            let ref_server = match boundary_of(reference, w) {
                None => PbsServer::recover(reference.base_journal.clone()),
                Some(b) => PbsServer::recover(reference.journals[b].clone()),
            }
            .expect("reference journal replays");
            let (ref_final, ref_final_acct) = drive_rest(ref_server, resume_at);

            let mut m2 = hp_maui();
            for (secs, op) in script().iter().skip(resume_at) {
                apply_op(&mut promoted, &mut m2, op, t(*secs));
                hub.pump(&promoted);
            }
            assert_eq!(
                promoted.state_digest(),
                ref_final,
                "seed {seed}: post-failover run diverges from reference"
            );
            assert_eq!(
                accounting_text(&promoted),
                ref_final_acct,
                "seed {seed}: post-failover accounting diverges"
            );

            // Invariant 4: the surviving follower converges to the new
            // leader's digest under the bumped term.
            let target = promoted.journal().unwrap().total_appended();
            assert!(
                hub.await_replicated(&promoted, target),
                "seed {seed}: survivor never converged under term 2"
            );
            let leader_digest = promoted.state_digest();
            for idx in 0..hub.follower_names().len() {
                if let Some(d) = hub.follower_digest(idx) {
                    assert_eq!(
                        d, leader_digest,
                        "seed {seed}: survivor {idx} diverged under term 2"
                    );
                }
            }
        }
        Err(e) => {
            // Both followers mid-reseed at the kill: promotion must
            // refuse loudly, and the daemon's fallback — recovering the
            // dead leader's own journal — loses nothing.
            assert!(
                e.contains("no live follower"),
                "seed {seed}: unexpected failover error: {e}"
            );
            let recovered = PbsServer::recover(s.take_journal().unwrap()).expect("fallback");
            assert_eq!(
                recovered.state_digest(),
                reference.digest_at[killed_after_op],
                "seed {seed}: fallback journal recovery diverged"
            );
        }
    }

    // Invariant 5: no leaked follower threads.
    hub.shutdown();
    assert_no_tagged_threads(&tag);
}

fn sweep(seeds: std::ops::Range<u64>) {
    let reference = run_reference();
    let seeds: Vec<u64> = seeds.collect();
    dynbatch::sim::sweep::parallel_tasks(seeds.len(), 4, |i| chaos_run(seeds[i], &reference));
}

#[test]
fn replication_chaos_seeds_00_09() {
    sweep(0..10);
}

#[test]
fn replication_chaos_seeds_10_19() {
    sweep(10..20);
}

#[test]
fn replication_chaos_seeds_20_29() {
    sweep(20..30);
}

#[test]
fn replication_chaos_seeds_30_39() {
    sweep(30..40);
}

#[test]
fn replication_chaos_seeds_40_49() {
    sweep(40..50);
}

/// Satellite 3 at the suite level: the leader compacts aggressively
/// while a follower attached *after* compaction discarded the early
/// records can only catch up via snapshot transfer — and must still
/// converge byte-identically, with `total_appended` coordinates
/// unaffected by the handoff.
#[test]
fn compaction_handoff_preserves_digest_and_coordinates() {
    let mut s = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
    s.enable_journal(3); // compact every 3 records
    let mut m = hp_maui();

    let mut hub = ReplicationHub::new(HubConfig::default());
    hub.add_follower("rcomp0");
    hub.pump(&s);

    let all = script();
    let half = all.len() / 2;
    for (secs, op) in &all[..half] {
        apply_op(&mut s, &mut m, op, t(*secs));
        hub.pump(&s);
    }
    // The early records must actually be gone (compaction happened), yet
    // total_appended keeps counting monotonically.
    let j = s.journal().unwrap();
    assert!(j.records_from(1).is_none(), "expected compacted prefix");
    let mid_appended = j.total_appended();

    // Late follower: snapshot transfer is its only way in.
    hub.add_follower("rcomp1");
    for (secs, op) in &all[half..] {
        apply_op(&mut s, &mut m, op, t(*secs));
        hub.pump(&s);
    }
    let target = s.journal().unwrap().total_appended();
    assert!(target > mid_appended);
    assert!(hub.await_replicated(&s, target), "catch-up wedged");
    let leader = s.state_digest();
    for idx in 0..2 {
        assert_eq!(
            hub.follower_digest(idx).expect("live follower"),
            leader,
            "follower {idx} diverged across the compaction handoff"
        );
    }
    hub.shutdown();
    assert_no_tagged_threads("rcomp");
}
