//! Streaming ingestion equality suite: for every workload source, a
//! replay through the lazy bounded-lookahead pipeline must be
//! byte-identical — end-state fingerprint, summary, per-job outcomes,
//! simulator counters — to the eager materialize-everything path, at
//! every lookahead window. Plus the interaction corners the pipeline
//! introduces: qdel of a not-yet-streamed submission, simulator
//! recycling across streamed runs, and the bounded-residency guarantee
//! itself.

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, FairshareMode, SchedulerConfig, SimDuration, SimTime,
};
use dynbatch::sim::{
    run_experiment_materialized, run_experiment_streamed, run_experiment_streamed_on, BatchSim,
    ExperimentConfig, IngestOptions,
};
use dynbatch::workload::{
    stream_esp, stream_quadflow, stream_synthetic, EspConfig, QuadflowConfig, SwfConfig, SwfSource,
    SyntheticConfig, WorkloadItem,
};

fn config() -> ExperimentConfig {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
    ExperimentConfig::paper_cluster("ingest-eq", sched)
}

/// A synthetic mix the 120-core paper cluster is not overloaded by, so
/// queues stay short and the suite stays fast.
fn synth_cfg(seed: u64, jobs: usize) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        jobs,
        users: 6,
        total_cores: 120,
        mean_interarrival: SimDuration::from_secs(30),
        runtime_secs: (60, 900),
        cores: (1, 8),
        evolving_fraction: 0.3,
        extra_cores: 4,
        det_factor: 0.7,
    }
}

const WINDOWS: [SimDuration; 2] = [SimDuration::ZERO, SimDuration::from_hours(2)];

/// Runs one workload through the materialized path (the reference) and
/// through the streamed path at both windows, asserting full equality.
fn assert_stream_matches<F, S>(label: &str, make_stream: F)
where
    F: Fn() -> S,
    S: Iterator<Item = WorkloadItem>,
{
    assert_stream_matches_under(config(), label, make_stream)
}

fn assert_stream_matches_under<F, S>(cfg: ExperimentConfig, label: &str, make_stream: F)
where
    F: Fn() -> S,
    S: Iterator<Item = WorkloadItem>,
{
    let opts = IngestOptions {
        fingerprint: true,
        ..Default::default()
    };
    let items: Vec<WorkloadItem> = make_stream().collect();
    let reference = run_experiment_materialized(&cfg, &items, &opts);
    assert!(reference.fingerprint.is_some());
    for window in WINDOWS {
        let streamed = run_experiment_streamed(
            &cfg,
            make_stream(),
            &IngestOptions {
                window,
                ..opts.clone()
            },
        );
        assert_eq!(
            streamed.fingerprint, reference.fingerprint,
            "{label}: fingerprint diverged at window {window}"
        );
        assert_eq!(
            streamed.summary, reference.summary,
            "{label}: summary diverged at window {window}"
        );
        assert_eq!(
            streamed.outcomes, reference.outcomes,
            "{label}: outcomes diverged at window {window}"
        );
        assert_eq!(
            streamed.stats, reference.stats,
            "{label}: stats diverged at window {window}"
        );
    }
}

/// Time-aware fairness parity: decayed-usage fairshare (with demotion
/// budgets and a heavy-user DFS penalty in play) reads server state
/// through the published usage snapshot, so the streamed pipeline must
/// stay byte-identical to the materialized reference under it too.
#[test]
fn time_aware_fairness_streams_equal_materialized() {
    let mut cfg = config();
    cfg.sched.fairshare.enabled = true;
    cfg.sched.fairshare.mode = FairshareMode::TimeAware;
    cfg.sched.fairshare.half_life = SimDuration::from_hours(6);
    cfg.sched.fairshare.default_target = 0.15;
    cfg.sched.fairshare.user_budget_core_hours = Some(40.0);
    for seed in [1u64, 2] {
        assert_stream_matches_under(cfg.clone(), &format!("time-aware seed {seed}"), || {
            let mut reg = CredRegistry::new();
            stream_synthetic(&synth_cfg(seed, 60), &mut reg)
        });
    }
}

#[test]
fn esp_streams_equal_materialized() {
    for seed in [1u64, 2, 3] {
        assert_stream_matches(&format!("esp seed {seed}"), || {
            let mut wl = EspConfig::paper_dynamic();
            wl.seed = seed;
            let mut reg = CredRegistry::new();
            stream_esp(&wl, &mut reg)
        });
    }
}

#[test]
fn quadflow_streams_equal_materialized() {
    for seed in [1u64, 2, 3] {
        assert_stream_matches(&format!("quadflow seed {seed}"), || {
            let mut reg = CredRegistry::new();
            stream_quadflow(
                &QuadflowConfig {
                    seed,
                    jobs: 14,
                    ..Default::default()
                },
                &mut reg,
            )
        });
    }
}

#[test]
fn synthetic_streams_equal_materialized() {
    for seed in [1u64, 2, 3] {
        assert_stream_matches(&format!("synthetic seed {seed}"), || {
            let mut reg = CredRegistry::new();
            stream_synthetic(&synth_cfg(seed, 60), &mut reg)
        });
    }
}

#[test]
fn swf_file_streams_equal_materialized() {
    use dynbatch::workload::{parse_swf, write_swf};
    for seed in [1u64, 2, 3] {
        // A trace on disk (here: in a string) parsed twice — slurped
        // eagerly vs streamed through a deliberately tiny BufRead.
        let text = {
            let mut reg = CredRegistry::new();
            let items: Vec<WorkloadItem> =
                stream_synthetic(&synth_cfg(seed, 60), &mut reg).collect();
            write_swf(&items, &reg)
        };
        let swf_cfg = SwfConfig {
            evolving_fraction: 0.25,
            seed,
            ..Default::default()
        };
        let cfg = config();
        let opts = IngestOptions {
            fingerprint: true,
            ..Default::default()
        };
        let mut reg = CredRegistry::new();
        let items = parse_swf(&text, &swf_cfg, &mut reg).expect("trace parses");
        let reference = run_experiment_materialized(&cfg, &items, &opts);
        for window in WINDOWS {
            let reader = std::io::BufReader::with_capacity(8, text.as_bytes());
            let mut src = SwfSource::with_own_registry(reader, swf_cfg.clone());
            let streamed = run_experiment_streamed(
                &cfg,
                &mut src,
                &IngestOptions {
                    window,
                    ..opts.clone()
                },
            );
            assert!(src.error().is_none());
            assert_eq!(
                streamed.fingerprint, reference.fingerprint,
                "swf seed {seed}"
            );
            assert_eq!(streamed.summary, reference.summary);
            assert_eq!(streamed.outcomes, reference.outcomes);
            assert_eq!(streamed.stats, reference.stats);
        }
    }
}

/// The lazy-cancellation corner: a qdel aimed at a submission the stream
/// has not yet produced must cancel it cleanly — never resurrect it when
/// the lookahead window finally reaches its index — and must equal the
/// eager path, where the same qdel cancels an already-scheduled Submit.
#[test]
fn qdel_of_unstreamed_submission_cancels_cleanly() {
    let wl_cfg = synth_cfg(11, 30);
    let sched = config().sched;
    let items: Vec<WorkloadItem> = {
        let mut reg = CredRegistry::new();
        stream_synthetic(&wl_cfg, &mut reg).collect()
    };
    let victim = 25u32; // late in the trace
    let qdel_at = SimTime::ZERO + SimDuration::from_secs(5);
    assert!(
        items[victim as usize].at > qdel_at + SimDuration::from_mins(1),
        "victim must submit well after the qdel fires"
    );

    // Eager: every Submit already scheduled; the qdel cancels the token.
    let mut eager = BatchSim::new(Cluster::homogeneous(15, 8), sched.clone());
    eager.load(&items);
    eager.inject_qdel(qdel_at, victim);
    eager.run();
    assert!(eager.server().is_drained());

    // Streamed, zero window: at qdel time the victim is far beyond the
    // admission horizon, so the qdel marks a not-yet-admitted index.
    let mut streamed = BatchSim::new(Cluster::homogeneous(15, 8), sched);
    streamed.inject_qdel(qdel_at, victim);
    streamed.run_streamed(items.iter().cloned(), SimDuration::ZERO);
    assert!(streamed.server().is_drained());

    for sim in [&eager, &streamed] {
        assert_eq!(sim.stats().qdels, 1);
        // The victim never became a job: one fewer outcome than items.
        assert_eq!(sim.server().accounting().recorded(), items.len() as u64 - 1);
    }
    assert_eq!(eager.stats(), streamed.stats());
    assert_eq!(
        eager.server().accounting().digest(),
        streamed.server().accounting().digest()
    );
    assert_eq!(
        eager.server().state_digest(),
        streamed.server().state_digest()
    );
}

/// A recycled simulator must reproduce fresh-simulator streamed results
/// bit for bit — the property the sweep engine's streaming fast path
/// rests on (including across different workloads and low-memory mode).
#[test]
fn streamed_reset_recycling_matches_fresh() {
    let cfg = config();
    let opts = IngestOptions {
        fingerprint: true,
        ..Default::default()
    };
    let make = |seed: u64| {
        let mut reg = CredRegistry::new();
        stream_synthetic(&synth_cfg(seed, 50), &mut reg)
    };
    let fresh_a = run_experiment_streamed(&cfg, make(4), &opts);
    let fresh_b = run_experiment_streamed(&cfg, make(5), &opts);

    let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), cfg.sched.clone());
    // Dirty the simulator with a low-memory run first: reset must restore
    // full retention for the recycled runs that follow.
    let low = run_experiment_streamed_on(
        &mut sim,
        &cfg,
        make(4),
        &IngestOptions {
            low_memory: true,
            fingerprint: true,
            ..Default::default()
        },
    );
    assert!(low.outcomes.is_empty(), "low-memory retains no outcomes");
    assert_eq!(
        low.fingerprint.as_ref().unwrap().accounting_digest,
        fresh_a.fingerprint.as_ref().unwrap().accounting_digest,
        "the accounting digest is retention-mode independent"
    );
    assert_eq!(low.summary, fresh_a.summary);
    assert_eq!(low.stats, fresh_a.stats);

    let recycled_a = run_experiment_streamed_on(&mut sim, &cfg, make(4), &opts);
    let recycled_b = run_experiment_streamed_on(&mut sim, &cfg, make(5), &opts);
    for (recycled, fresh) in [(&recycled_a, &fresh_a), (&recycled_b, &fresh_b)] {
        assert_eq!(recycled.fingerprint, fresh.fingerprint);
        assert_eq!(recycled.summary, fresh.summary);
        assert_eq!(recycled.outcomes, fresh.outcomes);
        assert_eq!(recycled.stats, fresh.stats);
    }
}

/// The bounded-residency guarantee itself: a long trace replayed through
/// a small window keeps admitted-but-unsubmitted residency proportional
/// to the window, not the trace.
#[test]
fn streamed_admission_residency_is_window_bounded() {
    let jobs = 3000usize;
    let wl_cfg = SyntheticConfig {
        mean_interarrival: SimDuration::from_secs(20),
        ..synth_cfg(9, jobs)
    };
    let window = SimDuration::from_mins(30);
    let mut reg = CredRegistry::new();
    let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), config().sched);
    sim.set_low_memory(true);
    sim.run_streamed(stream_synthetic(&wl_cfg, &mut reg), window);
    assert!(sim.server().is_drained());
    assert_eq!(sim.server().accounting().totals().jobs, jobs as u64);
    // ~90 arrivals fit a 30-minute window at 20 s mean interarrival;
    // leave generous headroom for queue-horizon effects, but stay far
    // below the trace length (an eager load would peak at 3000).
    let peak = sim.admission_peak();
    assert!(
        peak <= 800,
        "admission residency {peak} is not window-bounded"
    );

    // And the eager path really does peak at the trace length — the
    // contrast the pipeline exists to remove.
    let mut reg = CredRegistry::new();
    let items: Vec<WorkloadItem> = stream_synthetic(&wl_cfg, &mut reg).collect();
    let mut eager = BatchSim::new(Cluster::homogeneous(15, 8), config().sched);
    eager.load(&items);
    assert_eq!(eager.admission_peak(), jobs);
}
