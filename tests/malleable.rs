//! Malleable-job support (the paper's future work, and §II-B's "stealing
//! resources from malleable jobs" source for dynamic requests).
//!
//! A malleable job is a work pool: the batch system may shrink it toward
//! its minimum to serve an evolving job's `tm_dynget()`, or grow it onto
//! idle cores to soak up waste. All resizes are scheduler-initiated — the
//! defining difference from evolving jobs (paper §I).

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, ExecutionModel, JobSpec, SchedulerConfig, SimDuration, SimTime,
};
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;

fn sched(shrink: bool, grow: bool) -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s.shrink_malleable_for_dyn = shrink;
    s.grow_malleable_on_idle = grow;
    s
}

#[test]
fn work_pool_runtime_is_exact() {
    // 16 000 core-seconds on 16 cores = 1000 s, alone on the cluster.
    let mut reg = CredRegistry::new();
    let u = reg.user("m");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched(false, false));
    sim.load(&[WorkloadItem {
        at: SimTime::ZERO,
        spec: JobSpec::malleable("pool", u, g, 16, 8, 32, 16_000),
    }]);
    sim.run();
    let o = &sim.server().accounting().outcomes()[0];
    assert_eq!(o.runtime(), SimDuration::from_secs(1000));
}

#[test]
fn grow_on_idle_shortens_malleable_jobs() {
    // 32-core cluster; the malleable job submits at 16 cores (max 32). With
    // growing enabled it is immediately topped up to 32 and halves its
    // runtime.
    let run = |grow: bool| {
        let mut reg = CredRegistry::new();
        let u = reg.user("m");
        let g = reg.group_of(u);
        let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched(false, grow));
        sim.load(&[WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::malleable("pool", u, g, 16, 8, 32, 16_000),
        }]);
        sim.run();
        (
            sim.server().accounting().outcomes()[0].runtime(),
            sim.stats().malleable_resizes,
        )
    };
    let (without, r0) = run(false);
    let (with, r1) = run(true);
    assert_eq!(without, SimDuration::from_secs(1000));
    assert_eq!(with, SimDuration::from_secs(500), "grown 16 → 32 at t=0");
    assert_eq!(r0, 0);
    assert!(r1 >= 1);
}

#[test]
fn grow_respects_reservations() {
    // A rigid job is reserved to start at t=100 on 16 cores; the malleable
    // job may only grow into cores that do not collide with that
    // reservation.
    let mut reg = CredRegistry::new();
    let u = reg.user("m");
    let o = reg.user("r");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched(false, true));
    sim.load(&[
        // Fills 16 cores until t=100.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("filler", o, g, 16, SimDuration::from_secs(100)),
        },
        // Malleable on the other 16, max 32, long walltime.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::malleable("pool", u, g, 16, 8, 32, 160_000),
        },
        // A rigid job that must get 16 cores when the filler ends.
        WorkloadItem {
            at: SimTime::from_secs(10),
            spec: JobSpec::rigid("waiter", o, g, 16, SimDuration::from_secs(100)),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let waiter = outcomes.iter().find(|o| o.name == "waiter").unwrap();
    // The malleable job's walltime (work/min = 160000/8 = 20000 s) blankets
    // everything, so the waiter's start hinges on the filler's end alone.
    assert_eq!(
        waiter.start_time,
        SimTime::from_secs(100),
        "the malleable grow must not consume the waiter's reserved cores"
    );
}

#[test]
fn dynamic_request_served_by_shrinking_malleable() {
    // 16 cores total: evolving holds 8, malleable holds 8 (min 4). The
    // evolving job requests +4 — only a malleable shrink can provide them.
    let run = |shrink: bool| {
        let mut reg = CredRegistry::new();
        let e = reg.user("evolving");
        let m = reg.user("malleable");
        let g = reg.group_of(e);
        let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(shrink, false));
        sim.load(&[
            WorkloadItem {
                at: SimTime::ZERO,
                spec: JobSpec::evolving(
                    "grower",
                    e,
                    g,
                    8,
                    ExecutionModel::esp_evolving(1000, 700, 4),
                ),
            },
            WorkloadItem {
                at: SimTime::ZERO,
                spec: JobSpec::malleable("pool", m, g, 8, 4, 8, 8_000),
            },
        ]);
        sim.run();
        let outcomes = sim.server().accounting().outcomes().to_vec();
        (outcomes, sim.stats())
    };

    let (outs, stats) = run(false);
    let grower = outs.iter().find(|o| o.name == "grower").unwrap();
    assert_eq!(
        grower.dyn_grants, 0,
        "no idle cores, no shrinking: rejected"
    );
    assert_eq!(stats.malleable_resizes, 0);

    let (outs, stats) = run(true);
    let grower = outs.iter().find(|o| o.name == "grower").unwrap();
    assert_eq!(
        grower.dyn_grants, 1,
        "served by shrinking the malleable job"
    );
    assert_eq!(grower.cores_final, 12);
    assert!(stats.malleable_resizes >= 1);
    // The malleable job still completes all its work, just more slowly.
    let pool = outs.iter().find(|o| o.name == "pool").unwrap();
    assert!(
        pool.runtime() > SimDuration::from_secs(1000),
        "{}",
        pool.runtime()
    );
}

#[test]
fn shrink_never_goes_below_min() {
    // Malleable min is 6 of 8: only 2 cores can be stolen; a request for
    // 4 must still fail.
    let mut reg = CredRegistry::new();
    let e = reg.user("evolving");
    let m = reg.user("malleable");
    let g = reg.group_of(e);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(true, false));
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving(
                "grower",
                e,
                g,
                8,
                ExecutionModel::esp_evolving(1000, 700, 4),
            ),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::malleable("pool", m, g, 8, 6, 8, 8_000),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let grower = outcomes.iter().find(|o| o.name == "grower").unwrap();
    assert_eq!(grower.dyn_grants, 0, "2 stealable cores cannot satisfy +4");
    // And nothing was shrunk for a failed request.
    assert_eq!(sim.stats().malleable_resizes, 0);
}

#[test]
fn malleable_spec_validation() {
    let mut reg = CredRegistry::new();
    let u = reg.user("m");
    let g = reg.group_of(u);
    let good = JobSpec::malleable("ok", u, g, 8, 4, 16, 1000);
    assert!(good.validate().is_ok());
    let mut bad = good.clone();
    bad.cores = 2; // below min
    assert!(bad.validate().is_err());
    let mut bad = good.clone();
    bad.malleable = Some(dynbatch::core::MalleableRange {
        min_cores: 0,
        max_cores: 4,
    });
    assert!(bad.validate().is_err());
    let mut bad = good.clone();
    bad.malleable = None; // malleable class without a range
    assert!(bad.validate().is_err());
}
