//! The scheduler's before-plan cache is a pure optimisation: over the full
//! dynamic-ESP workload, a simulator run with the cache enabled takes
//! byte-identical dynamic decisions (including every [`DelayCharge`]) and
//! produces byte-identical job outcomes as a run with it disabled.
//!
//! This is the determinism gate for the cached what-if planning path in
//! `dynbatch-sched`: any divergence between the cached and the recomputed
//! "before" plan would surface here as a differing grant, delay charge, or
//! completion record.

use dynbatch::cluster::Cluster;
use dynbatch::core::{CredRegistry, DfsConfig, SchedulerConfig, SimDuration, SimTime};
use dynbatch::sched::DynDecision;
use dynbatch::sim::BatchSim;
use dynbatch::workload::{generate_esp, EspConfig};

/// Runs the dynamic ESP workload and returns the full decision log plus
/// the accounting ledger.
fn run_esp(
    cfg: SchedulerConfig,
    cache: bool,
    seed: u64,
) -> (
    Vec<(SimTime, DynDecision)>,
    Vec<dynbatch::core::JobOutcome>,
    SimTime,
) {
    let mut reg = CredRegistry::new();
    let mut wl_cfg = EspConfig::paper_dynamic();
    wl_cfg.seed = seed;
    let wl = generate_esp(&wl_cfg, &mut reg);
    let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), cfg);
    sim.maui_mut().set_plan_cache_enabled(cache);
    sim.load(&wl);
    sim.run();
    assert!(sim.server().is_drained());
    (
        sim.dyn_decision_log().to_vec(),
        sim.server().accounting().outcomes().to_vec(),
        sim.last_completion(),
    )
}

#[test]
fn cached_and_uncached_runs_are_byte_identical() {
    for (label, dfs) in [
        ("Dyn-HP", DfsConfig::highest_priority()),
        (
            "Dyn-500",
            DfsConfig::uniform_target(500, SimDuration::from_hours(1)),
        ),
        (
            "Dyn-100",
            DfsConfig::uniform_target(100, SimDuration::from_hours(1)),
        ),
    ] {
        for seed in [1u64, 2014] {
            let mut cfg = SchedulerConfig::paper_eval();
            cfg.dfs = dfs.clone();
            let (log_c, out_c, end_c) = run_esp(cfg.clone(), true, seed);
            let (log_u, out_u, end_u) = run_esp(cfg, false, seed);

            // The workload actually exercises the dynamic path.
            assert!(
                log_c.iter().any(|(_, d)| d.is_granted()),
                "{label}/{seed}: no grants — the comparison would be vacuous"
            );
            // Decision-by-decision equality, DelayCharges included
            // (DynDecision::Granted embeds its `delays` vector).
            assert_eq!(log_c, log_u, "{label}/{seed}: dynamic decisions diverged");
            assert_eq!(out_c, out_u, "{label}/{seed}: job outcomes diverged");
            assert_eq!(end_c, end_u, "{label}/{seed}: makespan diverged");
        }
    }
}

#[test]
fn preemption_and_shrink_paths_are_cache_invariant() {
    // The grant path that preempts backfilled jobs or shrinks malleable
    // ones mutates the base profile too — the cache must be invalidated
    // there exactly as in the plain-grant path.
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::highest_priority();
    cfg.preempt_backfilled_for_dyn = true;
    cfg.shrink_malleable_for_dyn = true;
    cfg.grow_malleable_on_idle = true;
    let (log_c, out_c, end_c) = run_esp(cfg.clone(), true, 7);
    let (log_u, out_u, end_u) = run_esp(cfg, false, 7);
    assert_eq!(log_c, log_u);
    assert_eq!(out_c, out_u);
    assert_eq!(end_c, end_u);
}
