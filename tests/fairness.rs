//! Time-aware fairness: end-to-end pins.
//!
//! Three properties the decayed resource-hour machinery must hold at the
//! system level (the unit-level decay/attribution math lives in
//! `dynbatch-sched`):
//!
//! 1. **Static inertness** — with `FairshareMode::Static` (the default),
//!    every new knob (half-life, budgets, targets) is inert: runs are
//!    byte-identical to a config that never mentions them. This is the
//!    "no behaviour change unless opted in" contract of the mode axis.
//! 2. **Determinism** — time-aware runs are byte-identical across
//!    scheduler shard counts and sweep worker counts: fairness state is
//!    fed from the journalled ledger, never from scheduling order noise.
//! 3. **Demote, not deny** — an over-budget owner's job ranks behind
//!    in-budget work but still runs when nothing else wants the cores.

use dynbatch::core::{
    CredRegistry, DfsConfig, FairshareMode, JobId, QueueId, SchedulerConfig, SimDuration, SimTime,
    UserId,
};
use dynbatch::sched::{Maui, QueuedJob, Snapshot, UsageHistory};
use dynbatch::sim::{run_experiment_materialized, run_sweep, ExperimentConfig, IngestOptions};
use dynbatch::workload::{stream_synthetic, SyntheticConfig, WorkloadItem};

fn synth_cfg(seed: u64, jobs: usize) -> SyntheticConfig {
    SyntheticConfig {
        seed,
        jobs,
        users: 6,
        total_cores: 120,
        mean_interarrival: SimDuration::from_secs(30),
        runtime_secs: (60, 900),
        cores: (1, 8),
        evolving_fraction: 0.3,
        extra_cores: 4,
        det_factor: 0.7,
    }
}

fn base() -> ExperimentConfig {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
    ExperimentConfig::paper_cluster("fairness", sched)
}

fn time_aware(mut cfg: ExperimentConfig) -> ExperimentConfig {
    cfg.sched.fairshare.enabled = true;
    cfg.sched.fairshare.mode = FairshareMode::TimeAware;
    cfg.sched.fairshare.half_life = SimDuration::from_hours(6);
    cfg.sched.fairshare.default_target = 0.15;
    cfg.sched.fairshare.user_budget_core_hours = Some(40.0);
    cfg
}

fn items(seed: u64) -> Vec<WorkloadItem> {
    let mut reg = CredRegistry::new();
    stream_synthetic(&synth_cfg(seed, 60), &mut reg).collect()
}

fn fingerprinted(
    cfg: &ExperimentConfig,
    workload: &[WorkloadItem],
) -> dynbatch::sim::ExperimentResult {
    run_experiment_materialized(
        cfg,
        workload,
        &IngestOptions {
            fingerprint: true,
            ..Default::default()
        },
    )
}

/// Static mode must not see the time-aware knobs at all: a config that
/// sets half-life, budgets and targets — but keeps `mode: Static` — runs
/// byte-identically to one that never mentions them.
#[test]
fn static_mode_ignores_time_aware_knobs() {
    let plain = base();
    let mut knobbed = base();
    knobbed.sched.fairshare.default_target = 0.9;
    knobbed.sched.fairshare.user_budget_core_hours = Some(0.001);
    knobbed.sched.fairshare.queue_budget_core_hours = Some(0.001);
    knobbed.sched.fairshare.budget_demotion = 1e12;
    // The half-life is the one knob that *is* server state even in Static
    // mode (the decayed accounts are always maintained, journal-durable,
    // just unread), so it is excluded from the state-digest comparison
    // below and pinned behaviourally instead.
    let mut halved = base();
    halved.sched.fairshare.half_life = SimDuration::from_mins(7);
    for seed in [1u64, 2] {
        let wl = items(seed);
        let a = fingerprinted(&plain, &wl);
        let b = fingerprinted(&knobbed, &wl);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}");
        assert_eq!(a.summary, b.summary, "seed {seed}");
        assert_eq!(a.outcomes, b.outcomes, "seed {seed}");
        assert_eq!(a.stats, b.stats, "seed {seed}");
        let c = fingerprinted(&halved, &wl);
        assert_eq!(
            a.fingerprint.as_ref().unwrap().accounting_digest,
            c.fingerprint.as_ref().unwrap().accounting_digest,
            "seed {seed}: half-life must not steer Static scheduling"
        );
        assert_eq!(a.summary, c.summary, "seed {seed}");
        assert_eq!(a.outcomes, c.outcomes, "seed {seed}");
        assert_eq!(a.stats, c.stats, "seed {seed}");
    }
}

/// Time-aware scheduling is deterministic across scheduler shard counts:
/// the partitioned path reads the same published usage snapshot as the
/// serial one.
#[test]
fn time_aware_is_shard_count_independent() {
    let serial = time_aware(base());
    let mut sharded = time_aware(base());
    sharded.sched.shards = 4;
    for seed in [1u64, 2] {
        let wl = items(seed);
        let a = fingerprinted(&serial, &wl);
        let b = fingerprinted(&sharded, &wl);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}");
        assert_eq!(a.summary, b.summary, "seed {seed}");
        assert_eq!(a.outcomes, b.outcomes, "seed {seed}");
    }
}

/// Time-aware sweeps are worker-count independent (the sweep engine
/// recycles simulators across runs; fairness state must fully reset).
#[test]
fn time_aware_sweep_is_worker_count_independent() {
    let configs = [base(), time_aware(base())];
    let seeds = [1u64, 2, 3];
    let run = |workers: usize| {
        run_sweep(&configs, &seeds, workers, |_, seed| {
            let mut reg = CredRegistry::new();
            stream_synthetic(&synth_cfg(seed, 40), &mut reg)
        })
    };
    let serial = run(1);
    let parallel = run(3);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!((a.config, a.seed), (b.config, b.seed));
        assert_eq!(a.result.summary, b.result.summary);
        assert_eq!(a.result.stats, b.result.stats);
    }
}

/// Budget semantics: over-budget owners' jobs are demoted behind
/// in-budget work — but never denied. Alone, the demoted job runs.
#[test]
fn over_budget_user_is_demoted_not_denied() {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    sched.fairshare.enabled = true;
    sched.fairshare.mode = FairshareMode::TimeAware;
    sched.fairshare.user_budget_core_hours = Some(10.0);

    // User 0 has burned 20 decayed core-hours — double its budget.
    let mut hist = UsageHistory::new(sched.fairshare.half_life, 8);
    hist.charge(UserId(0), QueueId(0), 20 * 3_600_000, SimTime::ZERO);

    let qjob = |id: u64, user: u32, submit_s: u64| QueuedJob {
        id: JobId(id),
        user: UserId(user),
        group: dynbatch::core::GroupId(user),
        queue: QueueId(user),
        cores: 8,
        walltime: SimDuration::from_secs(600),
        submit_time: SimTime::from_secs(submit_s),
        priority_boost: 0,
        suppress_backfill_while_queued: false,
        reserve_extra: 0,
        moldable: None,
    };
    let snap = |queued: Vec<QueuedJob>| Snapshot {
        now: SimTime::from_secs(5_000),
        total_cores: 8,
        running: Vec::new(),
        queued,
        dyn_requests: Vec::new(),
        usage: Some(hist.snapshot(SimTime::from_secs(5_000))),
        deltas: None,
    };

    // Contended: the over-budget user submitted *earlier* (a big
    // queue-time edge) yet the in-budget user's job starts.
    let mut maui = Maui::new(sched.clone());
    let out = maui.iterate(&snap(vec![qjob(1, 0, 0), qjob(2, 1, 4_000)]));
    assert_eq!(out.starts.len(), 1);
    assert_eq!(out.starts[0].job, JobId(2), "in-budget user runs first");

    // Alone: demotion is not denial — the same job starts immediately.
    let mut maui = Maui::new(sched);
    let out = maui.iterate(&snap(vec![qjob(1, 0, 0)]));
    assert_eq!(out.starts.len(), 1);
    assert_eq!(out.starts[0].job, JobId(1), "demoted, never denied");
}
