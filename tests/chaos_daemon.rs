//! Chaos suite: the daemon protocol path under seeded fault injection.
//!
//! Every test drives the same submit / dynget / dynfree / preempt / qdel
//! workload through a live ensemble while a seeded [`FaultPlan`] drops,
//! delays, duplicates and reorders channel deliveries, crash-restarts
//! moms, and crash-restarts the **server** itself at seeded points in its
//! write-ahead journal (recovery = snapshot-load + replay, then re-arming
//! deadlines and re-attaching moms). The interleaving-independent
//! invariants asserted for every seed:
//!
//! 1. the ensemble **drains** — no lost message may wedge a job;
//! 2. per-job **final states match the fault-free run** (everything
//!    completes; the deliberately qdel'd job is cancelled);
//! 3. `shutdown()` leaves **zero live daemon threads** (checked by
//!    scanning `/proc/self/task` for the ensemble's thread-name tag).
//!
//! The 50 seeds are split across five `#[test]` functions so the sweep
//! parallelises under the default test runner, and each function shards
//! its seeds over the deterministic sweep engine
//! (`sim::sweep::parallel_tasks`): every seed's ensemble is independent,
//! so the per-seed final states are identical at any worker count.

use dynbatch::core::{
    DfsConfig, ExecutionModel, GroupId, JobClass, JobSpec, JobState, SchedulerConfig, SimDuration,
    UserId,
};
use dynbatch::daemon::{DaemonConfig, DaemonHandle, FaultPlan};
use dynbatch::server::TmResponse;
use std::time::Duration;

fn rigid(name: &str, user: u32, cores: u32, millis: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        user: UserId(user),
        group: GroupId(0),
        class: JobClass::Rigid,
        cores,
        walltime: SimDuration::from_millis(millis),
        exec: ExecutionModel::Fixed {
            duration: SimDuration::from_millis(millis),
        },
        priority_boost: 0,
        suppress_backfill_while_queued: false,
        malleable: None,
        moldable: None,
        dyn_timeout: None,
        queue: None,
    }
}

/// Daemon threads still alive that carry `tag` (ensemble thread prefix).
fn tagged_threads(tag: &str) -> Vec<String> {
    let mut live = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return live; // not Linux: skip the leak check
    };
    for e in entries.flatten() {
        if let Ok(name) = std::fs::read_to_string(e.path().join("comm")) {
            let name = name.trim_end().to_string();
            if name.starts_with(tag) {
                live.push(name);
            }
        }
    }
    live
}

fn assert_no_tagged_threads(tag: &str) {
    // A joined thread's /proc entry disappears promptly, but give the
    // kernel a moment before declaring a leak.
    for _ in 0..250 {
        if tagged_threads(tag).is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!(
        "daemon threads leaked past shutdown: {:?}",
        tagged_threads(tag)
    );
}

/// Runs the canonical workload under `plan` and returns each job's final
/// state in submission order. Asserts drain and clean shutdown.
fn run_workload(plan: FaultPlan) -> Vec<Option<JobState>> {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    sched.preempt_backfilled_for_dyn = true;
    let seed = plan.seed;
    let d = DaemonHandle::start(DaemonConfig {
        nodes: 4,
        cores_per_node: 8,
        sched,
        faults: Some(plan),
        replication: None,
    });
    let tag = d.thread_tag().to_string();

    // 32 cores. The grower holds 8; "blocked" (32 cores) reserves the
    // whole machine behind it; three fillers backfill into the remaining
    // 24, so the grower's +8 can only be fed by preempting one of them.
    let grower = d.qsub(rigid("grower", 0, 8, 250)).unwrap();
    assert!(
        d.await_running(grower, Duration::from_secs(5)),
        "seed {seed}: grower must start"
    );
    let blocked = d.qsub(rigid("blocked", 1, 32, 60)).unwrap();
    let fillers: Vec<_> = (0..3)
        .map(|i| {
            d.qsub(rigid(&format!("filler{i}"), 2 + i, 8, 200 - 40 * i as u64))
                .unwrap()
        })
        .collect();
    // Queued with a 30 s walltime: can never backfill, gets qdel'd below.
    let victim = d.qsub(rigid("victim", 9, 8, 30_000)).unwrap();

    std::thread::sleep(Duration::from_millis(40));
    // Under faults the reply may be a denial (e.g. the mother superior
    // crashed mid-call) — the grant is not part of the invariant, the
    // drain and final states are.
    let granted = match d.tm_dynget(grower, 8) {
        TmResponse::DynGranted { added } => Some(added),
        _ => None,
    };
    std::thread::sleep(Duration::from_millis(80));
    if let Some(added) = granted {
        let _ = d.tm_dynfree(grower, added);
    }
    let _ = d.qdel(victim);

    assert!(
        d.await_drained(Duration::from_secs(10)),
        "seed {seed}: ensemble must drain"
    );
    let mut ids = vec![grower, blocked];
    ids.extend(fillers);
    ids.push(victim);
    let states: Vec<_> = ids.into_iter().map(|id| d.qstat(id)).collect();
    d.shutdown();
    assert_no_tagged_threads(&tag);
    states
}

/// Fault-free reference, asserted against the scenario's intent so a
/// silent workload drift cannot hollow out the sweep.
fn baseline() -> Vec<Option<JobState>> {
    let states = run_workload(FaultPlan::none(0));
    let mut expected = vec![Some(JobState::Completed); 5];
    expected.push(Some(JobState::Cancelled));
    assert_eq!(states, expected, "fault-free run must complete everything");
    states
}

fn sweep(seeds: std::ops::Range<u64>) {
    let reference = baseline();
    let seeds: Vec<u64> = seeds.collect();
    // Each ensemble is thread-heavy but sleep-bound, so a few in flight
    // overlap their waits; stay well under the core count because the
    // five chaos test functions already run concurrently.
    let workers = dynbatch::sim::sweep::worker_count(0).div_ceil(4).min(4);
    let all_states = dynbatch::sim::sweep::parallel_tasks(seeds.len(), workers, |i| {
        run_workload(FaultPlan::from_seed(
            seeds[i],
            4,
            Duration::from_millis(300),
        ))
    });
    for (seed, states) in seeds.iter().zip(all_states) {
        assert_eq!(
            states, reference,
            "seed {seed} diverged from fault-free run"
        );
    }
}

/// The harness engaged but silent: behaviour must match no-harness runs.
/// (`scripts/check.sh` runs this one as its quick smoke.)
#[test]
fn chaos_zero_fault_seed_matches_intent() {
    baseline();
}

#[test]
fn chaos_seeds_00_09() {
    sweep(0..10);
}

#[test]
fn chaos_seeds_10_19() {
    sweep(10..20);
}

#[test]
fn chaos_seeds_20_29() {
    sweep(20..30);
}

#[test]
fn chaos_seeds_30_39() {
    sweep(30..40);
}

#[test]
fn chaos_seeds_40_49() {
    sweep(40..50);
}
