//! Crash-recovery correctness: the crash-at-every-record sweep.
//!
//! The durability invariant under test: **recovered state ≡ crash-free
//! state**. A server killed after *any* journal record, rebuilt by
//! snapshot-load + replay and then driven through the remainder of the
//! run, must end with an accounting log and a final state digest that are
//! byte-identical to a run that never crashed.
//!
//! The sweep drives a scripted scenario directly against
//! `PbsServer` + `Maui` (every input's journal position is then known
//! exactly), under the scheduler-soft-state-free configuration
//! (`paper_eval` + `highest_priority`): a fresh scheduler mid-run makes
//! identical decisions, so the comparison isolates the journal layer.

use dynbatch_cluster::{Allocation, Cluster};
use dynbatch_core::{
    json, AllocPolicy, DfsConfig, ExecutionModel, GroupId, JobId, JobSpec, NodeId, SchedulerConfig,
    SimDuration, SimTime, UserId,
};
use dynbatch_sched::{FairshareTracker, Maui};
use dynbatch_server::{Journal, PbsServer};

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn rigid(name: &str, user: u32, cores: u32, secs: u64) -> JobSpec {
    JobSpec::rigid(
        name,
        UserId(user),
        GroupId(0),
        cores,
        SimDuration::from_secs(secs),
    )
}

fn evolving(name: &str, user: u32, cores: u32) -> JobSpec {
    JobSpec::evolving(
        name,
        UserId(user),
        GroupId(0),
        cores,
        ExecutionModel::esp_evolving(1846, 1230, 4),
    )
}

fn hp_maui() -> Maui {
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::highest_priority();
    Maui::new(cfg)
}

/// One scripted input. Each op maps to at most one journal record, so a
/// crash "after record k" is a crash at the op boundary that wrote it.
enum Op {
    Sub(JobSpec),
    Cycle,
    Finish(JobId),
    DynGet {
        job: JobId,
        extra: u32,
        deadline: Option<u64>,
    },
    DynFree {
        job: JobId,
        node: u32,
        cores: u32,
    },
    Qdel(JobId),
    Fail(u32),
    Repair(u32),
    Expire,
}

fn apply_op(s: &mut PbsServer, m: &mut Maui, op: &Op, now: SimTime) {
    match op {
        Op::Sub(spec) => {
            let _ = s.qsub(spec.clone(), now);
        }
        Op::Cycle => {
            let snap = s.snapshot_incremental(now);
            let outcome = m.iterate(&snap);
            s.apply(&outcome, now);
        }
        Op::Finish(job) => {
            let _ = s.job_finished(*job, now);
            m.dfs_mut().job_left_queue(*job);
        }
        Op::DynGet {
            job,
            extra,
            deadline,
        } => {
            let _ = s.tm_dynget_negotiated(*job, *extra, deadline.map(t), now);
        }
        Op::DynFree { job, node, cores } => {
            let released = Allocation::from_pairs([(NodeId(*node), *cores)]);
            let _ = s.tm_dynfree(*job, &released, now);
        }
        Op::Qdel(job) => {
            let _ = s.qdel(*job, now);
        }
        Op::Fail(node) => {
            let _ = s.node_failed(NodeId(*node), now);
        }
        Op::Repair(node) => {
            let _ = s.node_repaired(NodeId(*node));
        }
        Op::Expire => {
            let _ = s.expire_dyn_requests(now);
        }
    }
}

/// A scenario touching every record kind the journal knows: submit,
/// start, finish, qdel (of queued, running and DynQueued jobs), the
/// dynget/dynfree negotiation phases, expiry, node fail/repair.
/// Job ids are assigned sequentially by the server: A=1, B=2, EV=3,
/// D=4, C=5, E=6.
fn script() -> Vec<(u64, Op)> {
    const A: JobId = JobId(1);
    const B: JobId = JobId(2);
    const EV: JobId = JobId(3);
    const D: JobId = JobId(4);
    const E: JobId = JobId(6);
    vec![
        (0, Op::Sub(rigid("A", 0, 16, 100))),
        (0, Op::Cycle),
        (1, Op::Sub(rigid("B", 1, 64, 500))),
        (1, Op::Cycle),
        (2, Op::Sub(evolving("EV", 2, 8))),
        (2, Op::Cycle),
        (3, Op::Sub(evolving("D", 3, 8))),
        (3, Op::Cycle),
        // EV asks for +4 within a negotiation window; grantable (24 idle).
        (
            5,
            Op::DynGet {
                job: EV,
                extra: 4,
                deadline: Some(60),
            },
        ),
        (5, Op::Cycle),
        // D asks for more than the machine can ever free within its
        // window: stays DynQueued (deferred each cycle).
        (
            6,
            Op::DynGet {
                job: D,
                extra: 100,
                deadline: Some(400),
            },
        ),
        (6, Op::Cycle),
        // A 40-core job queues behind the running set.
        (7, Op::Sub(rigid("C", 4, 40, 50))),
        (7, Op::Cycle),
        // qdel of the DynQueued job D: pending negotiation must die too.
        (20, Op::Qdel(D)),
        (20, Op::Cycle),
        // EV gives back part of its grant.
        (
            30,
            Op::DynFree {
                job: EV,
                node: 11,
                cores: 2,
            },
        ),
        (30, Op::Cycle),
        // A node dies (whatever it hosts is requeued), later repaired.
        (40, Op::Fail(2)),
        (40, Op::Cycle),
        (50, Op::Repair(2)),
        (50, Op::Cycle),
        (105, Op::Finish(A)),
        (105, Op::Cycle),
        (130, Op::Sub(rigid("E", 5, 8, 40))),
        (130, Op::Cycle),
        (170, Op::Finish(E)),
        (170, Op::Cycle),
        // Sweep any pending windows past their deadlines.
        (450, Op::Expire),
        (450, Op::Cycle),
        (520, Op::Finish(B)),
        (520, Op::Cycle),
        (600, Op::Finish(EV)),
        (600, Op::Cycle),
    ]
}

fn accounting_text(s: &PbsServer) -> String {
    s.accounting()
        .outcomes()
        .iter()
        .map(|o| json::model::outcome_to_json(o).to_string_compact())
        .collect::<Vec<_>>()
        .join("\n")
}

/// The fairshare priorities a scheduler would derive from the server's
/// journalled usage ledger, as a byte-comparable string: recharge each
/// user's core-milliseconds into a fresh tracker (exactly what the daemon
/// does after a crash-restart) and print the charged totals.
fn fairshare_fingerprint(s: &PbsServer) -> String {
    let mut fs = FairshareTracker::new(Default::default(), SimTime::ZERO);
    for (user, ms) in s.usage() {
        fs.charge(user, ms as f64 / 1000.0);
    }
    s.usage()
        .map(|(user, _)| format!("{}:{:.6};", user.0, fs.charged(user)))
        .collect()
}

/// Reference run: journal on, after every op capture the journal clone
/// and the accounting text observed so far.
struct Reference {
    journals: Vec<Journal>,
    accounting_at: Vec<String>,
    usage_at: Vec<Vec<(UserId, u64)>>,
    fairshare_at: Vec<String>,
    usage_hist_at: Vec<String>,
    final_digest: String,
    final_accounting: String,
}

fn run_reference(snapshot_every: usize) -> Reference {
    let mut s = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
    s.enable_journal(snapshot_every);
    let mut m = hp_maui();
    let mut journals = Vec::new();
    let mut accounting_at = Vec::new();
    let mut usage_at = Vec::new();
    let mut fairshare_at = Vec::new();
    let mut usage_hist_at = Vec::new();
    let mut last_total = s.journal().unwrap().total_appended();
    for (secs, op) in &script() {
        apply_op(&mut s, &mut m, op, t(*secs));
        let j = s.journal().unwrap();
        // One mutation record per op; a compacting run may add a snapshot
        // record in the same append.
        let cap = if snapshot_every == 0 { 1 } else { 2 };
        assert!(
            j.total_appended() - last_total <= cap,
            "an op must append at most one mutation record (got {} new)",
            j.total_appended() - last_total
        );
        last_total = j.total_appended();
        journals.push(j.clone());
        accounting_at.push(accounting_text(&s));
        usage_at.push(s.usage().collect());
        fairshare_at.push(fairshare_fingerprint(&s));
        usage_hist_at.push(s.usage_history().fingerprint());
    }
    Reference {
        journals,
        accounting_at,
        usage_at,
        fairshare_at,
        usage_hist_at,
        final_digest: s.state_digest(),
        final_accounting: accounting_text(&s),
    }
}

/// Crash after op boundary `i`: recover from the journal as it stood
/// there, resume the remaining script with a **fresh** scheduler, and
/// return the final digest + accounting.
fn resume_from(reference: &Reference, i: usize) -> (String, String) {
    let mut s = PbsServer::recover(reference.journals[i].clone()).expect("journal replays");
    // Satellite-3 property en route: replaying a journal prefix yields
    // exactly the accounting records emitted up to that point.
    assert_eq!(
        accounting_text(&s),
        reference.accounting_at[i],
        "accounting after recovery at boundary {i} must match the live log"
    );
    // The fairshare bugfix's gate: the per-user usage ledger — and the
    // priorities a fresh scheduler derives from it — must survive the
    // crash byte-identically at every crash point (pre-fix the charges
    // lived only in daemon memory and recovered as zero).
    assert_eq!(
        s.usage().collect::<Vec<_>>(),
        reference.usage_at[i],
        "per-user usage diverged after recovery at boundary {i}"
    );
    assert_eq!(
        fairshare_fingerprint(&s),
        reference.fairshare_at[i],
        "fairshare priorities diverged after recovery at boundary {i}"
    );
    // Time-aware fairness gate: the decayed resource-hour accounts ride
    // the snapshot image as bit-patterns, so recovery must reproduce the
    // accumulators (value *and* decay reference instant) byte-for-byte —
    // `2^-(dt)/h` replays would drift in the last ulp otherwise.
    assert_eq!(
        s.usage_history().fingerprint(),
        reference.usage_hist_at[i],
        "decayed usage accounts diverged after recovery at boundary {i}"
    );
    s.cluster().check_invariants().unwrap();
    let mut m = hp_maui();
    for (secs, op) in script().iter().skip(i + 1) {
        apply_op(&mut s, &mut m, op, t(*secs));
    }
    (s.state_digest(), accounting_text(&s))
}

fn assert_boundary_matches(reference: &Reference, i: usize) {
    let (digest, accounting) = resume_from(reference, i);
    assert_eq!(
        digest, reference.final_digest,
        "state diverged when crashing after op {i}"
    );
    assert_eq!(
        accounting, reference.final_accounting,
        "accounting diverged when crashing after op {i}"
    );
}

/// The tentpole guarantee: crash after **every** journal record (every
/// op boundary — each op writes at most one record), recover, resume,
/// and land byte-identical to the crash-free run.
#[test]
fn crash_at_every_record_is_byte_identical() {
    let reference = run_reference(0);
    let total = reference.journals.last().unwrap().total_appended();
    assert!(
        total >= 20,
        "scenario too small to be interesting: {total} records"
    );
    for i in 0..reference.journals.len() {
        assert_boundary_matches(&reference, i);
    }
}

/// The same sweep with aggressive compaction: crash points now land on a
/// journal that is mostly a snapshot plus a short tail, exercising the
/// snapshot-load half of recovery at every position.
#[test]
fn crash_sweep_survives_compaction() {
    let reference = run_reference(4);
    for i in 0..reference.journals.len() {
        assert!(
            reference.journals[i].len() <= 5,
            "compaction must bound the log at boundary {i}"
        );
        assert_boundary_matches(&reference, i);
    }
}

/// Quick smoke for `scripts/check.sh`: the same sweep at ~5 sampled
/// crash points instead of all of them.
#[test]
fn crash_smoke_sampled_indices() {
    let reference = run_reference(0);
    let n = reference.journals.len();
    for i in [0, n / 4, n / 2, 3 * n / 4, n - 1] {
        assert_boundary_matches(&reference, i);
    }
}

/// `Journal::prefix` agrees with the journal as it actually stood at
/// each boundary (no compaction): "the first k records" really is the
/// crash image.
#[test]
fn prefix_matches_live_boundaries() {
    let reference = run_reference(0);
    let full = reference.journals.last().unwrap();
    for j in &reference.journals {
        let k = j.len();
        assert_eq!(full.prefix(k).to_text(), j.to_text());
    }
}

/// End-to-end in the simulator: a run interrupted by scripted server
/// crashes finishes with the same outcomes as a crash-free run.
#[test]
fn sim_server_crashes_preserve_outcomes() {
    use dynbatch_sim::BatchSim;
    use dynbatch_workload::WorkloadItem;

    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::highest_priority();
    let items: Vec<WorkloadItem> = (0..8)
        .map(|i| {
            let spec = if i % 3 == 2 {
                let mut spec = evolving(&format!("ev{i}"), i, 8);
                spec.dyn_timeout = Some(SimDuration::from_secs(300));
                spec
            } else {
                rigid(&format!("j{i}"), i, 8 * (1 + i % 4), 120 + 60 * i as u64)
            };
            WorkloadItem {
                at: t(5 * i as u64),
                spec,
            }
        })
        .collect();

    let run = |crashes: &[u64]| {
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), cfg.clone());
        sim.enable_journal(8);
        sim.load(&items);
        for &at in crashes {
            sim.inject_server_crash(t(at));
        }
        sim.run();
        assert!(sim.server().is_drained());
        accounting_text(sim.server())
    };

    let clean = run(&[]);
    let crashed = run(&[30, 200, 900]);
    assert_eq!(clean, crashed, "server crashes must not change outcomes");
}
