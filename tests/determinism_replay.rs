//! Determinism and trace replay: identical inputs produce identical runs,
//! and a workload serialised to JSON replays bit-exactly.

use dynbatch::core::{CredRegistry, DfsConfig, SchedulerConfig, SimDuration};
use dynbatch::sim::{run_experiment, ExperimentConfig};
use dynbatch::workload::{generate_esp, generate_synthetic, EspConfig, SyntheticConfig, Trace};

fn sched() -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
    s
}

#[test]
fn identical_runs_are_bit_identical() {
    let mut reg = CredRegistry::new();
    let wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
    let cfg = ExperimentConfig::paper_cluster("a", sched());
    let a = run_experiment(&cfg, &wl);
    let b = run_experiment(&cfg, &wl);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.summary.makespan, b.summary.makespan);
    assert_eq!(a.summary.utilization, b.summary.utilization);
}

#[test]
fn different_seeds_differ() {
    let mut reg = CredRegistry::new();
    let mut c1 = EspConfig::paper_dynamic();
    c1.seed = 1;
    let mut c2 = EspConfig::paper_dynamic();
    c2.seed = 2;
    let a = run_experiment(
        &ExperimentConfig::paper_cluster("s1", sched()),
        &generate_esp(&c1, &mut reg),
    );
    let b = run_experiment(
        &ExperimentConfig::paper_cluster("s2", sched()),
        &generate_esp(&c2, &mut reg),
    );
    assert_ne!(a.summary.makespan, b.summary.makespan);
}

#[test]
fn trace_replay_reproduces_results() {
    let mut reg = CredRegistry::new();
    let wl = generate_synthetic(
        &SyntheticConfig {
            jobs: 60,
            ..Default::default()
        },
        &mut reg,
    );
    let trace = Trace::new("synthetic 60", reg, wl.clone());

    // Round-trip through JSON.
    let json = trace.to_json();
    let replayed = Trace::from_json(&json).expect("parse");
    assert_eq!(trace, replayed);

    let cfg = ExperimentConfig::paper_cluster("orig", sched());
    let a = run_experiment(&cfg, &wl);
    let b = run_experiment(&cfg, &replayed.items);
    assert_eq!(a.outcomes, b.outcomes);
}

#[test]
fn experiment_order_does_not_leak_state() {
    // Running experiment X then Y must give the same Y as running Y alone
    // (no global state anywhere).
    let mut reg = CredRegistry::new();
    let wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
    let cfg = ExperimentConfig::paper_cluster("x", sched());
    let _ = run_experiment(&cfg, &wl);
    let y1 = run_experiment(&cfg, &wl);
    let y2 = run_experiment(&cfg, &wl);
    assert_eq!(y1.outcomes, y2.outcomes);
}
