//! End-to-end preemption: the site option that lets dynamic requests take
//! resources from *backfilled* jobs (paper §III-C: "idle before
//! preemptible resources"), and the walltime reaper.

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, ExecutionModel, JobClass, JobSpec, SchedulerConfig, SimDuration,
    SimTime, UserId,
};
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;

fn sched(preempt: bool) -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s.preempt_backfilled_for_dyn = preempt;
    s
}

/// 16 cores. An evolving job holds 8. A big rigid job (16 cores) queues —
/// blocked until the evolving job ends — and a small 8-core job backfills
/// into the hole. The evolving job then asks for +8: only preemption of
/// the backfilled job can provide it.
fn scenario(preempt: bool) -> BatchSim {
    let mut reg = CredRegistry::new();
    let e = reg.user("evolving");
    let big = reg.user("big");
    let small = reg.user("small");
    let g = reg.group_of(e);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(preempt));
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving(
                "grower",
                e,
                g,
                8,
                ExecutionModel::esp_evolving(1000, 700, 8),
            ),
        },
        // Submitted first among the queue: blocked (needs all 16).
        WorkloadItem {
            at: SimTime::from_secs(1),
            spec: JobSpec::rigid("blocked", big, g, 16, SimDuration::from_secs(100)),
        },
        // Small enough to backfill before the reservation at t=1000.
        WorkloadItem {
            at: SimTime::from_secs(2),
            spec: JobSpec::rigid("filler", small, g, 8, SimDuration::from_secs(400)),
        },
    ]);
    sim
}

#[test]
fn preemption_feeds_the_dynamic_request() {
    let mut sim = scenario(true);
    sim.run();
    assert_eq!(
        sim.stats().preemptions,
        1,
        "the backfilled filler was preempted"
    );
    let outcomes = sim.server().accounting().outcomes();
    let grower = outcomes.iter().find(|o| o.name == "grower").unwrap();
    assert_eq!(grower.dyn_grants, 1);
    assert_eq!(grower.cores_final, 16);
    // The preempted filler restarted from scratch and still completed.
    let filler = outcomes.iter().find(|o| o.name == "filler").unwrap();
    assert_eq!(
        filler.runtime(),
        SimDuration::from_secs(400),
        "full rerun after requeue"
    );
    assert!(
        filler.start_time > SimTime::from_secs(2),
        "not its original start"
    );
    // Everyone finished; the books balance.
    assert_eq!(outcomes.len(), 3);
    sim.server().cluster().check_invariants().unwrap();
}

#[test]
fn without_preemption_the_request_fails() {
    let mut sim = scenario(false);
    sim.run();
    assert_eq!(sim.stats().preemptions, 0);
    let outcomes = sim.server().accounting().outcomes();
    let grower = outcomes.iter().find(|o| o.name == "grower").unwrap();
    assert_eq!(grower.dyn_grants, 0);
    assert_eq!(grower.runtime(), SimDuration::from_secs(1000), "ran static");
    let filler = outcomes.iter().find(|o| o.name == "filler").unwrap();
    assert_eq!(
        filler.start_time,
        SimTime::from_secs(2),
        "backfill undisturbed"
    );
}

#[test]
fn walltime_reaper_kills_overrunning_jobs() {
    // A job whose declared walltime is shorter than its actual runtime is
    // killed at the limit (plus the 1 ms reaper grace).
    let mut reg = CredRegistry::new();
    let u = reg.user("liar");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(false));
    let mut spec = JobSpec::rigid("overrun", u, g, 8, SimDuration::from_secs(100));
    spec.walltime = SimDuration::from_secs(50);
    spec.exec = ExecutionModel::Fixed {
        duration: SimDuration::from_secs(100),
    };
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec,
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("honest", u, g, 8, SimDuration::from_secs(30)),
        },
    ]);
    sim.run();
    assert_eq!(sim.stats().walltime_kills, 1);
    // The killed job is Cancelled, not Completed; the honest one finished.
    let overrun = sim
        .server()
        .jobs()
        .find(|j| j.spec.name == "overrun")
        .unwrap();
    assert_eq!(overrun.state, dynbatch::core::JobState::Cancelled);
    assert_eq!(
        overrun.end_time.unwrap(),
        SimTime::ZERO + SimDuration::from_millis(50_001),
        "killed at walltime + reaper grace"
    );
    assert_eq!(sim.server().accounting().outcomes().len(), 1);
    sim.server().cluster().check_invariants().unwrap();
}

#[test]
fn preempted_evolving_job_restarts_cleanly() {
    // An evolving job that was itself backfilled can be preempted; its
    // pending state and scheduled request points must not leak into the
    // re-execution (generation guard).
    let mut reg = CredRegistry::new();
    let a = reg.user("a");
    let b = reg.user("b");
    let g = reg.group_of(a);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(true));
    sim.load(&[
        // Holds 8 cores for a long time.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: {
                let mut s = JobSpec::evolving(
                    "alpha",
                    a,
                    g,
                    8,
                    ExecutionModel::esp_evolving(2000, 1500, 8),
                );
                s.class = JobClass::Evolving;
                s
            },
        },
        // Queued full-machine job: blocked.
        WorkloadItem {
            at: SimTime::from_secs(1),
            spec: JobSpec::rigid("blocked", b, g, 16, SimDuration::from_secs(50)),
        },
        // A small evolving job backfills, then gets preempted when alpha
        // asks for the whole other node at t=320 (16% of 2000).
        WorkloadItem {
            at: SimTime::from_secs(2),
            spec: JobSpec::evolving(
                "victim",
                UserId(1),
                g,
                8,
                ExecutionModel::esp_evolving(600, 500, 4),
            ),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    assert_eq!(outcomes.len(), 3, "everyone eventually completes");
    sim.server().cluster().check_invariants().unwrap();
    assert_eq!(sim.server().cluster().idle_cores(), 16);
}
