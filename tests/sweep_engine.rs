//! Quick parallel-sweep smoke: the sweep engine's determinism contract
//! end to end through the facade crate, sized for CI (2 configs × 8
//! seeds). The serial baseline — a fresh simulator per run, task-id
//! order — must be reproduced bit-for-bit at every worker count.

use dynbatch::core::{CredRegistry, DfsConfig, SchedulerConfig, SimDuration};
use dynbatch::sim::{run_experiment, run_sweep, ExperimentConfig};
use dynbatch::workload::{generate_esp, EspConfig, WorkloadItem};

fn configs() -> Vec<ExperimentConfig> {
    let static_sched = {
        let mut s = SchedulerConfig::paper_eval();
        s.dfs = DfsConfig::highest_priority();
        s
    };
    let capped_sched = {
        let mut s = SchedulerConfig::paper_eval();
        s.dfs = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
        s
    };
    vec![
        ExperimentConfig::paper_cluster("Static", static_sched),
        ExperimentConfig::paper_cluster("Dyn-500", capped_sched),
    ]
}

fn workload(cfg: &ExperimentConfig, seed: u64) -> Vec<WorkloadItem> {
    let mut reg = CredRegistry::new();
    let mut wl = if cfg.label == "Static" {
        EspConfig::paper_static()
    } else {
        EspConfig::paper_dynamic()
    };
    wl.seed = seed;
    generate_esp(&wl, &mut reg)
}

#[test]
fn parallel_sweep_matches_serial_baseline() {
    let configs = configs();
    let seeds: Vec<u64> = (0..8).map(|i| 2014 + i).collect();

    // Serial baseline in task-id order: config-major, then seed.
    let mut serial = Vec::new();
    for cfg in &configs {
        for &seed in &seeds {
            serial.push(run_experiment(cfg, &workload(cfg, seed)));
        }
    }

    for workers in [2usize, 3] {
        let cells = run_sweep(&configs, &seeds, workers, |c, s| workload(c, s).into_iter());
        assert_eq!(cells.len(), serial.len());
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.config, i / seeds.len(), "task-id slotting broken");
            assert_eq!(cell.seed, seeds[i % seeds.len()]);
            let expect = &serial[i];
            assert_eq!(
                cell.result.summary, expect.summary,
                "{} seed {} summary diverged at {workers} workers",
                configs[cell.config].label, cell.seed
            );
            assert_eq!(
                cell.result.outcomes, expect.outcomes,
                "{} seed {} outcomes diverged at {workers} workers",
                configs[cell.config].label, cell.seed
            );
            assert_eq!(cell.result.stats, expect.stats);
        }
    }
}
