//! The sharded scheduler is a pure optimisation: for every shard count
//! the full simulator run takes byte-identical decisions (dynamic grants
//! with their `DelayCharge`s included), produces byte-identical job
//! outcomes, and finishes at the same instant as the serial `shards == 1`
//! path — across the ESP, Quadflow and SWF scenario suites.
//!
//! This is the determinism gate of the partitioned-timeline /
//! speculative-planning path in `dynbatch-sched::shard`: any divergence
//! between the per-shard merged profile and the serial one, or any
//! commit of a stale speculative evaluation, surfaces here as a
//! differing grant, start, or completion record.

use dynbatch::cluster::Cluster;
use dynbatch::core::{CredRegistry, DfsConfig, JobSpec, SchedulerConfig, SimDuration, SimTime};
use dynbatch::sched::DynDecision;
use dynbatch::sim::BatchSim;
use dynbatch::workload::{
    generate_esp, generate_synthetic, parse_swf, write_swf, EspConfig, QuadflowCase, SwfConfig,
    SyntheticConfig, WorkloadItem,
};

/// One scenario: a cluster, a workload, and the scheduler settings.
struct Scenario {
    label: &'static str,
    nodes: u32,
    cores_per_node: u32,
    sched: SchedulerConfig,
    workload: Vec<WorkloadItem>,
}

/// Full-run fingerprint: every dynamic decision with its timestamp, every
/// job outcome, and the completion instant.
type Fingerprint = (
    Vec<(SimTime, DynDecision)>,
    Vec<dynbatch::core::JobOutcome>,
    SimTime,
);

fn run(scenario: &Scenario, shards: usize, workers: usize) -> Fingerprint {
    let mut sched = scenario.sched.clone();
    sched.shards = shards;
    let mut sim = BatchSim::new(
        Cluster::homogeneous(scenario.nodes, scenario.cores_per_node),
        sched,
    );
    // Pin the worker count so the threaded rounds are exercised even on a
    // single-core CI host (results must not depend on it either way).
    sim.maui_mut().set_shard_workers(workers);
    sim.load(&scenario.workload);
    sim.run();
    assert!(
        sim.server().is_drained(),
        "{} did not drain at shards={shards}",
        scenario.label
    );
    (
        sim.dyn_decision_log().to_vec(),
        sim.server().accounting().outcomes().to_vec(),
        sim.last_completion(),
    )
}

/// Asserts `shards ∈ counts` all reproduce the serial run byte for byte.
fn assert_equivalent(scenario: &Scenario, counts: &[usize], workers: usize) {
    let serial = run(scenario, 1, 1);
    for &shards in counts {
        let sharded = run(scenario, shards, workers);
        assert_eq!(
            serial.0, sharded.0,
            "{}: dynamic decisions diverged at shards={shards}",
            scenario.label
        );
        assert_eq!(
            serial.1, sharded.1,
            "{}: job outcomes diverged at shards={shards}",
            scenario.label
        );
        assert_eq!(
            serial.2, sharded.2,
            "{}: makespan diverged at shards={shards}",
            scenario.label
        );
    }
}

fn esp_scenario(dynamic: bool, dfs: DfsConfig, seed: u64) -> Scenario {
    let mut reg = CredRegistry::new();
    let mut wl_cfg = if dynamic {
        EspConfig::paper_dynamic()
    } else {
        EspConfig::paper_static()
    };
    wl_cfg.seed = seed;
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = dfs;
    Scenario {
        label: if dynamic { "esp-dynamic" } else { "esp-static" },
        nodes: 15,
        cores_per_node: 8,
        sched,
        workload: generate_esp(&wl_cfg, &mut reg),
    }
}

/// The paper's Quadflow cases as evolving jobs competing with rigid
/// fillers — exercises the dynamic grant/defer paths with cross-job
/// interference on a small cluster.
fn quadflow_scenario() -> Scenario {
    let mut reg = CredRegistry::new();
    let mut workload = Vec::new();
    for (i, case) in [QuadflowCase::FlatPlate, QuadflowCase::Cylinder]
        .into_iter()
        .enumerate()
    {
        let user = reg.user_in_group(&format!("cfd{i}"), "cfd");
        let group = reg.group_of(user);
        workload.push(WorkloadItem {
            at: SimTime::from_secs(i as u64 * 600),
            spec: JobSpec::evolving(
                case.name(),
                user,
                group,
                case.base_cores(),
                case.execution_model(),
            ),
        });
    }
    let filler_user = reg.user_in_group("filler", "batch");
    let filler_group = reg.group_of(filler_user);
    for i in 0..6u64 {
        workload.push(WorkloadItem {
            at: SimTime::from_secs(i * 1800),
            spec: JobSpec::rigid(
                format!("filler-{i}"),
                filler_user,
                filler_group,
                16 + 8 * (i % 3) as u32,
                SimDuration::from_hours(3 + i),
            ),
        });
    }
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
    Scenario {
        label: "quadflow",
        nodes: 15,
        cores_per_node: 8,
        sched,
        workload,
    }
}

/// A synthetic workload round-tripped through the SWF writer/parser with
/// a slice of jobs converted to evolving — the trace-replay suite.
fn swf_scenario() -> Scenario {
    let mut reg = CredRegistry::new();
    let synth = generate_synthetic(
        &SyntheticConfig {
            jobs: 120,
            ..Default::default()
        },
        &mut reg,
    );
    let text = write_swf(&synth, &reg);
    let mut reg2 = CredRegistry::new();
    let swf_cfg = SwfConfig {
        total_cores: 120,
        evolving_fraction: 0.3,
        ..Default::default()
    };
    let workload = parse_swf(&text, &swf_cfg, &mut reg2).expect("own SWF output parses");
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    Scenario {
        label: "swf",
        nodes: 15,
        cores_per_node: 8,
        sched,
        workload,
    }
}

#[test]
fn esp_dynamic_is_shard_count_invariant() {
    // 2 and 4 do not divide the 15-node cluster — slice boundaries cross
    // nodes; 3 and 5 are node-aligned. All must be byte-identical.
    let scenario = esp_scenario(true, DfsConfig::highest_priority(), 2014);
    let serial = run(&scenario, 1, 1);
    assert!(
        serial.0.iter().any(|(_, d)| d.is_granted()),
        "no grants — the comparison would be vacuous"
    );
    assert_equivalent(&scenario, &[2, 3, 4, 5], 3);
}

#[test]
fn esp_static_is_shard_count_invariant() {
    // No dynamic requests: pins the sharded rank + backfill phases alone.
    let scenario = esp_scenario(false, DfsConfig::highest_priority(), 1);
    assert_equivalent(&scenario, &[3, 4], 2);
}

#[test]
fn esp_fairness_policies_are_shard_count_invariant() {
    let scenario = esp_scenario(
        true,
        DfsConfig::uniform_target(100, SimDuration::from_hours(1)),
        7,
    );
    assert_equivalent(&scenario, &[2, 5], 3);
}

#[test]
fn quadflow_is_shard_count_invariant() {
    assert_equivalent(&quadflow_scenario(), &[2, 3, 5], 3);
}

#[test]
fn swf_replay_is_shard_count_invariant() {
    assert_equivalent(&swf_scenario(), &[2, 4], 2);
}

#[test]
fn worker_count_is_unobservable() {
    // Same shard count, different worker-pool widths (1 = no threads at
    // all): stealing and round timing must not leak into decisions.
    let scenario = esp_scenario(true, DfsConfig::highest_priority(), 42);
    let baseline = run(&scenario, 4, 1);
    for workers in [2, 3, 4] {
        let threaded = run(&scenario, 4, workers);
        assert_eq!(
            baseline, threaded,
            "results depend on the worker count {workers}"
        );
    }
}
