//! Property-based tests of the full simulator over random synthetic
//! workloads: whatever the mix, conservation and accounting invariants
//! hold.

use dynbatch::cluster::Cluster;
use dynbatch::core::{CredRegistry, DfsConfig, SchedulerConfig, SimDuration};
use dynbatch::sim::BatchSim;
use dynbatch::workload::{generate_synthetic, SyntheticConfig};
use proptest::prelude::*;

fn sched(cap: Option<u64>, preempt: bool) -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = match cap {
        None => DfsConfig::highest_priority(),
        Some(c) => DfsConfig::uniform_target(c, SimDuration::from_hours(1)),
    };
    s.preempt_backfilled_for_dyn = preempt;
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_workloads_preserve_invariants(
        seed in 0u64..1_000_000,
        jobs in 5usize..60,
        evolving_fraction in 0.0f64..1.0,
        cap in prop::option::of(10u64..2000),
        preempt in any::<bool>(),
    ) {
        let mut reg = CredRegistry::new();
        let wl = generate_synthetic(
            &SyntheticConfig {
                seed,
                jobs,
                evolving_fraction,
                ..Default::default()
            },
            &mut reg,
        );
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), sched(cap, preempt));
        sim.load(&wl);
        sim.run();

        // 1. Every job reached a terminal state and the cluster drained.
        prop_assert!(sim.server().is_drained());
        prop_assert_eq!(sim.server().cluster().idle_cores(), 120);
        sim.server().cluster().check_invariants().map_err(|e| {
            TestCaseError::fail(format!("cluster invariant: {e}"))
        })?;

        // 2. Accounting is complete and causally sane.
        let outcomes = sim.server().accounting().outcomes();
        prop_assert_eq!(outcomes.len() as u64 + sim.stats().walltime_kills, jobs as u64);
        for o in outcomes {
            prop_assert!(o.start_time >= o.submit_time, "{:?}", o.id);
            prop_assert!(o.end_time > o.start_time, "{:?}", o.id);
            prop_assert!(o.cores_final >= o.cores_requested);
            prop_assert!(o.dyn_grants <= o.dyn_requests);
        }

        // 3. Utilization is a fraction; busy time never exceeds capacity.
        let util = sim.utilization().utilization(sim.last_completion());
        prop_assert!((0.0..=1.0 + 1e-9).contains(&util), "util {util}");

        // 4. Makespan is bounded below by perfect packing of the work
        //    actually performed.
        let core_secs = sim.utilization().core_seconds(sim.last_completion());
        let makespan = sim
            .last_completion()
            .duration_since(sim.first_submit())
            .as_secs_f64();
        prop_assert!(makespan + 1.0 >= core_secs / 120.0, "{makespan} vs {core_secs}");

        // 5. Grant accounting matches per-job records.
        let grants: u32 = outcomes.iter().map(|o| o.dyn_grants).sum();
        prop_assert_eq!(grants as u64, sim.stats().dyn_granted);
    }

    #[test]
    fn more_resources_never_hurt_makespan_for_rigid_fifo(
        seed in 0u64..100_000,
        jobs in 5usize..40,
    ) {
        // With rigid jobs only and identical scheduling, a strictly larger
        // cluster finishes no later (monotonicity sanity of the whole
        // pipeline). Backfill can reorder under equal capacity, but added
        // capacity only removes constraints here because priorities are
        // FIFO and job runtimes are fixed.
        let mut reg = CredRegistry::new();
        let wl = generate_synthetic(
            &SyntheticConfig { seed, jobs, evolving_fraction: 0.0, ..Default::default() },
            &mut reg,
        );
        let run = |nodes: u32| {
            let mut sim = BatchSim::new(Cluster::homogeneous(nodes, 8), sched(None, false));
            sim.load(&wl);
            sim.run();
            sim.last_completion()
        };
        let small = run(15);
        let huge = run(60);
        prop_assert!(huge <= small, "60 nodes {huge} vs 15 nodes {small}");
    }
}
