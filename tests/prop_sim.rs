//! Property-based tests of the full simulator over random synthetic
//! workloads: whatever the mix, conservation and accounting invariants
//! hold.

use dynbatch::cluster::Cluster;
use dynbatch::core::testkit::{check, TestRng};
use dynbatch::core::{CredRegistry, DfsConfig, SchedulerConfig, SimDuration};
use dynbatch::sim::BatchSim;
use dynbatch::workload::{generate_synthetic, SyntheticConfig};

fn sched(cap: Option<u64>, preempt: bool) -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = match cap {
        None => DfsConfig::highest_priority(),
        Some(c) => DfsConfig::uniform_target(c, SimDuration::from_hours(1)),
    };
    s.preempt_backfilled_for_dyn = preempt;
    s
}

#[test]
fn random_workloads_preserve_invariants() {
    check(24, 0x51u64, |rng: &mut TestRng| {
        let seed = rng.below(1_000_000);
        let jobs = rng.range_usize(5, 60);
        let evolving_fraction = rng.f64();
        let cap = rng.chance(0.5).then(|| rng.range(10, 2000));
        let preempt = rng.chance(0.5);

        let mut reg = CredRegistry::new();
        let wl = generate_synthetic(
            &SyntheticConfig {
                seed,
                jobs,
                evolving_fraction,
                ..Default::default()
            },
            &mut reg,
        );
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), sched(cap, preempt));
        sim.load(&wl);
        sim.run();

        // 1. Every job reached a terminal state and the cluster drained.
        assert!(sim.server().is_drained());
        assert_eq!(sim.server().cluster().idle_cores(), 120);
        if let Err(e) = sim.server().cluster().check_invariants() {
            panic!("cluster invariant: {e}");
        }

        // 2. Accounting is complete and causally sane.
        let outcomes = sim.server().accounting().outcomes();
        assert_eq!(
            outcomes.len() as u64 + sim.stats().walltime_kills,
            jobs as u64
        );
        for o in outcomes {
            assert!(o.start_time >= o.submit_time, "{:?}", o.id);
            assert!(o.end_time > o.start_time, "{:?}", o.id);
            assert!(o.cores_final >= o.cores_requested);
            assert!(o.dyn_grants <= o.dyn_requests);
        }

        // 3. Utilization is a fraction; busy time never exceeds capacity.
        let util = sim.utilization().utilization(sim.last_completion());
        assert!((0.0..=1.0 + 1e-9).contains(&util), "util {util}");

        // 4. Makespan is bounded below by perfect packing of the work
        //    actually performed.
        let core_secs = sim.utilization().core_seconds(sim.last_completion());
        let makespan = sim
            .last_completion()
            .duration_since(sim.first_submit())
            .as_secs_f64();
        assert!(
            makespan + 1.0 >= core_secs / 120.0,
            "{makespan} vs {core_secs}"
        );

        // 5. Grant accounting matches per-job records.
        let grants: u32 = outcomes.iter().map(|o| o.dyn_grants).sum();
        assert_eq!(grants as u64, sim.stats().dyn_granted);
    });
}

#[test]
fn more_resources_never_hurt_makespan_for_rigid_fifo() {
    check(12, 0x600D, |rng: &mut TestRng| {
        // With rigid jobs only and identical scheduling, a strictly larger
        // cluster finishes no later (monotonicity sanity of the whole
        // pipeline). Backfill can reorder under equal capacity, but added
        // capacity only removes constraints here because priorities are
        // FIFO and job runtimes are fixed.
        let seed = rng.below(100_000);
        let jobs = rng.range_usize(5, 40);
        let mut reg = CredRegistry::new();
        let wl = generate_synthetic(
            &SyntheticConfig {
                seed,
                jobs,
                evolving_fraction: 0.0,
                ..Default::default()
            },
            &mut reg,
        );
        let run = |nodes: u32| {
            let mut sim = BatchSim::new(Cluster::homogeneous(nodes, 8), sched(None, false));
            sim.load(&wl);
            sim.run();
            sim.last_completion()
        };
        let small = run(15);
        let huge = run(60);
        assert!(huge <= small, "60 nodes {huge} vs 15 nodes {small}");
    });
}
