//! Full dynamic-ESP runs across the paper's configurations, asserting the
//! qualitative results of Table II and Figs 8–9.

use dynbatch::core::{CredRegistry, DfsConfig, JobOutcome, SchedulerConfig, SimDuration};
use dynbatch::metrics::{waits_by_submission, waits_of_type};
use dynbatch::sim::{run_experiment, ExperimentConfig, ExperimentResult};
use dynbatch::workload::{generate_esp, EspConfig};

fn run(label: &str, cap: Option<u64>, dynamic: bool, seed: u64) -> ExperimentResult {
    let mut reg = CredRegistry::new();
    let mut wl_cfg = if dynamic {
        EspConfig::paper_dynamic()
    } else {
        EspConfig::paper_static()
    };
    wl_cfg.seed = seed;
    let wl = generate_esp(&wl_cfg, &mut reg);
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = match cap {
        None => DfsConfig::highest_priority(),
        Some(c) => DfsConfig::uniform_target(c, SimDuration::from_hours(1)),
    };
    run_experiment(&ExperimentConfig::paper_cluster(label, s), &wl)
}

#[test]
fn all_230_jobs_complete_in_every_config() {
    for (label, cap, dynamic) in [
        ("Static", None, false),
        ("Dyn-HP", None, true),
        ("Dyn-500", Some(500), true),
    ] {
        let r = run(label, cap, dynamic, 2014);
        assert_eq!(r.outcomes.len(), 230, "{label}");
        assert_eq!(
            r.stats.walltime_kills, 0,
            "{label}: no job overruns its walltime"
        );
        // Both Z jobs ran on the full machine.
        let z: Vec<&JobOutcome> = r.outcomes.iter().filter(|o| o.name == "Z").collect();
        assert_eq!(z.len(), 2);
        for o in z {
            assert_eq!(o.cores_requested, 120);
        }
    }
}

#[test]
fn dynamic_hp_beats_static_on_every_system_metric() {
    // Averaged over a few submission orders to suppress single-run noise
    // (the paper reports a single fixed ESP order).
    let seeds = [1u64, 2, 3, 4];
    let (mut s_mk, mut h_mk, mut s_ut, mut h_ut) = (0.0, 0.0, 0.0, 0.0);
    let mut satisfied = 0usize;
    for &seed in &seeds {
        let st = run("Static", None, false, seed);
        let hp = run("Dyn-HP", None, true, seed);
        s_mk += st.summary.makespan.as_mins_f64();
        h_mk += hp.summary.makespan.as_mins_f64();
        s_ut += st.summary.utilization;
        h_ut += hp.summary.utilization;
        satisfied += hp.summary.satisfied_dyn_jobs;
    }
    assert!(
        h_mk < s_mk,
        "dynamic workload finishes sooner: {h_mk} vs {s_mk}"
    );
    assert!(
        h_ut > s_ut,
        "dynamic workload utilises better: {h_ut} vs {s_ut}"
    );
    assert!(
        satisfied / seeds.len() >= 20,
        "a healthy fraction of the 69 evolving jobs is satisfied"
    );
}

#[test]
fn fairness_cap_trades_grants_for_protection() {
    // Tighter cumulative-delay caps must satisfy fewer dynamic requests
    // and reject more of them on fairness grounds (paper Table II trend).
    let seeds = [1u64, 2, 3];
    let caps = [100u64, 300, 0 /* 0 = HP */];
    let mut sats = Vec::new();
    let mut fair_rejects = Vec::new();
    for &cap in &caps {
        let (mut s, mut f) = (0usize, 0u64);
        for &seed in &seeds {
            let r = if cap == 0 {
                run("HP", None, true, seed)
            } else {
                run("capped", Some(cap), true, seed)
            };
            s += r.summary.satisfied_dyn_jobs;
            f += r.stats.dyn_rejected_fairness;
        }
        sats.push(s);
        fair_rejects.push(f);
    }
    assert!(sats[0] < sats[2], "cap 100 grants fewer than HP: {sats:?}");
    assert!(sats[0] <= sats[1], "tighter cap grants no more: {sats:?}");
    assert!(
        fair_rejects[0] > fair_rejects[1],
        "tighter cap rejects more: {fair_rejects:?}"
    );
    assert_eq!(fair_rejects[2], 0, "HP never rejects on fairness");
}

#[test]
fn hp_hurts_mid_range_waiters_and_dfs_bounds_the_charge() {
    // Fig 8: a band of jobs waits longer under Dyn-HP than Static.
    let st = run("Static", None, false, 2014);
    let hp = run("Dyn-HP", None, true, 2014);
    let w_st: Vec<f64> = waits_by_submission(&st.outcomes)
        .into_iter()
        .map(|(_, w)| w)
        .collect();
    let w_hp: Vec<f64> = waits_by_submission(&hp.outcomes)
        .into_iter()
        .map(|(_, w)| w)
        .collect();
    let delayed_hp = (0..w_st.len()).filter(|&i| w_hp[i] > w_st[i] + 1.0).count();
    assert!(delayed_hp > 10, "some jobs pay for HP grants: {delayed_hp}");

    // Figs 10–11: the fairness policy bounds what dynamic allocations may
    // charge queued jobs. The committed DFS delay must shrink with the
    // cap, across seeds (per-job wait trajectories are chaotic; the
    // charged delay is the policy's direct lever).
    for seed in [1u64, 2, 3, 2014] {
        let hp = run("Dyn-HP", None, true, seed);
        let capped = run("Dyn-100", Some(100), true, seed);
        assert!(
            capped.stats.delay_charged_ms < hp.stats.delay_charged_ms,
            "seed {seed}: {} < {}",
            capped.stats.delay_charged_ms,
            hp.stats.delay_charged_ms
        );
    }
}

#[test]
fn type_l_jobs_observable_as_in_fig9() {
    let st = run("Static", None, false, 2014);
    let hp = run("Dyn-HP", None, true, 2014);
    let l_st = waits_of_type(&st.outcomes, "L");
    let l_hp = waits_of_type(&hp.outcomes, "L");
    assert_eq!(l_st.len(), 36);
    assert_eq!(l_hp.len(), 36);
    // Some L jobs are affected by dynamic allocations (the paper: half).
    let affected = l_hp.iter().zip(&l_st).filter(|(h, s)| h > s).count();
    assert!(
        affected >= 5,
        "{affected} of 36 L jobs wait longer under HP"
    );
}

#[test]
fn z_rule_holds() {
    // While a Z job queues nothing backfills, and the Z jobs themselves
    // run back-to-back on the whole machine.
    let r = run("Dyn-HP", None, true, 2014);
    let z: Vec<&JobOutcome> = r.outcomes.iter().filter(|o| o.name == "Z").collect();
    assert!(!z[0].backfilled && !z[1].backfilled);
    // The second Z starts exactly when the first ends (no idle gap on a
    // drained machine).
    let (first, second) = if z[0].start_time <= z[1].start_time {
        (z[0], z[1])
    } else {
        (z[1], z[0])
    };
    assert_eq!(second.start_time, first.end_time);
}
