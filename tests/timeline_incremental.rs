//! End-to-end rebuild-equivalence for the incremental availability
//! timeline (`dynbatch::sched::incremental`).
//!
//! The delta-maintained base profile is a pure optimisation: a simulator
//! run with it enabled (the default) must take byte-identical scheduling
//! decisions — every grant, delay charge, start and outcome — as a run
//! that rebuilds the profile from `Snapshot::running` each iteration.
//! Variants cover preemption, malleable shrink/grow, the dynamic
//! partition (including its re-expansion after over-freeing grants),
//! the guaranteeing policy, negotiation deferrals, and node fail/repair
//! (the capacity-change rebuild path). The explicit check flag keeps the
//! per-iteration byte-equality guard on even under `--release`.

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, JobOutcome, NodeId, SchedulerConfig, SimDuration, SimTime,
};
use dynbatch::sched::{DynDecision, TimelineStats};
use dynbatch::sim::BatchSim;
use dynbatch::workload::{generate_esp, EspConfig, WorkloadItem};

struct RunResult {
    dyn_log: Vec<(SimTime, DynDecision)>,
    outcomes: Vec<JobOutcome>,
    end: SimTime,
    stats: TimelineStats,
}

/// Runs `wl` to drain with the incremental timeline on or off, optionally
/// injecting node failures/repairs, and returns everything the two paths
/// must agree on.
fn run(
    cfg: SchedulerConfig,
    wl: &[WorkloadItem],
    incremental: bool,
    faults: &[(u64, u32)],
    repairs: &[(u64, u32)],
) -> RunResult {
    let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), cfg);
    sim.maui_mut().set_incremental_enabled(incremental);
    sim.maui_mut().set_incremental_check_enabled(true);
    sim.load(wl);
    for &(at, node) in faults {
        sim.inject_failure(SimTime::from_secs(at), NodeId(node));
    }
    for &(at, node) in repairs {
        sim.inject_repair(SimTime::from_secs(at), NodeId(node));
    }
    sim.run();
    assert!(sim.server().is_drained());
    RunResult {
        dyn_log: sim.dyn_decision_log().to_vec(),
        outcomes: sim.server().accounting().outcomes().to_vec(),
        end: sim.last_completion(),
        stats: sim.maui().timeline_stats(),
    }
}

fn esp_workload(seed: u64) -> Vec<WorkloadItem> {
    let mut reg = CredRegistry::new();
    let mut wl_cfg = EspConfig::paper_dynamic();
    wl_cfg.seed = seed;
    generate_esp(&wl_cfg, &mut reg)
}

/// The ESP workload without its full-machine Z jobs — for variants where
/// capacity is reduced (failed nodes) or permanently partitioned, under
/// which a 120-core job could never submit or start.
fn esp_workload_partial(seed: u64) -> Vec<WorkloadItem> {
    let mut wl = esp_workload(seed);
    wl.retain(|item| item.spec.cores < 120);
    wl
}

/// Asserts byte-equality of the two runs' observable behaviour.
fn assert_equivalent(label: &str, inc: &RunResult, reb: &RunResult) {
    assert_eq!(
        inc.dyn_log, reb.dyn_log,
        "{label}: dynamic decisions diverged"
    );
    assert_eq!(inc.outcomes, reb.outcomes, "{label}: job outcomes diverged");
    assert_eq!(inc.end, reb.end, "{label}: makespan diverged");
}

#[test]
fn incremental_and_rebuild_runs_are_byte_identical() {
    for (label, dfs) in [
        ("Dyn-HP", DfsConfig::highest_priority()),
        (
            "Dyn-500",
            DfsConfig::uniform_target(500, SimDuration::from_hours(1)),
        ),
    ] {
        for seed in [1u64, 2014] {
            let mut cfg = SchedulerConfig::paper_eval();
            cfg.dfs = dfs.clone();
            let wl = esp_workload(seed);
            let inc = run(cfg.clone(), &wl, true, &[], &[]);
            let reb = run(cfg, &wl, false, &[], &[]);

            assert!(
                inc.dyn_log.iter().any(|(_, d)| d.is_granted()),
                "{label}/{seed}: no grants — the comparison would be vacuous"
            );
            assert_equivalent(&format!("{label}/{seed}"), &inc, &reb);

            // The fast path actually carried the run: exactly the first
            // iteration rebuilt (no capacity changes here), the rest
            // applied deltas.
            assert_eq!(inc.stats.rebuilds, 1, "{label}/{seed}: extra rebuilds");
            assert!(inc.stats.delta_batches > 0 && inc.stats.deltas_applied > 0);
            // The disabled run never touched the incremental machinery.
            assert_eq!(reb.stats, TimelineStats::default());
        }
    }
}

#[test]
fn feature_variants_are_equivalent() {
    type Tweak = Box<dyn Fn(&mut SchedulerConfig)>;
    let variants: Vec<(&str, Tweak)> = vec![
        (
            "preempt+shrink+grow",
            Box::new(|c: &mut SchedulerConfig| {
                c.preempt_backfilled_for_dyn = true;
                c.shrink_malleable_for_dyn = true;
                c.grow_malleable_on_idle = true;
            }),
        ),
        (
            "guaranteeing",
            Box::new(|c: &mut SchedulerConfig| c.guarantee_evolving = true),
        ),
    ];
    for (label, tweak) in variants {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        tweak(&mut cfg);
        let wl = esp_workload(7);
        let inc = run(cfg.clone(), &wl, true, &[], &[]);
        let reb = run(cfg, &wl, false, &[], &[]);
        assert_equivalent(label, &inc, &reb);
        assert_eq!(inc.stats.rebuilds, 1, "{label}: extra rebuilds");
    }
}

#[test]
fn dynamic_partition_variant_is_equivalent() {
    // A permanent dynamic partition (plus preemption, which over-frees
    // cores and triggers the partition's re-expansion) — full-machine
    // jobs excluded since they can never start beside the partition.
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::highest_priority();
    cfg.dyn_partition_cores = 16;
    cfg.preempt_backfilled_for_dyn = true;
    let wl = esp_workload_partial(7);
    let inc = run(cfg.clone(), &wl, true, &[], &[]);
    let reb = run(cfg, &wl, false, &[], &[]);
    assert_equivalent("dyn-partition", &inc, &reb);
    assert_eq!(inc.stats.rebuilds, 1, "dyn-partition: extra rebuilds");
}

#[test]
fn negotiation_deferrals_are_equivalent() {
    // Give every evolving job a negotiation window so requests are
    // deferred and retried across iterations (server state changes with
    // no running-set delta — the log must stay consistent through them).
    let mut wl = esp_workload(11);
    for item in &mut wl {
        if item.spec.exec.extra_cores() > 0 {
            item.spec.dyn_timeout = Some(SimDuration::from_secs(1800));
        }
    }
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::uniform_target(100, SimDuration::from_hours(1));
    let inc = run(cfg.clone(), &wl, true, &[], &[]);
    let reb = run(cfg, &wl, false, &[], &[]);
    assert_equivalent("negotiation", &inc, &reb);
}

#[test]
fn fault_injection_rebuild_path_is_equivalent() {
    // Node failures requeue victims and change capacity; repairs change
    // capacity again. Each capacity change invalidates the delta stream —
    // the timeline must fall back to a rebuild and then resume applying
    // deltas, staying byte-identical throughout.
    let faults = [(3_000u64, 3u32), (20_000, 7)];
    let repairs = [(40_000u64, 3u32), (60_000, 7)];
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::highest_priority();
    let wl = esp_workload_partial(5);
    let inc = run(cfg.clone(), &wl, true, &faults, &repairs);
    let reb = run(cfg, &wl, false, &faults, &repairs);
    assert_equivalent("faults", &inc, &reb);
    // Initial rebuild plus one per capacity-changing drain.
    assert!(
        inc.stats.rebuilds >= 3,
        "capacity changes must force rebuilds (saw {})",
        inc.stats.rebuilds
    );
    assert!(
        inc.stats.delta_batches > 0,
        "the fast path must resume after each rebuild"
    );
}
