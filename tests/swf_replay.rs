//! End-to-end: an SWF (Parallel Workloads Archive format) trace through
//! the full batch system.

use dynbatch::core::{CredRegistry, DfsConfig, SchedulerConfig};
use dynbatch::sim::{run_experiment, ExperimentConfig};
use dynbatch::workload::{parse_swf, SwfConfig};
use std::fmt::Write as _;

/// Builds a synthetic-but-valid SWF text: `n` jobs, mixed sizes/runtimes,
/// with SWF conventions (−1 for unknown, `;` headers).
fn synthetic_swf(n: usize) -> String {
    let mut out = String::from("; UnixStartTime: 0\n; MaxProcs: 128\n");
    for i in 0..n {
        let submit = i * 20;
        let runtime = 120 + (i * 37) % 900;
        let procs = 1 + (i * 13) % 48;
        let req_time = runtime + runtime / 4; // users pad 25 %
        let user = i % 7;
        let _ = writeln!(
            out,
            "{} {} 0 {} {} -1 -1 {} {} -1 1 {} 1 -1 1 -1 -1 -1",
            i + 1,
            submit,
            runtime,
            procs,
            procs,
            req_time,
            user
        );
    }
    out
}

#[test]
fn swf_trace_runs_to_completion() {
    let text = synthetic_swf(80);
    let mut reg = CredRegistry::new();
    let cfg = SwfConfig {
        evolving_fraction: 0.3,
        ..Default::default()
    };
    let wl = parse_swf(&text, &cfg, &mut reg).expect("parse");
    assert_eq!(wl.len(), 80);

    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    let r = run_experiment(&ExperimentConfig::paper_cluster("swf", sched), &wl);
    assert_eq!(r.outcomes.len(), 80);
    assert!(r.summary.utilization > 0.0);
    // The converted evolving jobs issued requests.
    assert!(r.stats.dyn_granted + r.stats.dyn_rejected > 0);
}

#[test]
fn swf_walltime_padding_matters() {
    // The same trace with exact walltimes should schedule at least as
    // tightly (more backfill) as with padded requested walltimes.
    let text = synthetic_swf(60);
    let sched = {
        let mut s = SchedulerConfig::paper_eval();
        s.dfs = DfsConfig::highest_priority();
        s
    };
    let run = |use_requested| {
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            use_requested_walltime: use_requested,
            ..Default::default()
        };
        let wl = parse_swf(&text, &cfg, &mut reg).unwrap();
        run_experiment(&ExperimentConfig::paper_cluster("swf", sched.clone()), &wl)
    };
    let padded = run(true);
    let exact = run(false);
    assert_eq!(padded.outcomes.len(), exact.outcomes.len());
    // Identical job set; both complete. (Backfill aggressiveness differs,
    // but makespan ordering is workload-dependent — just sanity-check
    // both drained and recorded sane utilizations.)
    for r in [&padded, &exact] {
        assert!((0.0..=1.0).contains(&r.summary.utilization));
        assert_eq!(r.stats.walltime_kills, 0);
    }
}
