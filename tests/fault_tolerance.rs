//! Node-failure handling: the paper's introduction motivates dynamic
//! allocation partly by fault tolerance ("allocating spare nodes to
//! affected jobs"). The substrate supports failure injection; affected
//! jobs are requeued and rescheduled onto surviving nodes.

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, JobSpec, NodeId, SchedulerConfig, SimDuration, SimTime,
};
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;

fn sched() -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s
}

#[test]
fn failed_node_requeues_and_restarts_jobs() {
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched());
    // A 32-core job spans every node; any failure hits it.
    sim.load(&[WorkloadItem {
        at: SimTime::ZERO,
        spec: JobSpec::rigid("wide", u, g, 32, SimDuration::from_secs(1000)),
    }]);
    sim.inject_failure(SimTime::from_secs(100), NodeId(2));
    sim.inject_repair(SimTime::from_secs(200), NodeId(2));
    sim.run();

    let outcomes = sim.server().accounting().outcomes();
    assert_eq!(outcomes.len(), 1, "the job eventually completes");
    let o = &outcomes[0];
    // Restarted from scratch after the repair: it cannot fit on 3 nodes,
    // so it waits for the repair at t=200 and runs 1000 s from there.
    assert_eq!(o.start_time, SimTime::from_secs(200));
    assert_eq!(o.end_time, SimTime::from_secs(1200));
    sim.server().cluster().check_invariants().unwrap();
}

#[test]
fn unaffected_jobs_keep_running() {
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched());
    sim.load(&[
        // Packs onto node 0.
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("small", u, g, 8, SimDuration::from_secs(500)),
        },
    ]);
    // Fail a node the job does not occupy.
    sim.inject_failure(SimTime::from_secs(100), NodeId(3));
    sim.run();
    let o = &sim.server().accounting().outcomes()[0];
    assert_eq!(o.start_time, SimTime::ZERO);
    assert_eq!(o.end_time, SimTime::from_secs(500), "undisturbed");
}

#[test]
fn smaller_jobs_reschedule_onto_survivors() {
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched());
    sim.load(&[WorkloadItem {
        at: SimTime::ZERO,
        spec: JobSpec::rigid("spread", u, g, 16, SimDuration::from_secs(300)),
    }]);
    let victim_node = NodeId(0); // Pack policy puts the job on nodes 0–1.
    sim.inject_failure(SimTime::from_secs(50), victim_node);
    sim.run();
    let o = &sim.server().accounting().outcomes()[0];
    // Requeued at t=50 and restarted immediately on the 3 surviving nodes
    // (24 cores ≥ 16).
    assert_eq!(o.start_time, SimTime::from_secs(50));
    assert_eq!(o.end_time, SimTime::from_secs(350));
    // The failed node is still down and empty at the end.
    assert_eq!(sim.server().cluster().total_cores(), 24);
    sim.server().cluster().check_invariants().unwrap();
}
