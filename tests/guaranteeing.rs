//! The guaranteeing site policy (paper §II-B): evolving jobs pre-reserve
//! their maximum dynamic demand; every request is granted, but the
//! reserve blocks rigid jobs and idles until claimed.

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, ExecutionModel, JobSpec, SchedulerConfig, SimDuration, SimTime,
};
use dynbatch::sim::{run_experiment, BatchSim, ExperimentConfig};
use dynbatch::workload::{generate_esp, EspConfig, WorkloadItem};

fn sched(guarantee: bool) -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s.guarantee_evolving = guarantee;
    s
}

#[test]
fn every_request_satisfied_under_guarantee() {
    let mut reg = CredRegistry::new();
    let wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
    let r = run_experiment(&ExperimentConfig::paper_cluster("guar", sched(true)), &wl);
    assert_eq!(
        r.summary.satisfied_dyn_jobs, 69,
        "all evolving jobs guaranteed"
    );
    assert_eq!(r.stats.dyn_rejected, 0);
}

#[test]
fn guarantee_costs_system_performance() {
    // The paper's §II-B argument, averaged over seeds.
    let seeds = [1u64, 2, 3, 4];
    let (mut g_util, mut n_util, mut g_mk, mut n_mk) = (0.0, 0.0, 0.0, 0.0);
    for &seed in &seeds {
        let mut reg = CredRegistry::new();
        let mut cfg = EspConfig::paper_dynamic();
        cfg.seed = seed;
        let wl = generate_esp(&cfg, &mut reg);
        let g = run_experiment(&ExperimentConfig::paper_cluster("guar", sched(true)), &wl);
        let n = run_experiment(&ExperimentConfig::paper_cluster("non", sched(false)), &wl);
        g_util += g.summary.utilization;
        n_util += n.summary.utilization;
        g_mk += g.summary.makespan.as_mins_f64();
        n_mk += n.summary.makespan.as_mins_f64();
    }
    assert!(
        g_util < n_util,
        "guarantee wastes reserved cores: {g_util} vs {n_util}"
    );
    assert!(
        g_mk > n_mk,
        "guarantee lengthens the workload: {g_mk} vs {n_mk}"
    );
}

#[test]
fn reserve_blocks_rigid_jobs_until_claimed() {
    // 2 nodes × 8 = 16 cores. An evolving job (8 cores + 8 reserve) takes
    // the whole machine's worth of planning width; a rigid 8-core job
    // cannot start although 8 cores look idle.
    let mut reg = CredRegistry::new();
    let cfd = reg.user("cfd");
    let other = reg.user("other");
    let g = reg.group_of(cfd);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(true));
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving(
                "grower",
                cfd,
                g,
                8,
                ExecutionModel::esp_evolving(1000, 700, 8),
            ),
        },
        WorkloadItem {
            at: SimTime::from_secs(10),
            spec: JobSpec::rigid("rigid", other, g, 8, SimDuration::from_secs(100)),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let grower = outcomes.iter().find(|o| o.name == "grower").unwrap();
    let rigid = outcomes.iter().find(|o| o.name == "rigid").unwrap();
    // The grant came from the reserve, instantly, with no fairness charge.
    assert_eq!(grower.dyn_grants, 1);
    assert_eq!(grower.cores_final, 16);
    assert_eq!(sim.stats().delay_charged_ms, 0);
    // The rigid job had to wait for the evolving job to finish: its start
    // is the grower's end, not t=10.
    assert_eq!(rigid.start_time, grower.end_time);
}

#[test]
fn without_guarantee_rigid_job_runs_alongside() {
    // Same scenario, non-guaranteeing: the rigid job starts immediately on
    // the free node, and the evolving job's request is then rejected.
    let mut reg = CredRegistry::new();
    let cfd = reg.user("cfd");
    let other = reg.user("other");
    let g = reg.group_of(cfd);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(false));
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving(
                "grower",
                cfd,
                g,
                8,
                ExecutionModel::esp_evolving(1000, 700, 8),
            ),
        },
        WorkloadItem {
            at: SimTime::from_secs(10),
            spec: JobSpec::rigid("rigid", other, g, 8, SimDuration::from_secs(1000)),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let rigid = outcomes.iter().find(|o| o.name == "rigid").unwrap();
    assert_eq!(
        rigid.start_time,
        SimTime::from_secs(10),
        "starts immediately"
    );
    let grower = outcomes.iter().find(|o| o.name == "grower").unwrap();
    assert_eq!(grower.dyn_grants, 0, "no cores left to grow onto");
}
