//! The negotiation extension (the paper's §III-C future work): a
//! `tm_dynget()` carrying a timeout stays queued at the server — the
//! scheduler reconsiders it every iteration and reports availability
//! estimates — instead of failing straight back to the application.

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, ExecutionModel, JobClass, JobSpec, SchedulerConfig, SimDuration,
    SimTime, SpeedupModel, UserId,
};
use dynbatch::daemon::{DaemonConfig, DaemonHandle};
use dynbatch::server::TmResponse;
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;
use std::time::Duration;

fn hp_sched() -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s
}

/// An evolving spec that issues one negotiated request at 10 % of its
/// 1000 s static runtime, with the given negotiation window.
fn negotiating_spec(reg: &mut CredRegistry, name: &str, timeout: Option<SimDuration>) -> JobSpec {
    let user = reg.user(name);
    let group = reg.group_of(user);
    JobSpec {
        name: name.into(),
        user,
        group,
        class: JobClass::Evolving,
        cores: 8,
        walltime: SimDuration::from_secs(1000),
        exec: ExecutionModel::Evolving {
            set: SimDuration::from_secs(1000),
            det: SimDuration::from_secs(700),
            extra_cores: 8,
            request_points: vec![0.1],
            speedup: SpeedupModel::Interpolate,
        },
        priority_boost: 0,
        suppress_backfill_while_queued: false,
        malleable: None,
        moldable: None,
        dyn_timeout: timeout,
        queue: None,
    }
}

fn filler(reg: &mut CredRegistry, cores: u32, secs: u64) -> JobSpec {
    let user = reg.user("filler");
    JobSpec::rigid(
        "filler",
        user,
        reg.group_of(user),
        cores,
        SimDuration::from_secs(secs),
    )
}

/// Cluster: 2 nodes × 8 = 16 cores. The evolving job holds 8; a filler
/// holds the other 8 until t = 300 s. The request fires at t = 100 s.
fn scenario(timeout: Option<SimDuration>, filler_secs: u64) -> BatchSim {
    let mut reg = CredRegistry::new();
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), hp_sched());
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: negotiating_spec(&mut reg, "nego", timeout),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: filler(&mut reg, 8, filler_secs),
        },
    ]);
    sim
}

#[test]
fn without_negotiation_busy_request_fails() {
    let mut sim = scenario(None, 300);
    sim.run();
    assert_eq!(sim.stats().dyn_granted, 0);
    assert_eq!(sim.stats().dyn_rejected, 1);
    let o = &sim.server().accounting().outcomes();
    let nego = o.iter().find(|o| o.name == "nego").unwrap();
    assert_eq!(nego.runtime(), SimDuration::from_secs(1000), "ran static");
}

#[test]
fn negotiated_request_granted_when_resources_free_up() {
    // Window of 400 s: the filler ends at t = 300 < 100 + 400, so the
    // deferred request is granted at t = 300.
    let mut sim = scenario(Some(SimDuration::from_secs(400)), 300);
    sim.run();
    assert_eq!(sim.stats().dyn_granted, 1);
    assert!(
        sim.stats().dyn_deferred >= 1,
        "it waited at least one cycle"
    );
    assert_eq!(sim.stats().dyn_expired, 0);
    let outcomes = sim.server().accounting().outcomes();
    let nego = outcomes.iter().find(|o| o.name == "nego").unwrap();
    // Granted at t=300 (30 % of SET elapsed): runtime = 0.3·1000 + 0.7·700.
    assert_eq!(nego.runtime(), SimDuration::from_secs(790));
    assert_eq!(nego.cores_final, 16);
}

#[test]
fn negotiated_request_expires_at_deadline() {
    // Window of 100 s: deadline t = 200 < filler end t = 300 — expires.
    let mut sim = scenario(Some(SimDuration::from_secs(100)), 300);
    sim.run();
    assert_eq!(sim.stats().dyn_granted, 0);
    assert_eq!(sim.stats().dyn_expired, 1);
    let outcomes = sim.server().accounting().outcomes();
    let nego = outcomes.iter().find(|o| o.name == "nego").unwrap();
    assert_eq!(nego.runtime(), SimDuration::from_secs(1000), "ran static");
    assert_eq!(nego.cores_final, 8);
}

#[test]
fn negotiation_respects_fairness_once_resources_appear() {
    // Same busy window, but a queued 8-core job would start exactly on the
    // cores the filler frees at t = 300: granting the deferred request
    // there would push it to the evolving job's walltime end (t = 1000), a
    // 700 s delay. Under a tight DFS cap the request must keep being
    // refused on fairness grounds until its deadline (t = 700) passes —
    // before the waiter finishes (t = 800) and would have made a free
    // grant possible.
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::uniform_target(1, SimDuration::from_hours(1));
    let mut reg = CredRegistry::new();
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched);
    let waiter = {
        let user = reg.user("waiter");
        JobSpec::rigid(
            "waiter",
            user,
            reg.group_of(user),
            8,
            SimDuration::from_secs(500),
        )
    };
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: negotiating_spec(&mut reg, "nego", Some(SimDuration::from_secs(600))),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: filler(&mut reg, 8, 300),
        },
        WorkloadItem {
            at: SimTime::from_secs(10),
            spec: waiter,
        },
    ]);
    sim.run();
    assert_eq!(
        sim.stats().dyn_granted,
        0,
        "fairness holds through negotiation"
    );
    assert_eq!(sim.stats().dyn_expired, 1);
    // And the protected waiter indeed started as soon as the filler ended.
    let outcomes = sim.server().accounting().outcomes();
    let w = outcomes.iter().find(|o| o.name == "waiter").unwrap();
    assert_eq!(w.start_time, SimTime::from_secs(300));
}

#[test]
fn daemon_negotiated_roundtrip() {
    let d = DaemonHandle::start(DaemonConfig {
        nodes: 2,
        cores_per_node: 8,
        sched: hp_sched(),
        faults: None,
        replication: None,
    });
    let mk = |name: &str, user: u32, cores: u32, ms: u64| JobSpec {
        name: name.into(),
        user: UserId(user),
        group: dynbatch::core::GroupId(0),
        class: JobClass::Rigid,
        cores,
        walltime: SimDuration::from_millis(ms),
        exec: ExecutionModel::Fixed {
            duration: SimDuration::from_millis(ms),
        },
        priority_boost: 0,
        suppress_backfill_while_queued: false,
        malleable: None,
        moldable: None,
        dyn_timeout: None,
        queue: None,
    };
    let app = d.qsub(mk("app", 0, 8, 60_000)).expect("qsub");
    assert!(d.await_running(app, Duration::from_secs(2)));
    // Fill the second node for ~200 ms.
    let blocker = d.qsub(mk("blocker", 1, 8, 200)).expect("qsub blocker");
    assert!(d.await_running(blocker, Duration::from_secs(2)));

    // Non-negotiated request fails immediately.
    assert!(matches!(d.tm_dynget(app, 8), TmResponse::DynDenied));

    // Negotiated request (2 s window) blocks until the blocker exits,
    // then is granted.
    let t0 = std::time::Instant::now();
    let resp = d.tm_dynget_negotiated(app, 8, Duration::from_secs(2));
    let waited = t0.elapsed();
    match resp {
        TmResponse::DynGranted { added } => assert_eq!(added.total_cores(), 8),
        other => panic!("expected negotiated grant, got {other:?}"),
    }
    assert!(
        waited >= Duration::from_millis(100),
        "actually waited: {waited:?}"
    );
    assert!(
        waited < Duration::from_secs(2),
        "granted before expiry: {waited:?}"
    );

    // A second negotiated request can only expire (machine is full now).
    let t0 = std::time::Instant::now();
    let resp = d.tm_dynget_negotiated(app, 8, Duration::from_millis(150));
    assert!(matches!(resp, TmResponse::DynDenied), "{resp:?}");
    assert!(t0.elapsed() >= Duration::from_millis(140));

    let _ = d.qdel(app);
    d.shutdown();
}
