//! The separate dynamic partition (paper §II-B's second availability
//! source): a slice of the machine only dynamic requests may use. Static
//! jobs never touch it, so partition grants are delay-free by
//! construction.

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredRegistry, DfsConfig, ExecutionModel, JobSpec, SchedulerConfig, SimDuration, SimTime,
};
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;

fn sched(partition: u32, cap: Option<u64>) -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = match cap {
        None => DfsConfig::highest_priority(),
        Some(c) => DfsConfig::uniform_target(c, SimDuration::from_hours(1)),
    };
    s.dyn_partition_cores = partition;
    s
}

#[test]
fn static_jobs_never_enter_the_partition() {
    // 16 cores, 4 partitioned: two 12-core rigid jobs must run serially
    // even though 16 cores exist.
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(4, None));
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("a", u, g, 12, SimDuration::from_secs(100)),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("b", u, g, 4, SimDuration::from_secs(100)),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let a = outcomes.iter().find(|o| o.name == "a").unwrap();
    let b = outcomes.iter().find(|o| o.name == "b").unwrap();
    // a (12) starts first; b (4) cannot share the instant because only
    // 16 − 4(partition) − 12 = 0 cores remain for static work.
    assert_eq!(a.start_time, SimTime::ZERO);
    assert_eq!(
        b.start_time, a.end_time,
        "b waits for a despite idle partition cores"
    );
}

#[test]
fn partition_serves_dynamic_requests_without_delay_charges() {
    // Strictest possible fairness (cap ~0) plus a queued static job: an
    // idle-cores grant would be refused, but the partition grant charges
    // nothing and sails through.
    let mut reg = CredRegistry::new();
    let e = reg.user("evolving");
    let r = reg.user("rigid");
    let g = reg.group_of(e);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(4, Some(1)));
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving(
                "grower",
                e,
                g,
                8,
                ExecutionModel::esp_evolving(1000, 700, 4),
            ),
        },
        // Fills the remaining static capacity (16 − 4 − 8 = 4 cores).
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("filler", r, g, 4, SimDuration::from_secs(2000)),
        },
        // Queued behind everything.
        WorkloadItem {
            at: SimTime::from_secs(10),
            spec: JobSpec::rigid("waiter", r, g, 8, SimDuration::from_secs(100)),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let grower = outcomes.iter().find(|o| o.name == "grower").unwrap();
    assert_eq!(
        grower.dyn_grants, 1,
        "partition grant under a 1 s fairness cap"
    );
    assert_eq!(grower.cores_final, 12);
    assert_eq!(
        sim.stats().delay_charged_ms,
        0,
        "partition grants are delay-free"
    );
}

#[test]
fn without_partition_the_same_grant_is_refused() {
    // No partition: the 4 idle cores are the very cores a waiter —
    // submitted in the same instant the request fires (t = 160 s = 16 % of
    // SET) — would start on. Granting would push it to the evolving job's
    // walltime end, far past the 1 s cap: fairness refuses, the waiter
    // starts immediately.
    let mut reg = CredRegistry::new();
    let e = reg.user("evolving");
    let r = reg.user("rigid");
    let g = reg.group_of(e);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(0, Some(1)));
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving(
                "grower",
                e,
                g,
                8,
                ExecutionModel::esp_evolving(1000, 700, 4),
            ),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("filler", r, g, 4, SimDuration::from_secs(2000)),
        },
        WorkloadItem {
            at: SimTime::from_secs(160),
            spec: JobSpec::rigid("waiter", r, g, 4, SimDuration::from_secs(100)),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let grower = outcomes.iter().find(|o| o.name == "grower").unwrap();
    let waiter = outcomes.iter().find(|o| o.name == "waiter").unwrap();
    assert_eq!(
        grower.dyn_grants, 0,
        "granting the free cores would delay the waiter past the 1 s cap"
    );
    assert!(sim.stats().dyn_rejected_fairness >= 1);
    assert_eq!(
        waiter.start_time,
        SimTime::from_secs(160),
        "waiter protected"
    );
}

#[test]
fn partition_reexpands_after_overfreeing_preemption_in_same_cycle() {
    // Regression for the dynamic-partition width pin: the opening clamp
    // `dyn_partition_cores.min(base.min_idle(..))` sizes the partition
    // once per iteration, so cores durably freed *mid-iteration* — a
    // preempted victim frees its whole width, not just the request's
    // deficit — used to stay outside the partition for the rest of the
    // cycle. A later request in the same cycle then drew them from the
    // idle pool, delaying queued jobs, and strict fairness refused it.
    //
    // 16 cores, 4 partitioned, 1 s cap. At t=0: E1 (4, will ask +6) and
    // E2 (4, will ask +2) start; "big" (12) blocks and reserves; "bf" (4,
    // 400 s) backfills. "waiter" (2) queues at t=10. Both requests fire
    // at t=160 (16 % of SET):
    //   E1 +6: partition (4) + preempting bf (4) over-frees 2 cores.
    //     Without re-expansion those 2 stay idle; with it the partition
    //     re-grows to 2.
    //   E2 +2: served from the re-grown partition — zero delay, granted.
    //     Without re-expansion the same 2 cores are the waiter's earliest
    //     start, so the grant would charge ~840 s and be refused.
    let mut reg = CredRegistry::new();
    let e1 = reg.user("e1");
    let e2 = reg.user("e2");
    let r = reg.user("rigid");
    let g = reg.group_of(e1);
    let mut cfg = sched(4, Some(1));
    cfg.preempt_backfilled_for_dyn = true;
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), cfg);
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving("E1", e1, g, 4, ExecutionModel::esp_evolving(1000, 700, 6)),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving("E2", e2, g, 4, ExecutionModel::esp_evolving(1000, 700, 2)),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("big", r, g, 12, SimDuration::from_secs(500)),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("bf", r, g, 4, SimDuration::from_secs(400)),
        },
        WorkloadItem {
            at: SimTime::from_secs(10),
            spec: JobSpec::rigid("waiter", r, g, 2, SimDuration::from_secs(300)),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let e1_out = outcomes.iter().find(|o| o.name == "E1").unwrap();
    let e2_out = outcomes.iter().find(|o| o.name == "E2").unwrap();
    assert_eq!(e1_out.dyn_grants, 1, "E1's preempting grant");
    assert_eq!(e1_out.cores_final, 10);
    assert_eq!(
        e2_out.dyn_grants, 1,
        "E2 must be served from the re-expanded partition"
    );
    assert_eq!(e2_out.cores_final, 6);
    assert_eq!(
        sim.stats().delay_charged_ms,
        0,
        "both grants drew on partition/preempted cores only"
    );
    assert_eq!(
        sim.stats().dyn_rejected_fairness,
        0,
        "nothing should have been refused on fairness grounds"
    );
}

#[test]
fn shrink_then_dynamic_request_in_same_cycle() {
    // The shrink path frees exactly the request's deficit, so nothing is
    // durably freed; a second request in the same cycle must see the
    // updated (post-shrink) core counts and shrink further rather than
    // double-count the first shrink's cores. M (6 cores, malleable
    // [2, 8]) is shrunk twice in one cycle: 6 → 4 for E1's +6, then
    // 4 → 2 for E2's +2.
    let mut reg = CredRegistry::new();
    let e1 = reg.user("e1");
    let e2 = reg.user("e2");
    let m = reg.user("mall");
    let g = reg.group_of(e1);
    let mut cfg = sched(4, Some(1));
    cfg.shrink_malleable_for_dyn = true;
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), cfg);
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving("E1", e1, g, 4, ExecutionModel::esp_evolving(1000, 700, 6)),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::evolving("E2", e2, g, 2, ExecutionModel::esp_evolving(1000, 700, 2)),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::malleable("M", m, g, 6, 2, 8, 4000),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let e1_out = outcomes.iter().find(|o| o.name == "E1").unwrap();
    let e2_out = outcomes.iter().find(|o| o.name == "E2").unwrap();
    let m_out = outcomes.iter().find(|o| o.name == "M").unwrap();
    assert_eq!(e1_out.dyn_grants, 1);
    assert_eq!(e1_out.cores_final, 10);
    assert_eq!(
        e2_out.dyn_grants, 1,
        "second request sees post-shrink state"
    );
    assert_eq!(e2_out.cores_final, 4);
    assert_eq!(m_out.cores_final, 2, "M shrunk twice in one cycle: 6→4→2");
}

#[test]
fn oversized_jobs_block_on_partition_forever_guard() {
    // A full-machine job can never run while a partition exists; it is
    // killed at its walltime... actually it never starts — the workload
    // still drains because the simulator kills nothing that never started.
    // Verify the scheduler handles the unplannable job gracefully (no
    // panic, smaller jobs proceed).
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched(4, None));
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("whale", u, g, 16, SimDuration::from_secs(100)),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("minnow", u, g, 4, SimDuration::from_secs(50)),
        },
    ]);
    // Run a bounded number of steps: the whale never starts, so the queue
    // drains of events once the minnow completes.
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].name, "minnow");
    assert_eq!(sim.server().queued_count(), 1, "the whale waits forever");
}
