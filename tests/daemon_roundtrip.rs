//! Integration tests of the threaded (wall-clock) deployment: the same
//! protocol the simulator drives, over real threads and channels.

use dynbatch::core::{
    DfsConfig, ExecutionModel, GroupId, JobClass, JobSpec, JobState, SchedulerConfig, SimDuration,
    UserId,
};
use dynbatch::daemon::{DaemonConfig, DaemonHandle};
use dynbatch::server::TmResponse;
use std::time::Duration;

fn ms(millis: u64) -> Duration {
    Duration::from_millis(millis)
}

fn rigid(name: &str, user: u32, cores: u32, millis: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        user: UserId(user),
        group: GroupId(0),
        class: JobClass::Rigid,
        cores,
        walltime: SimDuration::from_millis(millis),
        exec: ExecutionModel::Fixed {
            duration: SimDuration::from_millis(millis),
        },
        priority_boost: 0,
        suppress_backfill_while_queued: false,
        malleable: None,
        moldable: None,
        dyn_timeout: None,
        queue: None,
    }
}

fn daemon(nodes: u32) -> DaemonHandle {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    DaemonHandle::start(DaemonConfig {
        nodes,
        cores_per_node: 8,
        sched,
        faults: None,
        replication: None,
    })
}

#[test]
fn fifo_queue_processes_in_order() {
    let d = daemon(2);
    // Three full-machine jobs: strictly sequential.
    let ids: Vec<_> = (0..3)
        .map(|i| d.qsub(rigid(&format!("j{i}"), i, 16, 40)).unwrap())
        .collect();
    assert!(d.await_drained(Duration::from_secs(5)));
    // All terminal; nothing lingers.
    for id in ids {
        assert_eq!(d.qstat(id), Some(JobState::Completed));
    }
    d.shutdown();
}

#[test]
fn grow_then_shrink_then_finish() {
    let d = daemon(4);
    let job = d.qsub(rigid("elastic", 0, 8, 3_000)).unwrap();
    assert!(d.await_running(job, Duration::from_secs(2)));

    let TmResponse::DynGranted { added } = d.tm_dynget(job, 12) else {
        panic!("expected grant");
    };
    assert_eq!(added.total_cores(), 12);

    // Release an arbitrary subset (not the whole grant).
    let part = {
        let mut a = added.clone();
        a.take(5)
    };
    assert!(matches!(d.tm_dynfree(job, part), TmResponse::Freed));

    // Second grow after the first completed is fine.
    let TmResponse::DynGranted { added: more } = d.tm_dynget(job, 4) else {
        panic!("expected second grant");
    };
    assert_eq!(more.total_cores(), 4);

    let _ = d.qdel(job);
    assert!(d.await_drained(Duration::from_secs(5)));
    d.shutdown();
}

#[test]
fn overhead_grows_but_stays_small() {
    // A miniature Fig 12: allocating more nodes costs more hops but stays
    // far under a second in-process.
    let d = daemon(12);
    let job = d.qsub(rigid("grower", 0, 8, 60_000)).unwrap();
    assert!(d.await_running(job, Duration::from_secs(2)));

    for nodes in [1u32, 5, 10] {
        let (resp, latency) = d.tm_dynget_timed(job, nodes * 8);
        let TmResponse::DynGranted { added } = resp else {
            panic!("grant of {nodes} nodes");
        };
        assert_eq!(added.total_cores(), nodes * 8);
        assert!(
            latency < Duration::from_millis(500),
            "{nodes} nodes took {latency:?}"
        );
        assert!(matches!(d.tm_dynfree(job, added), TmResponse::Freed));
    }
    let _ = d.qdel(job);
    d.shutdown();
}

#[test]
fn queued_rigid_jobs_eventually_run_despite_grants() {
    // No starvation: an evolving job grabbing cores does not wedge the
    // queue forever (its walltime bounds the grant).
    let d = daemon(2);
    let grower = d.qsub(rigid("grower", 0, 8, 300)).unwrap();
    assert!(d.await_running(grower, Duration::from_secs(2)));
    let _ = d.tm_dynget(grower, 8); // takes the rest of the machine
    let waiter = d.qsub(rigid("waiter", 1, 16, 50)).unwrap();
    assert!(d.await_drained(Duration::from_secs(5)));
    assert_eq!(d.qstat(waiter), Some(JobState::Completed));
    d.shutdown();
}

#[test]
fn concurrent_clients_hammer_the_daemon() {
    // Many client threads submitting, growing, shrinking and deleting at
    // once: the server must serialise everything without deadlock or
    // bookkeeping drift.
    use std::sync::Arc;
    let d = Arc::new(daemon(8));
    let mut handles = Vec::new();
    for t in 0..6u32 {
        let d = Arc::clone(&d);
        handles.push(std::thread::spawn(move || {
            for i in 0..10u32 {
                let id = d
                    .qsub(rigid(
                        &format!("t{t}-j{i}"),
                        t,
                        1 + (i % 8),
                        20 + (i as u64 % 30),
                    ))
                    .expect("qsub");
                if i % 3 == 0 && d.await_running(id, Duration::from_secs(2)) {
                    // Try to grow; success depends on contention — both
                    // outcomes are fine, the protocol must just answer.
                    match d.tm_dynget(id, 4) {
                        TmResponse::DynGranted { added } => {
                            let _ = d.tm_dynfree(id, added);
                        }
                        TmResponse::DynDenied | TmResponse::Freed => {}
                    }
                }
                if i % 7 == 0 {
                    let _ = d.qdel(id);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    assert!(
        d.await_drained(Duration::from_secs(20)),
        "all 60 jobs terminal"
    );
    match Arc::try_unwrap(d) {
        Ok(d) => d.shutdown(),
        Err(_) => panic!("all clients joined"),
    }
}

/// Regression: a preempted-then-restarted job must run its full duration
/// the second time. Pre-fix, the first run's detached app-exit timer kept
/// ticking through the preemption and killed the *restarted* run early;
/// now app-exit firings carry the run generation and stale ones are
/// dropped (the cancelled timer never even fires).
#[test]
fn stale_app_timer_cannot_kill_restarted_job() {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    sched.preempt_backfilled_for_dyn = true;
    let d = DaemonHandle::start(DaemonConfig {
        nodes: 2,
        cores_per_node: 8,
        sched,
        faults: None,
        replication: None,
    });

    // 16 cores. The grower holds 8; "blocked" (16 cores) queues behind it
    // with a reservation at the grower's end; the filler backfills into
    // the idle half.
    let grower = d.qsub(rigid("grower", 0, 8, 400)).unwrap();
    assert!(d.await_running(grower, ms(2_000)));
    let blocked = d.qsub(rigid("blocked", 1, 16, 50)).unwrap();
    let filler = d.qsub(rigid("filler", 2, 8, 150)).unwrap();
    assert!(d.await_running(filler, ms(2_000)));

    // ~t=45: +8 can only come from preempting the backfilled filler. Its
    // first run dies ~40 ms in; its (pre-fix detached) 150 ms exit timer
    // is still due at ~t=155.
    std::thread::sleep(ms(40));
    let TmResponse::DynGranted { added } = d.tm_dynget(grower, 8) else {
        panic!("preemption feeds the grant");
    };

    // ~t=125: release the grant; the filler backfills a second time and
    // must now survive past the stale timer's ~t=155 firing.
    std::thread::sleep(ms(80));
    assert!(matches!(d.tm_dynfree(grower, added), TmResponse::Freed));

    assert!(d.await_drained(Duration::from_secs(10)));
    for id in [grower, blocked, filler] {
        assert_eq!(d.qstat(id), Some(JobState::Completed));
    }
    let outcomes = d.outcomes();
    let f = outcomes
        .iter()
        .find(|o| o.id == filler)
        .expect("filler ran");
    assert!(
        f.runtime() >= SimDuration::from_millis(140),
        "restarted filler was cut short after {:?} — stale timer kill",
        f.runtime()
    );
    d.shutdown();
}

/// Regression: fairshare must charge a resized job per constant-width
/// segment, not `final cores × whole runtime`. A job that doubles at its
/// midpoint owes 1.5× its base usage — pre-fix it was billed 2×.
#[test]
fn fairshare_charges_segments_not_final_width() {
    let d = daemon(4);
    let user = 7u32;
    let job = d.qsub(rigid("midgrow", user, 8, 300)).unwrap();
    assert!(d.await_running(job, ms(2_000)));
    std::thread::sleep(ms(150));
    let TmResponse::DynGranted { added } = d.tm_dynget(job, 8) else {
        panic!("24 free cores: grant expected");
    };
    assert_eq!(added.total_cores(), 8);
    assert!(d.await_drained(Duration::from_secs(5)));

    // 8 cores × ~0.15 s + 16 cores × ~0.15 s ≈ 3.6 core·s; the pre-fix
    // final-width charge would be 16 × 0.3 = 4.8.
    let charged = d.fairshare_charged(UserId(user));
    assert!(
        charged > 3.0 && charged < 4.3,
        "expected ≈3.6 core·s of segmented usage, got {charged}"
    );
    d.shutdown();
}
