//! The paper's Fig 1 scenario, end-to-end through the full simulator:
//! dynamic allocation to job A delays queued job C by 4 hours unless a
//! dynamic-fairness policy forbids it.
//!
//! Cluster: 6 nodes × 1 core (1 core = 1 "node" of the figure).
//! Job A: 2 cores, 8 h walltime, evolving (wants 2 more).
//! Job B: 2 cores, 4 h.
//! Job C: 4 cores, submitted immediately after — must wait for B.

use dynbatch::cluster::Cluster;
use dynbatch::core::{
    CredLimits, CredRegistry, DfsConfig, DfsPolicy, ExecutionModel, JobClass, JobSpec,
    SchedulerConfig, SimDuration, SimTime, SpeedupModel,
};
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;

const HOUR: u64 = 3600;

fn scenario(dfs: DfsConfig) -> BatchSim {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = dfs;
    let mut sim = BatchSim::new(Cluster::homogeneous(6, 1), sched);

    let mut reg = CredRegistry::new();
    let ua = reg.user("user_a");
    let ub = reg.user("user_b");
    let uc = reg.user("user_c");
    let g = reg.group_of(ua);

    // Job A: evolving, 8 h static runtime; asks for +2 cores at 10 % of
    // its runtime (and would finish at the same time — the interesting
    // part of Fig 1 is the *delay to C*, not A's speedup).
    let a = JobSpec {
        name: "A".into(),
        user: ua,
        group: g,
        class: JobClass::Evolving,
        cores: 2,
        walltime: SimDuration::from_hours(8),
        exec: ExecutionModel::Evolving {
            set: SimDuration::from_hours(8),
            det: SimDuration::from_hours(8),
            extra_cores: 2,
            request_points: vec![0.1],
            speedup: SpeedupModel::Interpolate,
        },
        priority_boost: 0,
        suppress_backfill_while_queued: false,
        malleable: None,
        moldable: None,
        dyn_timeout: None,
        queue: None,
    };
    let b = JobSpec::rigid("B", ub, g, 2, SimDuration::from_hours(4));
    let c = JobSpec::rigid("C", uc, g, 4, SimDuration::from_hours(4));

    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: a,
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: b,
        },
        WorkloadItem {
            at: SimTime::from_secs(60),
            spec: c,
        },
    ]);
    sim
}

fn wait_of(sim: &BatchSim, name: &str) -> SimDuration {
    sim.server()
        .accounting()
        .outcomes()
        .iter()
        .find(|o| o.name == name)
        .unwrap_or_else(|| panic!("{name} completed"))
        .wait()
}

#[test]
fn highest_priority_grant_delays_c_by_four_hours() {
    let mut sim = scenario(DfsConfig::highest_priority());
    sim.run();
    assert_eq!(sim.stats().dyn_granted, 1, "A's request granted under HP");
    let wait_c = wait_of(&sim, "C");
    // Without the grant C starts when B ends (t = 4 h); with it, when A's
    // walltime ends (t = 8 h). C submitted at t = 60 s.
    assert_eq!(wait_c, SimDuration::from_secs(8 * HOUR - 60));
}

#[test]
fn target_policy_protects_c() {
    // A cumulative cap of 1 h per 24 h interval: the 4 h delay is refused.
    let mut sim = scenario(DfsConfig::uniform_target(HOUR, SimDuration::from_hours(24)));
    sim.run();
    assert_eq!(sim.stats().dyn_granted, 0);
    assert!(sim.stats().dyn_rejected_fairness >= 1);
    let wait_c = wait_of(&sim, "C");
    assert_eq!(
        wait_c,
        SimDuration::from_secs(4 * HOUR - 60),
        "C starts when B ends"
    );
}

#[test]
fn single_job_policy_protects_c() {
    let mut dfs = DfsConfig {
        policy: DfsPolicy::SingleJobDelay,
        ..DfsConfig::default()
    };
    dfs.default_limits = CredLimits::single(SimDuration::from_mins(30));
    let mut sim = scenario(dfs);
    sim.run();
    assert_eq!(sim.stats().dyn_granted, 0);
    assert_eq!(wait_of(&sim, "C"), SimDuration::from_secs(4 * HOUR - 60));
}

#[test]
fn perm_flag_protects_c() {
    // user_c's jobs may never be delayed by dynamic allocations.
    let mut dfs = DfsConfig {
        policy: DfsPolicy::TargetDelay,
        ..DfsConfig::default()
    };
    // user_c is interned third (index 2) in the scenario's registry.
    dfs.users
        .insert(dynbatch::core::UserId(2), CredLimits::never_delay());
    let mut sim = scenario(dfs);
    sim.run();
    assert_eq!(sim.stats().dyn_granted, 0);
    assert_eq!(wait_of(&sim, "C"), SimDuration::from_secs(4 * HOUR - 60));
}

#[test]
fn a_is_unaffected_by_rejection() {
    // A rejected evolving job continues on its current allocation.
    let mut sim = scenario(DfsConfig::uniform_target(HOUR, SimDuration::from_hours(24)));
    sim.run();
    let a = sim
        .server()
        .accounting()
        .outcomes()
        .iter()
        .find(|o| o.name == "A")
        .expect("A completed");
    assert_eq!(a.cores_final, 2);
    assert_eq!(a.runtime(), SimDuration::from_hours(8));
}
