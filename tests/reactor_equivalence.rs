//! The reactor equivalence gate: an SWF-replay command stream delivered
//! through N concurrent client connections must be **byte-identical** to
//! serial single-client application — state digest, accounting log and
//! every individual reply — at N ∈ {1, 8, 64}, and across 50 chaos seeds
//! whose runs include a mid-stream server crash (recovery from the
//! journal with a fresh scheduler; every acked command survives, by the
//! ack-on-append contract).
//!
//! The harness lives in `dynbatch_sim::reactor_drive`: tickets are
//! pre-assigned to the stream order, so the client threads race freely
//! while the admission order — and therefore every scheduling decision —
//! is pinned. Malformed lines in the seeded stream double as the
//! unwrap-audit regression: a bad command earns a denial reply through
//! the reactor, never a panic.

use dynbatch::cluster::Cluster;
use dynbatch::core::{CredRegistry, DfsConfig, SchedulerConfig};
use dynbatch::sim::{drive_reactor, drive_serial, script_from_workload, CommandScript};
use dynbatch::workload::{parse_swf, SwfConfig};
use std::fmt::Write as _;

/// Synthetic-but-valid SWF text (same conventions as `swf_replay.rs`).
fn synthetic_swf(n: usize) -> String {
    let mut out = String::from("; UnixStartTime: 0\n; MaxProcs: 128\n");
    for i in 0..n {
        let submit = i * 20;
        let runtime = 120 + (i * 37) % 900;
        let procs = 1 + (i * 13) % 48;
        let req_time = runtime + runtime / 4;
        let user = i % 7;
        let _ = writeln!(
            out,
            "{} {} 0 {} {} -1 -1 {} {} -1 1 {} 1 -1 1 -1 -1 -1",
            i + 1,
            submit,
            runtime,
            procs,
            procs,
            req_time,
            user
        );
    }
    out
}

fn hp_sched() -> SchedulerConfig {
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::highest_priority();
    cfg
}

/// An SWF-derived command script: qsubs from the parsed trace plus
/// seeded dynget/qstat/qdel/malformed follow-ups.
fn swf_script(n_jobs: usize, seed: u64) -> CommandScript {
    let text = synthetic_swf(n_jobs);
    let mut reg = CredRegistry::new();
    let cfg = SwfConfig {
        evolving_fraction: 0.3,
        ..Default::default()
    };
    let items = parse_swf(&text, &cfg, &mut reg).expect("parse");
    script_from_workload(&items, seed)
}

/// N ∈ {1, 8, 64} concurrent connections, no faults: every run equals
/// the serial reference byte-for-byte.
#[test]
fn reactor_equivalence_at_1_8_64_clients() {
    let script = swf_script(40, 1);
    let serial = drive_serial(&script, Cluster::homogeneous(15, 8), hp_sched(), None);
    assert!(
        serial.replies.len() > 40,
        "script should carry follow-up traffic beyond the qsubs"
    );
    for n in [1usize, 8, 64] {
        let r = drive_reactor(&script, Cluster::homogeneous(15, 8), hp_sched(), n, None);
        assert_eq!(
            r.digest, serial.digest,
            "state digest diverged at {n} clients"
        );
        assert_eq!(
            r.accounting, serial.accounting,
            "accounting diverged at {n} clients"
        );
        assert_eq!(r.replies, serial.replies, "replies diverged at {n} clients");
    }
}

/// 50 chaos seeds: each derives its own command stream, client count and
/// a mid-stream server-crash point. The reactor path must match the
/// serial path crashing at the same boundary — and, because hp
/// scheduling is soft-state-free, the crash-free serial run too. Acked
/// submissions are asserted to survive recovery inside the drive.
#[test]
fn reactor_chaos_50_seeds_with_server_crash() {
    for seed in 0..50u64 {
        let n_jobs = 12 + (seed % 5) as usize * 4;
        let script = swf_script(n_jobs, seed);
        let crash = Some((seed as usize * 7 + 3) % script.steps.len());
        let n_clients = [1usize, 8, 64][seed as usize % 3];
        let serial = drive_serial(&script, Cluster::homogeneous(15, 8), hp_sched(), crash);
        let reactor = drive_reactor(
            &script,
            Cluster::homogeneous(15, 8),
            hp_sched(),
            n_clients,
            crash,
        );
        assert_eq!(
            reactor.digest, serial.digest,
            "seed {seed}: digest diverged ({n_clients} clients, crash at {crash:?})"
        );
        assert_eq!(
            reactor.accounting, serial.accounting,
            "seed {seed}: accounting diverged"
        );
        assert_eq!(
            reactor.replies, serial.replies,
            "seed {seed}: replies diverged"
        );
        let clean = drive_serial(&script, Cluster::homogeneous(15, 8), hp_sched(), None);
        assert_eq!(
            serial.digest, clean.digest,
            "seed {seed}: crashed run diverged from crash-free run"
        );
        assert_eq!(serial.accounting, clean.accounting, "seed {seed}");
    }
}

/// The malformed-input regression through the reactor (unwrap-audit
/// satellite): streams salted with bad commands must produce denial
/// replies — identical to serial — and still land the identical state.
#[test]
fn malformed_commands_deny_identically() {
    let script = swf_script(24, 42);
    let serial = drive_serial(&script, Cluster::homogeneous(15, 8), hp_sched(), None);
    let denials = serial
        .replies
        .iter()
        .filter(|r| matches!(r, dynbatch::server::Reply::Denied(_)))
        .count();
    assert!(
        denials > 0,
        "seeded stream must exercise at least one denial"
    );
    let r = drive_reactor(&script, Cluster::homogeneous(15, 8), hp_sched(), 8, None);
    assert_eq!(r.replies, serial.replies);
    assert_eq!(r.digest, serial.digest);
}
