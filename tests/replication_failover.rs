//! Replicated-daemon failover and follower-read staleness, at the live
//! ensemble level: 1 leader + 2 followers streaming the journal, moms
//! and timers attached, real reactor clients on the wire.
//!
//! Covers the daemon half of the replication contract:
//!
//! * **Failover re-attach** — a leader kill mid-run promotes a follower;
//!   running jobs keep their (idempotently re-sent) `RunJob`s, app-exit
//!   deadlines are re-armed for remaining runtime, and the ensemble
//!   drains with every acked submission completed. Submissions go
//!   through the reactor so the group-commit ack gate
//!   (`ack_after_replicate`) is what released them — the status query
//!   then pins `acked_lost == 0`.
//! * **Parked negotiations survive** — a `tm_dynget` whose request
//!   record replicated before the kill is answered by the *promoted*
//!   leader (grant or window expiry), never left hanging; the
//!   reconcile sweep only denies callers whose records died unreplicated.
//! * **Follower-read staleness (satellite 2)** — with `read_offload` +
//!   `read_your_writes`, a qstat routed after an acked write never
//!   observes pre-write state, even with the stream maximally delayed;
//!   follower-served replies echo the applied-record watermark.

use dynbatch::core::{DfsConfig, JobState, SchedulerConfig};
use dynbatch::daemon::{DaemonConfig, DaemonHandle, FaultPlan, ReplicationConfig, ServerCrash};
use dynbatch::server::replication::ReplFaultPlan;
use dynbatch::server::{Reply, TmResponse};
use std::time::Duration;

fn tagged_threads(tag: &str) -> Vec<String> {
    let mut live = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return live; // not Linux: skip the leak check
    };
    for e in entries.flatten() {
        if let Ok(name) = std::fs::read_to_string(e.path().join("comm")) {
            let name = name.trim_end().to_string();
            if name.starts_with(tag) {
                live.push(name);
            }
        }
    }
    live
}

fn assert_no_tagged_threads(tag: &str) {
    for _ in 0..250 {
        if tagged_threads(tag).is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!(
        "daemon threads leaked past shutdown: {:?}",
        tagged_threads(tag)
    );
}

fn sched() -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s
}

fn spec(name: &str, user: u32, cores: u32, ms: u64) -> dynbatch::core::JobSpec {
    dynbatch::core::JobSpec::rigid(
        name,
        dynbatch::core::UserId(user),
        dynbatch::core::GroupId(0),
        cores,
        dynbatch::core::SimDuration::from_millis(ms),
    )
}

fn replicated_config(kill_after: Option<u64>, repl_faults: Option<ReplFaultPlan>) -> DaemonConfig {
    let mut faults = FaultPlan::none(1);
    if let Some(k) = kill_after {
        faults.leader_kills.push(ServerCrash { after_record: k });
    }
    faults.replication = repl_faults;
    DaemonConfig {
        nodes: 3,
        cores_per_node: 8,
        sched: sched(),
        faults: Some(faults),
        replication: Some(ReplicationConfig::new(2)),
    }
}

/// Leader kill mid-run: a follower takes over, re-attaches the moms, and
/// the ensemble drains with every acked job completed. Submissions ride
/// the reactor's group-commit path, so every ack the clients read was
/// released by the replication gate — `acked_lost` must be zero.
#[test]
fn failover_drains_and_loses_no_acked_job() {
    let d = DaemonHandle::start(replicated_config(Some(6), None));
    let tag = d.thread_tag().to_string();

    let mut acked = Vec::new();
    for i in 0..8u32 {
        let client = d.connect();
        client.send(&format!(
            "qsub name=j{i} user={} group=0 cores={} wall_ms={}",
            i % 3,
            2 + i % 4,
            60 + 30 * u64::from(i)
        ));
        match client.recv_timeout(Duration::from_secs(10)) {
            Some(Reply::Submitted(id)) => acked.push(id),
            other => panic!("qsub {i} answered {other:?}"),
        }
        client.disconnect();
    }
    assert!(
        d.await_drained(Duration::from_secs(20)),
        "replicated ensemble must drain through the leader kill"
    );
    for id in &acked {
        assert_eq!(
            d.qstat(*id),
            Some(JobState::Completed),
            "acked job {id:?} lost across failover"
        );
    }
    let status = d.replication_status().expect("replication is on");
    assert_eq!(status.failovers, 1, "the kill point must have fired");
    assert!(status.term >= 2, "promotion bumps the term");
    assert_eq!(
        status.acked_lost, 0,
        "ack_after_replicate must make acked loss impossible"
    );
    assert!(
        status.errors.is_empty(),
        "no divergence expected: {:?}",
        status.errors
    );
    d.shutdown();
    assert_no_tagged_threads(&tag);
}

/// A negotiated `tm_dynget` parked across the kill: its request record
/// replicated before the leader died, so the promoted leader re-arms the
/// window from *recovered* state and answers the caller — here by window
/// expiry, since the filler pins the machine past the horizon. The
/// caller must never hang on the dead leader's promise.
#[test]
fn parked_negotiation_survives_failover() {
    // The kill coordinate sits past the setup traffic; the nudge loop
    // below pushes the journal across it while the negotiation is parked.
    let d = DaemonHandle::start(replicated_config(Some(14), None));
    let tag = d.thread_tag().to_string();

    let grower = d
        .qsub(dynbatch::core::JobSpec::evolving(
            "grower",
            dynbatch::core::UserId(0),
            dynbatch::core::GroupId(0),
            8,
            dynbatch::core::ExecutionModel::esp_evolving(30_000, 20_000, 4),
        ))
        .expect("grower submits");
    assert!(d.await_running(grower, Duration::from_secs(5)));
    // Fill the rest of the machine (3×8 = 24 cores) so +16 cannot be
    // granted inside the window.
    let filler = d.qsub(spec("filler", 1, 16, 30_000)).expect("filler");
    assert!(d.await_running(filler, Duration::from_secs(5)));

    std::thread::scope(|scope| {
        let caller = scope.spawn(|| d.tm_dynget_negotiated(grower, 16, Duration::from_secs(3)));
        // Let the request record land and replicate, then drive the
        // journal past the kill coordinate while the caller is parked.
        std::thread::sleep(Duration::from_millis(200));
        for i in 0..6 {
            let _ = d.qsub(spec(&format!("nudge{i}"), 2, 1, 40));
            std::thread::sleep(Duration::from_millis(30));
            if d.replication_status().is_some_and(|s| s.failovers >= 1) {
                break;
            }
        }
        let resp = caller.join().expect("dynget caller returns");
        assert!(
            matches!(resp, TmResponse::DynGranted { .. } | TmResponse::DynDenied),
            "parked negotiation must be answered after failover, got {resp:?}"
        );
    });
    let status = d.replication_status().expect("replication is on");
    assert!(
        status.failovers >= 1,
        "nudge traffic must have crossed the kill coordinate"
    );
    d.shutdown();
    assert_no_tagged_threads(&tag);
}

/// Satellite 2: the read-your-writes staleness bound at the reactor.
/// The stream is maximally delayed (every frame deferred a pump), so
/// followers chronically lag — yet a qstat issued right after an acked
/// qsub must never answer "unknown job": either the leader serves it, or
/// a follower that has provably applied the write does (its reply then
/// carries the applied-record watermark).
#[test]
fn follower_reads_respect_read_your_writes() {
    let faults = ReplFaultPlan {
        seed: 7,
        delay_permille: 1000, // defer every frame one pump
        ..ReplFaultPlan::default()
    };
    let d = DaemonHandle::start(replicated_config(None, Some(faults)));
    let tag = d.thread_tag().to_string();

    let mut follower_served = 0u32;
    let mut first = None;
    for i in 0..30u32 {
        let client = d.connect();
        client.send(&format!(
            "qsub name=ryw{i} user={} group=0 cores=2 wall_ms=40",
            i % 3
        ));
        let id = match client.recv_timeout(Duration::from_secs(5)) {
            Some(Reply::Submitted(id)) => id,
            other => panic!("qsub answered {other:?}"),
        };
        first.get_or_insert(id);
        // Same connection, write acked: the read must observe the job.
        client.send(&format!("qstat {}", id.0));
        match client.recv_timeout(Duration::from_secs(5)) {
            Some(Reply::Status(_)) => {} // leader served (followers lagged)
            Some(Reply::StatusAt { state, watermark }) => {
                follower_served += 1;
                assert!(!state.is_empty());
                assert!(watermark > 0, "follower replies echo their watermark");
            }
            other => {
                panic!("acked write un-observed on read {i}: {other:?} (read-your-writes violated)")
            }
        }
        client.disconnect();
    }
    // Reads from a connection that never wrote are offloadable at any
    // watermark: the offload path must actually serve something in this
    // deployment (round-robin across qualifying followers).
    let probe = d.connect();
    let probed = first.expect("at least one submission").0;
    let mut cold_follower_reads = 0u32;
    for _ in 0..20 {
        probe.send(&format!("qstat {probed}"));
        match probe.recv_timeout(Duration::from_secs(5)) {
            Some(Reply::StatusAt { .. }) => cold_follower_reads += 1,
            Some(Reply::Status(_)) | Some(Reply::Denied(_)) => {}
            other => panic!("probe read answered {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    probe.disconnect();
    assert!(
        follower_served + cold_follower_reads > 0,
        "no read was ever served by a follower — offload path dead"
    );
    assert!(d.await_drained(Duration::from_secs(15)));
    d.shutdown();
    assert_no_tagged_threads(&tag);
}
