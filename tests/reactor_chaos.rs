//! Reactor chaos: client connect/disconnect churn over a live daemon
//! ensemble under seeded fault injection, including mid-burst server
//! crashes (journal-positioned, recovery = snapshot-load + replay).
//!
//! Each seed derives — entirely from the seed, on the test thread, so no
//! timing race can change the schedule — a wave pattern of short-lived
//! reactor clients: every wave connects a few clients, each submits a
//! handful of jobs through the text protocol, and then either reads its
//! acks or vanishes without reading a single reply (the churn half).
//! Meanwhile the ensemble's `FaultPlan` drops/delays/duplicates mom
//! traffic, kills moms, and crashes the server once its journal passes a
//! seeded record count (every plan here is forced to carry at least one
//! server crash, so the burst always spans a recovery).
//!
//! Invariants per seed:
//!
//! 1. the ensemble **drains** — churned clients' unread acks included,
//!    every submitted job runs to completion;
//! 2. **no acked command is lost** — every `Submitted(id)` a client
//!    actually received still names a (completed) job after the crashes,
//!    the ack-on-append contract end to end;
//! 3. `shutdown()` leaves **zero live daemon threads** (the
//!    `/proc/self/task` scan from the chaos suite).
//!
//! A separate test pins the backpressure policy at ensemble level: a
//! stalled reader that never drains its replies must not block the
//! scheduler cycle or any other client's acks.

use dynbatch::core::{DfsConfig, JobId, JobState, SchedulerConfig};
use dynbatch::daemon::{DaemonConfig, DaemonHandle, FaultPlan, ServerCrash};
use dynbatch::server::Reply;
use dynbatch::simtime::SplitMix64;
use std::time::Duration;

/// Daemon threads still alive that carry `tag` (ensemble thread prefix).
fn tagged_threads(tag: &str) -> Vec<String> {
    let mut live = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return live; // not Linux: skip the leak check
    };
    for e in entries.flatten() {
        if let Ok(name) = std::fs::read_to_string(e.path().join("comm")) {
            let name = name.trim_end().to_string();
            if name.starts_with(tag) {
                live.push(name);
            }
        }
    }
    live
}

fn assert_no_tagged_threads(tag: &str) {
    for _ in 0..250 {
        if tagged_threads(tag).is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!(
        "daemon threads leaked past shutdown: {:?}",
        tagged_threads(tag)
    );
}

fn sched() -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s
}

/// The seeded fault plan, forced to include at least one mid-burst server
/// crash so every seed exercises recovery under open connections.
fn plan_with_crash(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::from_seed(seed, 2, Duration::from_millis(300));
    if plan.server_crashes.is_empty() {
        plan.server_crashes.push(ServerCrash {
            after_record: 3 + seed % 10,
        });
    }
    plan
}

/// One chaos run: seed-derived waves of connect / submit / (read | churn)
/// against a faulted 2-node ensemble. Returns nothing — the invariants
/// are asserted inside.
fn churn_run(seed: u64) {
    let d = DaemonHandle::start(DaemonConfig {
        nodes: 2,
        cores_per_node: 8,
        sched: sched(),
        faults: Some(plan_with_crash(seed)),
        replication: None,
    });
    let tag = d.thread_tag().to_string();

    let mut rng = SplitMix64::new(seed).derive(0xC4A0);
    let mut acked: Vec<JobId> = Vec::new();
    let waves = 2 + rng.next_below(3);
    for w in 0..waves {
        let n_clients = 1 + rng.next_below(3) as usize;
        let mut clients = Vec::with_capacity(n_clients);
        // All clients of a wave submit before any reads replies — their
        // commands genuinely interleave at the reactor.
        for c in 0..n_clients {
            let client = d.connect();
            let n_jobs = 1 + rng.next_below(3);
            for j in 0..n_jobs {
                let line = format!(
                    "qsub name=w{w}c{c}j{j} user={} group=0 cores={} wall_ms={}",
                    rng.next_below(5),
                    1 + rng.next_below(4),
                    40 + rng.next_below(160)
                );
                client.send(&line);
            }
            clients.push((client, n_jobs));
        }
        for (c, (client, n_jobs)) in clients.into_iter().enumerate() {
            // The first client of every wave always reads, so each seed
            // has acked commands to hold the crash accountable for.
            if c > 0 && rng.chance_permille(350) {
                // Churn: the client vanishes without reading one reply.
                // Its commands are already in flight and must still apply
                // (the drain assertion covers them); the unread acks are
                // discarded, never leaked, never blocking.
                client.disconnect();
                continue;
            }
            for _ in 0..n_jobs {
                let reply = client
                    .recv_timeout(Duration::from_secs(10))
                    .unwrap_or_else(|| panic!("seed {seed}: ack lost in wave {w}"));
                match reply {
                    Reply::Submitted(id) => acked.push(id),
                    other => panic!("seed {seed}: qsub answered {other:?}"),
                }
            }
            client.disconnect();
        }
    }

    assert!(
        d.await_drained(Duration::from_secs(15)),
        "seed {seed}: ensemble must drain through churn + server crash"
    );
    // Ack-on-append, end to end: every submission a client saw acked
    // survived the seeded server crash(es) and ran to completion.
    for id in &acked {
        assert_eq!(
            d.qstat(*id),
            Some(JobState::Completed),
            "seed {seed}: acked job {id:?} lost or wedged after recovery"
        );
    }
    assert!(!acked.is_empty(), "seed {seed}: no client ever read an ack");
    d.shutdown();
    assert_no_tagged_threads(&tag);
}

fn sweep(seeds: std::ops::Range<u64>) {
    let seeds: Vec<u64> = seeds.collect();
    let workers = dynbatch::sim::sweep::worker_count(0).div_ceil(4).min(4);
    dynbatch::sim::sweep::parallel_tasks(seeds.len(), workers, |i| churn_run(seeds[i]));
}

#[test]
fn reactor_churn_seeds_00_09() {
    sweep(0..10);
}

#[test]
fn reactor_churn_seeds_10_19() {
    sweep(10..20);
}

#[test]
fn reactor_churn_seeds_20_29() {
    sweep(20..30);
}

#[test]
fn reactor_churn_seeds_30_39() {
    sweep(30..40);
}

#[test]
fn reactor_churn_seeds_40_49() {
    sweep(40..50);
}

/// Backpressure at ensemble level: a client that floods commands and
/// never reads a reply must not block the scheduler cycle or another
/// client's acks. Its replies fill the bounded channel, spill to the
/// overflow queue, and are discarded on disconnect — the reactor never
/// performs a blocking send.
#[test]
fn stalled_reader_blocks_nothing() {
    let d = DaemonHandle::start(DaemonConfig {
        nodes: 2,
        cores_per_node: 8,
        sched: sched(),
        faults: None,
        replication: None,
    });
    let tag = d.thread_tag().to_string();

    let stalled = d.connect();
    // Well past the reply-channel capacity: the surplus lands in the
    // reactor's overflow queue while the stalled socket stays full.
    for i in 0..200u64 {
        stalled.send(&format!("qstat {}", i + 1));
    }

    let live = d.connect();
    live.send("qsub name=live user=1 group=0 cores=4 wall_ms=80");
    let reply = live
        .recv_timeout(Duration::from_secs(5))
        .expect("live client must be acked despite the stalled peer");
    let Reply::Submitted(id) = reply else {
        panic!("expected submission ack, got {reply:?}");
    };

    assert!(
        d.await_drained(Duration::from_secs(10)),
        "scheduler must keep cycling with a stalled reader attached"
    );
    assert_eq!(d.qstat(id), Some(JobState::Completed));
    drop(stalled); // unread replies die with the connection
    live.disconnect();
    d.shutdown();
    assert_no_tagged_threads(&tag);
}
