//! Moldable-job support: the batch system picks the start allocation from
//! a range, once, before start (paper §I taxonomy). Contrast with
//! malleable (resized *during* execution) and evolving (the *application*
//! asks during execution).

use dynbatch::cluster::Cluster;
use dynbatch::core::{CredRegistry, DfsConfig, JobSpec, SchedulerConfig, SimDuration, SimTime};
use dynbatch::sim::BatchSim;
use dynbatch::workload::WorkloadItem;

fn sched() -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s
}

#[test]
fn moldable_takes_the_largest_fit() {
    // 32-core cluster, empty: a moldable [8, 24] job submitted at 8 cores
    // is molded up to 24 and finishes in work/24.
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched());
    sim.load(&[WorkloadItem {
        at: SimTime::ZERO,
        spec: JobSpec::moldable("mold", u, g, 8, 8, 24, 24_000),
    }]);
    sim.run();
    let o = &sim.server().accounting().outcomes()[0];
    assert_eq!(o.cores_final, 24);
    assert_eq!(o.runtime(), SimDuration::from_secs(1000));
}

#[test]
fn moldable_shrinks_to_fit_now_rather_than_wait() {
    // 16 idle cores of 32 (a rigid job holds the rest for a long time):
    // the moldable [8, 24] job starts NOW on 16 instead of queueing for 24.
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let o = reg.user("o");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched());
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("filler", o, g, 16, SimDuration::from_hours(10)),
        },
        WorkloadItem {
            at: SimTime::from_secs(10),
            spec: JobSpec::moldable("mold", u, g, 24, 8, 24, 16_000),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let m = outcomes.iter().find(|o| o.name == "mold").unwrap();
    assert_eq!(
        m.start_time,
        SimTime::from_secs(10),
        "started immediately, molded"
    );
    assert_eq!(m.cores_final, 16);
    assert_eq!(m.runtime(), SimDuration::from_secs(1000));
}

#[test]
fn moldable_below_min_waits() {
    // Only 4 cores idle; min is 8: the job must wait for the filler.
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let o = reg.user("o");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(2, 8), sched());
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("filler", o, g, 12, SimDuration::from_secs(100)),
        },
        WorkloadItem {
            at: SimTime::from_secs(10),
            spec: JobSpec::moldable("mold", u, g, 8, 8, 16, 8_000),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let m = outcomes.iter().find(|o| o.name == "mold").unwrap();
    assert_eq!(m.start_time, SimTime::from_secs(100));
    assert_eq!(
        m.cores_final, 16,
        "molded up once the whole machine is free"
    );
}

#[test]
fn molding_happens_once_never_after() {
    // After start the allocation is fixed: when the filler ends, the
    // moldable job does NOT grow (that would be malleability).
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let o = reg.user("o");
    let g = reg.group_of(u);
    let mut sim = BatchSim::new(Cluster::homogeneous(4, 8), sched());
    sim.load(&[
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid("filler", o, g, 16, SimDuration::from_secs(100)),
        },
        WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::moldable("mold", u, g, 16, 8, 32, 32_000),
        },
    ]);
    sim.run();
    let outcomes = sim.server().accounting().outcomes();
    let m = outcomes.iter().find(|o| o.name == "mold").unwrap();
    assert_eq!(m.cores_final, 16, "molded to 16 at t=0 and stayed there");
    assert_eq!(m.runtime(), SimDuration::from_secs(2000));
    assert_eq!(sim.stats().malleable_resizes, 0);
}

#[test]
fn moldable_validation() {
    let mut reg = CredRegistry::new();
    let u = reg.user("u");
    let g = reg.group_of(u);
    let good = JobSpec::moldable("m", u, g, 8, 4, 16, 1000);
    assert!(good.validate().is_ok());
    let mut bad = good.clone();
    bad.cores = 32;
    assert!(bad.validate().is_err(), "cores outside range");
    let mut bad = good;
    bad.moldable = None;
    assert!(bad.validate().is_err(), "moldable class without range");
}
