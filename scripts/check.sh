#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests, and the quick perf smoke.
# Run from anywhere; operates on the repo root. Fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> chaos zero-fault smoke"
cargo test -q --test chaos_daemon chaos_zero_fault

echo "==> crash-recovery smoke (~5 sampled journal crash points)"
cargo test -q --test crash_recovery crash_smoke_sampled_indices

echo "==> parallel sweep smoke (serial == parallel)"
cargo test -q --test sweep_engine

echo "==> incremental timeline equivalence (delta path == rebuild path)"
cargo test -q --test timeline_incremental

echo "==> sharded-scheduler equivalence (partitioned path == serial path)"
cargo test -q --test sharded_equivalence
cargo test -q -p dynbatch-sched --test prop_router

echo "==> reactor smoke (serial apply vs reactor-batched apply, identical digest)"
cargo test -q --test reactor_equivalence reactor_equivalence_at_1_8_64_clients
cargo test -q --test reactor_chaos stalled_reader_blocks_nothing

echo "==> dynamic-partition regressions (same-cycle re-expansion / shrink)"
cargo test -q --test partition

echo "==> streaming ingestion (streamed == materialized for every generator,"
echo "    qdel-before-admission, window-bounded residency)"
cargo test -q --test streaming_ingest

echo "==> replication smoke (transport hardening, 50-seed leader-kill chaos"
echo "    sweep, compaction handoff, daemon failover with live clients)"
cargo test -q --test replication_chaos
cargo test -q --test replication_failover
cargo test -q -p dynbatch-server replication
cargo test -q -p dynbatch-sim replica

echo "==> time-aware fairness suite (static inertness, shard/worker"
echo "    determinism, demote-not-deny budgets)"
cargo test -q --test fairness
cargo test -q -p dynbatch-sched --lib usage_history
cargo test -q -p dynbatch-sched --lib fairshare
cargo test -q -p dynbatch-sched --lib dfs

echo "==> perf_smoke --quick (runs the incremental path with the"
echo "    rebuild-equivalence assert enabled on every tick, and the"
echo "    sharded kernel with byte-equality asserted at shards 2/4/8)"
cargo run --release -q -p dynbatch-bench --bin perf_smoke -- --quick \
  --out /tmp/BENCH_sched.quick.json --out-sweep /tmp/BENCH_sweep.quick.json

echo "==> sharded-equivalence smoke (quick kernel, shards 1 and 3)"
cargo test -q --release -p dynbatch-sched shard_smoke_serial_matches_three_shards

echo "==> committed BENCH_sched.json must carry the sharded_kernel section"
grep -q '"sharded_kernel"' BENCH_sched.json \
  || { echo "BENCH_sched.json lacks the sharded_kernel section — regenerate \
with: cargo run --release -p dynbatch-bench --bin perf_smoke"; exit 1; }

echo "==> committed BENCH_sched.json must carry the reactor section"
grep -q '"reactor"' BENCH_sched.json \
  || { echo "BENCH_sched.json lacks the reactor section — regenerate \
with: cargo run --release -p dynbatch-bench --bin perf_smoke"; exit 1; }

echo "==> committed BENCH_sched.json must carry the ingest section with"
echo "    byte-identical streamed-vs-materialized results"
grep -q '"ingest"' BENCH_sched.json \
  || { echo "BENCH_sched.json lacks the ingest section — regenerate \
with: cargo run --release -p dynbatch-bench --bin perf_smoke"; exit 1; }
grep -q '"identical_results": *true' BENCH_sched.json \
  || { echo "BENCH_sched.json ingest section does not assert identical \
results — regenerate with: cargo run --release -p dynbatch-bench --bin perf_smoke"; exit 1; }

echo "==> committed BENCH_sched.json must carry the fairness section"
grep -q '"fairness"' BENCH_sched.json \
  || { echo "BENCH_sched.json lacks the fairness section — regenerate \
with: cargo run --release -p dynbatch-bench --bin perf_smoke"; exit 1; }

echo "==> committed BENCH_sched.json must carry the replication section"
echo "    (append->apply lag, follower-read throughput, failover latency)"
grep -q '"replication"' BENCH_sched.json \
  || { echo "BENCH_sched.json lacks the replication section — regenerate \
with: cargo run --release -p dynbatch-bench --bin perf_smoke"; exit 1; }

echo "check.sh: all gates passed"
