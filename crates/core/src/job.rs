//! Jobs: the unit of work a batch system schedules.

use crate::exec::ExecutionModel;
use crate::ids::{GroupId, JobId, QueueId, UserId};
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// The Feitelson/Rudolph job taxonomy (paper §I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Fixed processor count, allocated before start, never changes.
    Rigid,
    /// The batch system may change the processor count *before* start.
    Moldable,
    /// The *batch system* may grow/shrink the allocation during execution.
    Malleable,
    /// The *application* may grow/shrink its own allocation during
    /// execution — the class this work enables.
    Evolving,
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobClass::Rigid => "rigid",
            JobClass::Moldable => "moldable",
            JobClass::Malleable => "malleable",
            JobClass::Evolving => "evolving",
        };
        f.write_str(s)
    }
}

/// Lifecycle states, matching the extended Torque server (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Submitted, waiting for resources.
    Queued,
    /// Executing on its allocation.
    Running,
    /// Running, with a dynamic request pending at the server — the special
    /// state introduced for `tm_dynget()`.
    DynQueued,
    /// Finished normally.
    Completed,
    /// Removed before completion (qdel, failure, preemption without
    /// restart).
    Cancelled,
}

impl JobState {
    /// True for states in which the job occupies resources.
    pub fn is_active(self) -> bool {
        matches!(self, JobState::Running | JobState::DynQueued)
    }

    /// True once the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Cancelled)
    }
}

/// The resize bounds of a malleable job: the batch system may shrink it
/// to `min_cores` (e.g. to serve a dynamic request, paper §II-B) or grow
/// it to `max_cores` (to soak up idle resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MalleableRange {
    /// The fewest cores the application can make progress on.
    pub min_cores: u32,
    /// The most cores the application can exploit.
    pub max_cores: u32,
}

/// Everything a user supplies at `qsub` time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable name (e.g. the ESP type letter).
    pub name: String,
    /// Submitting user.
    pub user: UserId,
    /// The user's group.
    pub group: GroupId,
    /// Job class.
    pub class: JobClass,
    /// Requested cores (the static allocation).
    pub cores: u32,
    /// Requested walltime; the scheduler plans with this, and the server
    /// kills jobs that exceed it.
    pub walltime: SimDuration,
    /// How the job actually executes.
    pub exec: ExecutionModel,
    /// Additive priority boost (the ESP Z jobs get a very large one).
    pub priority_boost: i64,
    /// While this job is queued, backfilling is suspended system-wide
    /// (the ESP Z-job rule).
    pub suppress_backfill_while_queued: bool,
    /// For malleable jobs: the allocation range the batch system may
    /// resize within. `None` for every other class.
    pub malleable: Option<MalleableRange>,
    /// For moldable jobs: the range the batch system may pick the start
    /// allocation from (chosen once, *before* start — paper §I). `None`
    /// for every other class.
    pub moldable: Option<MalleableRange>,
    /// Negotiated dynamic requests (the paper's future-work extension):
    /// when set, a `tm_dynget()` that cannot be served immediately stays
    /// queued at the server for up to this long — the batch system keeps
    /// retrying at every iteration and reports its best availability
    /// estimate — instead of failing straight back to the application.
    /// `None` (the default) is the paper's simple reject-and-retry
    /// protocol.
    pub dyn_timeout: Option<SimDuration>,
    /// Submission queue for per-queue resource-hour accounting. `None`
    /// (the default) falls back to one queue per user group
    /// ([`JobSpec::effective_queue`]).
    pub queue: Option<QueueId>,
}

impl JobSpec {
    /// A rigid job with runtime equal to its walltime.
    pub fn rigid(
        name: impl Into<String>,
        user: UserId,
        group: GroupId,
        cores: u32,
        runtime: SimDuration,
    ) -> Self {
        JobSpec {
            name: name.into(),
            user,
            group,
            class: JobClass::Rigid,
            cores,
            walltime: runtime,
            exec: ExecutionModel::Fixed { duration: runtime },
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            malleable: None,
            moldable: None,
            dyn_timeout: None,
            queue: None,
        }
    }

    /// An evolving job with an explicit execution model; walltime defaults
    /// to the model's static duration.
    pub fn evolving(
        name: impl Into<String>,
        user: UserId,
        group: GroupId,
        cores: u32,
        exec: ExecutionModel,
    ) -> Self {
        let walltime = exec.static_duration(cores);
        JobSpec {
            name: name.into(),
            user,
            group,
            class: JobClass::Evolving,
            cores,
            walltime,
            exec,
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            malleable: None,
            moldable: None,
            dyn_timeout: None,
            queue: None,
        }
    }

    /// A malleable job over a work pool of `work_core_secs` core-seconds,
    /// submitted at `cores` cores, resizable within `[min_cores,
    /// max_cores]`. Walltime defaults to the worst case (running at
    /// `min_cores` throughout).
    pub fn malleable(
        name: impl Into<String>,
        user: UserId,
        group: GroupId,
        cores: u32,
        min_cores: u32,
        max_cores: u32,
        work_core_secs: u64,
    ) -> Self {
        let exec = ExecutionModel::work_pool_secs(work_core_secs);
        JobSpec {
            name: name.into(),
            user,
            group,
            class: JobClass::Malleable,
            cores,
            walltime: exec.static_duration(min_cores),
            exec,
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            malleable: Some(MalleableRange {
                min_cores,
                max_cores,
            }),
            moldable: None,
            dyn_timeout: None,
            queue: None,
        }
    }

    /// A moldable job over a work pool of `work_core_secs` core-seconds:
    /// the batch system picks the start allocation from `[min_cores,
    /// max_cores]` (largest that starts immediately); once started the
    /// allocation is fixed. Walltime defaults to the worst case
    /// (`min_cores` throughout).
    pub fn moldable(
        name: impl Into<String>,
        user: UserId,
        group: GroupId,
        cores: u32,
        min_cores: u32,
        max_cores: u32,
        work_core_secs: u64,
    ) -> Self {
        let exec = ExecutionModel::work_pool_secs(work_core_secs);
        JobSpec {
            name: name.into(),
            user,
            group,
            class: JobClass::Moldable,
            cores,
            walltime: exec.static_duration(min_cores),
            exec,
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            malleable: None,
            moldable: Some(MalleableRange {
                min_cores,
                max_cores,
            }),
            dyn_timeout: None,
            queue: None,
        }
    }

    /// Pads the walltime by `factor` (users over-request; paper §III-D
    /// discusses the effect on delay accounting).
    pub fn with_walltime_factor(mut self, factor: f64) -> Self {
        self.walltime = self.walltime.mul_f64(factor);
        self
    }

    /// Sets the priority boost.
    pub fn with_priority_boost(mut self, boost: i64) -> Self {
        self.priority_boost = boost;
        self
    }

    /// Routes the job to an explicit submission queue.
    pub fn with_queue(mut self, queue: QueueId) -> Self {
        self.queue = Some(queue);
        self
    }

    /// The queue this job's usage is accounted to: the explicit queue, or
    /// the group-derived default (one queue per user group).
    pub fn effective_queue(&self) -> QueueId {
        self.queue.unwrap_or(QueueId(self.group.0))
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("job must request at least one core".into());
        }
        if self.walltime.is_zero() {
            return Err("walltime must be positive".into());
        }
        if let Some(r) = self.malleable {
            if r.min_cores == 0 || r.min_cores > r.max_cores {
                return Err(format!(
                    "malleable range [{}, {}] is invalid",
                    r.min_cores, r.max_cores
                ));
            }
            if !(r.min_cores..=r.max_cores).contains(&self.cores) {
                return Err("submitted cores outside the malleable range".into());
            }
            if self.class != JobClass::Malleable {
                return Err("malleable range on a non-malleable job".into());
            }
        } else if self.class == JobClass::Malleable {
            return Err("malleable job needs a malleable range".into());
        }
        if let Some(r) = self.moldable {
            if r.min_cores == 0 || r.min_cores > r.max_cores {
                return Err(format!(
                    "moldable range [{}, {}] is invalid",
                    r.min_cores, r.max_cores
                ));
            }
            if !(r.min_cores..=r.max_cores).contains(&self.cores) {
                return Err("submitted cores outside the moldable range".into());
            }
            if self.class != JobClass::Moldable {
                return Err("moldable range on a non-moldable job".into());
            }
        } else if self.class == JobClass::Moldable {
            return Err("moldable job needs a moldable range".into());
        }
        self.exec.validate()
    }
}

/// A job as tracked by the server: spec plus lifecycle bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Server-assigned identifier.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Submission instant.
    pub submit_time: SimTime,
    /// Start instant, once running.
    pub start_time: Option<SimTime>,
    /// Completion instant, once terminal.
    pub end_time: Option<SimTime>,
    /// Cores currently allocated (≥ `spec.cores` after successful growth).
    pub cores_allocated: u32,
    /// Number of dynamic requests issued so far.
    pub dyn_requests: u32,
    /// Number of dynamic requests granted so far.
    pub dyn_grants: u32,
    /// True if this job was started by the backfill pass (and is therefore
    /// preemptible under the `preempt_backfilled_for_dyn` site policy).
    pub backfilled: bool,
    /// Cores pre-reserved for this job's future dynamic requests (only
    /// non-zero under the *guaranteeing* site policy; see
    /// `SchedulerConfig::guarantee_evolving`). Held exclusively — rigid
    /// jobs cannot be planned onto them — but idle until claimed.
    pub reserved_extra: u32,
}

impl Job {
    /// Wraps a spec into a freshly queued job.
    pub fn new(id: JobId, spec: JobSpec, submit_time: SimTime) -> Self {
        Job {
            id,
            spec,
            state: JobState::Queued,
            submit_time,
            start_time: None,
            end_time: None,
            cores_allocated: 0,
            dyn_requests: 0,
            dyn_grants: 0,
            backfilled: false,
            reserved_extra: 0,
        }
    }

    /// Time spent waiting in the queue (up to `now` if not yet started).
    pub fn wait_time(&self, now: SimTime) -> SimDuration {
        self.start_time
            .unwrap_or(now)
            .duration_since(self.submit_time)
    }

    /// Turnaround (submit → completion), if completed.
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.end_time.map(|e| e.duration_since(self.submit_time))
    }

    /// The instant the job's walltime expires, if running.
    pub fn walltime_end(&self) -> Option<SimTime> {
        self.start_time.map(|s| s + self.spec.walltime)
    }

    /// Remaining walltime at `now` (zero if expired), if running.
    pub fn remaining_walltime(&self, now: SimTime) -> Option<SimDuration> {
        self.walltime_end().map(|e| e.duration_since(now))
    }
}

/// Condensed per-job result used by accounting and metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Which job.
    pub id: JobId,
    /// Job name (ESP type letter, etc.).
    pub name: String,
    /// Submitting user.
    pub user: UserId,
    /// Job class.
    pub class: JobClass,
    /// Statically requested cores.
    pub cores_requested: u32,
    /// Cores held at completion (> requested iff growth succeeded).
    pub cores_final: u32,
    /// Submission instant.
    pub submit_time: SimTime,
    /// Start instant.
    pub start_time: SimTime,
    /// Completion instant.
    pub end_time: SimTime,
    /// Dynamic requests issued.
    pub dyn_requests: u32,
    /// Dynamic requests granted.
    pub dyn_grants: u32,
    /// Whether the job was started by backfill.
    pub backfilled: bool,
}

impl JobOutcome {
    /// Queue waiting time.
    pub fn wait(&self) -> SimDuration {
        self.start_time.duration_since(self.submit_time)
    }

    /// Execution time.
    pub fn runtime(&self) -> SimDuration {
        self.end_time.duration_since(self.start_time)
    }

    /// Turnaround time.
    pub fn turnaround(&self) -> SimDuration {
        self.end_time.duration_since(self.submit_time)
    }

    /// True iff at least one dynamic request was granted.
    pub fn dyn_satisfied(&self) -> bool {
        self.dyn_grants > 0
    }
}

/// Incrementally-maintained aggregate over a sequence of [`JobOutcome`]s.
///
/// Carries exactly the integer sums a [`JobOutcome`]-derived run summary
/// needs, so accounting can serve summaries in O(1) memory without
/// retaining the per-job outcome log (streaming / low-memory replays).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTotals {
    /// Completed jobs folded in.
    pub jobs: u64,
    /// Sum of queue waits, in milliseconds.
    pub sum_wait_ms: u64,
    /// Sum of turnaround times, in milliseconds.
    pub sum_turnaround_ms: u64,
    /// Jobs with at least one dynamic grant.
    pub satisfied_dyn: u64,
    /// Jobs started by backfill.
    pub backfilled: u64,
}

impl OutcomeTotals {
    /// Folds one completed job into the totals.
    pub fn add(&mut self, o: &JobOutcome) {
        self.jobs += 1;
        self.sum_wait_ms += o.wait().as_millis();
        self.sum_turnaround_ms += o.turnaround().as_millis();
        if o.dyn_satisfied() {
            self.satisfied_dyn += 1;
        }
        if o.backfilled {
            self.backfilled += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionModel;

    fn spec() -> JobSpec {
        JobSpec::rigid("A", UserId(0), GroupId(0), 4, SimDuration::from_secs(267))
    }

    #[test]
    fn rigid_spec_defaults() {
        let s = spec();
        assert_eq!(s.class, JobClass::Rigid);
        assert_eq!(s.walltime, SimDuration::from_secs(267));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn evolving_spec_walltime_is_set() {
        let s = JobSpec::evolving(
            "F",
            UserId(5),
            GroupId(1),
            8,
            ExecutionModel::esp_evolving(1846, 1230, 4),
        );
        assert_eq!(s.walltime, SimDuration::from_secs(1846));
        assert_eq!(s.class, JobClass::Evolving);
    }

    #[test]
    fn walltime_factor() {
        let s = spec().with_walltime_factor(2.0);
        assert_eq!(s.walltime, SimDuration::from_secs(534));
    }

    #[test]
    fn invalid_specs() {
        let mut s = spec();
        s.cores = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.walltime = SimDuration::ZERO;
        assert!(s.validate().is_err());
    }

    #[test]
    fn malleable_and_moldable_constructors() {
        let m = JobSpec::malleable("m", UserId(0), GroupId(0), 16, 8, 32, 16_000);
        assert_eq!(m.class, JobClass::Malleable);
        // Walltime is the worst case: the whole pool at min cores.
        assert_eq!(m.walltime, SimDuration::from_secs(2000));
        assert!(m.validate().is_ok());

        let d = JobSpec::moldable("d", UserId(0), GroupId(0), 16, 8, 32, 16_000);
        assert_eq!(d.class, JobClass::Moldable);
        assert_eq!(d.walltime, SimDuration::from_secs(2000));
        assert!(d.validate().is_ok());
        assert!(d.moldable.is_some() && d.malleable.is_none());
    }

    #[test]
    fn job_lifecycle_times() {
        let mut j = Job::new(JobId(1), spec(), SimTime::from_secs(100));
        assert_eq!(
            j.wait_time(SimTime::from_secs(130)),
            SimDuration::from_secs(30)
        );
        j.start_time = Some(SimTime::from_secs(150));
        j.state = JobState::Running;
        assert_eq!(
            j.wait_time(SimTime::from_secs(999)),
            SimDuration::from_secs(50)
        );
        assert_eq!(j.walltime_end(), Some(SimTime::from_secs(417)));
        assert_eq!(
            j.remaining_walltime(SimTime::from_secs(200)),
            Some(SimDuration::from_secs(217))
        );
        j.end_time = Some(SimTime::from_secs(400));
        assert_eq!(j.turnaround(), Some(SimDuration::from_secs(300)));
    }

    #[test]
    fn state_predicates() {
        assert!(JobState::Running.is_active());
        assert!(JobState::DynQueued.is_active());
        assert!(!JobState::Queued.is_active());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn outcome_metrics() {
        let o = JobOutcome {
            id: JobId(1),
            name: "L".into(),
            user: UserId(7),
            class: JobClass::Rigid,
            cores_requested: 15,
            cores_final: 15,
            submit_time: SimTime::from_secs(10),
            start_time: SimTime::from_secs(40),
            end_time: SimTime::from_secs(406),
            dyn_requests: 0,
            dyn_grants: 0,
            backfilled: true,
        };
        assert_eq!(o.wait(), SimDuration::from_secs(30));
        assert_eq!(o.runtime(), SimDuration::from_secs(366));
        assert_eq!(o.turnaround(), SimDuration::from_secs(396));
        assert!(!o.dyn_satisfied());
    }
}
