//! Execution models: how a job's runtime responds to its allocation.
//!
//! The paper evaluates two kinds of evolving applications:
//!
//! * the **dynamic ESP** jobs (Table I), whose behaviour is summarised by a
//!   *static execution time* (SET) and a *dynamic execution time* (DET), with
//!   a dynamic request for a fixed number of extra cores issued after 16 % of
//!   SET and retried once at 25 % ([`ExecutionModel::Evolving`]);
//! * **Quadflow**, whose runtime is the sum of grid-adaptation phases, each
//!   phase's cost driven by its cell count, and whose dynamic request fires
//!   when a phase exceeds a cells-per-process threshold
//!   ([`ExecutionModel::Phased`], see [`PhasedModel`]).
//!
//! Rigid jobs use [`ExecutionModel::Fixed`].

use crate::time::SimDuration;

/// How a successful dynamic allocation shortens an evolving job
/// (paper §IV-B: "a linear reduction of the execution time ... is assumed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpeedupModel {
    /// Work completed before the grant ran at the static rate; the remainder
    /// runs at the dynamic rate. Granted after a fraction `f` of SET has
    /// elapsed, total runtime is `f·SET + (1−f)·DET`.
    ///
    /// This is the physically consistent reading of "linear reduction" and
    /// the default.
    #[default]
    Interpolate,
    /// The literal Table I reading: a granted job's total runtime is exactly
    /// DET, regardless of when the grant lands (never earlier than the time
    /// already elapsed).
    FullDet,
}

/// A single computation phase of a phased (AMR-style) application, delimited
/// by grid adaptations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Number of grid cells the solver carries through this phase.
    pub cells: u64,
    /// Relative per-cell cost multiplier ×1000 (fixed-point). Different
    /// numerical regimes make some phases costlier per cell; 1000 = 1.0×.
    pub cost_milli: u64,
}

impl Phase {
    /// A phase with unit per-cell cost.
    pub fn new(cells: u64) -> Self {
        Phase {
            cells,
            cost_milli: 1000,
        }
    }
}

/// A Quadflow-style phased execution model.
///
/// Phase `k` executed on `p` cores takes
/// `cells_k · cost_k · seconds_per_cell / effective(p, cells_k)` where
/// `effective(p, c) = min(p, ceil(c / saturation_cells_per_proc))`: when a
/// phase has too few cells to feed every core, extra cores idle and add no
/// speed — this models the paper's observation that the FlatPlate case runs
/// identically on 16 and 32 cores until the final adaptation.
///
/// After each adaptation, if the *next* phase's `cells / cores` exceeds
/// [`PhasedModel::threshold_cells_per_proc`], the application issues a
/// `tm_dynget()` for [`PhasedModel::extra_cores`] more cores.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedModel {
    /// The computation phases, in execution order.
    pub phases: Vec<Phase>,
    /// Core-milliseconds of work per cell at unit cost (scales all phases).
    pub millis_per_cell_core: f64,
    /// Cells-per-process threshold above which the job requests growth.
    pub threshold_cells_per_proc: u64,
    /// Cells per process below which additional cores stop helping.
    pub saturation_cells_per_proc: u64,
    /// Cores requested by each dynamic request.
    pub extra_cores: u32,
}

impl PhasedModel {
    /// Effective parallelism of a phase with `cells` cells on `cores` cores.
    pub fn effective_cores(&self, cores: u32, cells: u64) -> u32 {
        let feedable = cells.div_ceil(self.saturation_cells_per_proc.max(1));
        (cores as u64).min(feedable.max(1)) as u32
    }

    /// Wall-clock duration of phase `k` on `cores` cores.
    pub fn phase_duration(&self, k: usize, cores: u32) -> SimDuration {
        let ph = &self.phases[k];
        let eff = self.effective_cores(cores, ph.cells).max(1) as f64;
        let work_ms = ph.cells as f64 * (ph.cost_milli as f64 / 1000.0) * self.millis_per_cell_core;
        SimDuration::from_millis((work_ms / eff).round() as u64)
    }

    /// Total runtime on a constant allocation of `cores` cores.
    pub fn total_duration(&self, cores: u32) -> SimDuration {
        (0..self.phases.len())
            .map(|k| self.phase_duration(k, cores))
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Whether phase `k` exceeds the growth threshold on `cores` cores,
    /// i.e. whether the application will call `tm_dynget()` right before
    /// entering it.
    pub fn wants_growth(&self, k: usize, cores: u32) -> bool {
        let ph = &self.phases[k];
        ph.cells > self.threshold_cells_per_proc.saturating_mul(cores as u64)
    }
}

/// How a job's runtime is produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionModel {
    /// A rigid job: runs for exactly `duration` on its static allocation.
    Fixed {
        /// The job's wall-clock runtime.
        duration: SimDuration,
    },
    /// A dynamic-ESP evolving job (paper Table I).
    Evolving {
        /// Static execution time: runtime if no dynamic request succeeds.
        set: SimDuration,
        /// Dynamic execution time: runtime on the expanded allocation.
        det: SimDuration,
        /// Extra cores requested dynamically (4 in the paper).
        extra_cores: u32,
        /// Points, as fractions of SET elapsed, at which the job issues
        /// (re-)requests — `[0.16, 0.25]` in the paper. Must be strictly
        /// increasing, each in `(0, 1)`.
        request_points: Vec<f64>,
        /// How a grant shortens the run.
        speedup: SpeedupModel,
    },
    /// A Quadflow-style phased AMR application.
    Phased(PhasedModel),
    /// A malleable work pool: a fixed amount of work that proceeds at a
    /// rate proportional to the current allocation. The batch system may
    /// shrink or grow such a job at any time (paper §II-B's "stealing
    /// resources from malleable jobs" and the future-work item "enable
    /// efficient scheduling for malleable jobs").
    WorkPool {
        /// Total work in core-milliseconds (runtime on `p` cores is
        /// `work / p`).
        work_core_millis: u64,
    },
}

impl ExecutionModel {
    /// A rigid job running for `secs` seconds.
    pub fn fixed_secs(secs: u64) -> Self {
        ExecutionModel::Fixed {
            duration: SimDuration::from_secs(secs),
        }
    }

    /// The paper's evolving-job model: request `extra_cores` at 16 % of SET,
    /// retry at 25 %, interpolated linear speedup.
    pub fn esp_evolving(set_secs: u64, det_secs: u64, extra_cores: u32) -> Self {
        ExecutionModel::Evolving {
            set: SimDuration::from_secs(set_secs),
            det: SimDuration::from_secs(det_secs),
            extra_cores,
            request_points: vec![0.16, 0.25],
            speedup: SpeedupModel::Interpolate,
        }
    }

    /// A malleable work pool of `core_secs` core-seconds.
    pub fn work_pool_secs(core_secs: u64) -> Self {
        ExecutionModel::WorkPool {
            work_core_millis: core_secs * 1000,
        }
    }

    /// Runtime if the job never receives (or never asks for) extra
    /// resources.
    pub fn static_duration(&self, cores: u32) -> SimDuration {
        match self {
            ExecutionModel::Fixed { duration } => *duration,
            ExecutionModel::Evolving { set, .. } => *set,
            ExecutionModel::Phased(p) => p.total_duration(cores),
            ExecutionModel::WorkPool { work_core_millis } => {
                SimDuration::from_millis(work_core_millis.div_ceil(cores.max(1) as u64))
            }
        }
    }

    /// For an evolving job granted extra resources after `elapsed` of
    /// execution, the *total* runtime from job start. Returns `None` for
    /// models that do not support SET/DET evolution.
    pub fn evolved_total(&self, elapsed: SimDuration) -> Option<SimDuration> {
        match self {
            ExecutionModel::Evolving {
                set, det, speedup, ..
            } => {
                let set_ms = set.as_millis();
                if set_ms == 0 {
                    return Some(SimDuration::ZERO);
                }
                let f = (elapsed.as_millis() as f64 / set_ms as f64).clamp(0.0, 1.0);
                let total = match speedup {
                    SpeedupModel::Interpolate => set.mul_f64(f) + det.mul_f64(1.0 - f),
                    SpeedupModel::FullDet => *det,
                };
                // A grant can never finish a job before the time it has
                // already been running.
                Some(total.max(elapsed))
            }
            _ => None,
        }
    }

    /// The dynamic-request instants (offsets from job start) for an
    /// ESP-style evolving job; empty for other models.
    pub fn request_offsets(&self) -> Vec<SimDuration> {
        match self {
            ExecutionModel::Evolving {
                set,
                request_points,
                ..
            } => request_points.iter().map(|&f| set.mul_f64(f)).collect(),
            _ => Vec::new(),
        }
    }

    /// Extra cores the model requests dynamically (0 for rigid jobs).
    pub fn extra_cores(&self) -> u32 {
        match self {
            ExecutionModel::Fixed { .. } | ExecutionModel::WorkPool { .. } => 0,
            ExecutionModel::Evolving { extra_cores, .. } => *extra_cores,
            ExecutionModel::Phased(p) => p.extra_cores,
        }
    }

    /// True for models that may issue dynamic requests of their own.
    pub fn is_evolving(&self) -> bool {
        matches!(
            self,
            ExecutionModel::Evolving { .. } | ExecutionModel::Phased(_)
        )
    }

    /// Validates internal consistency (monotone request points in `(0,1)`,
    /// DET ≤ SET, non-empty phases).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ExecutionModel::Fixed { .. } => Ok(()),
            ExecutionModel::Evolving {
                set,
                det,
                request_points,
                ..
            } => {
                if det > set {
                    return Err(format!("DET {det} exceeds SET {set}"));
                }
                let mut prev = 0.0;
                for &p in request_points {
                    if !(p > prev && p < 1.0) {
                        return Err(format!(
                            "request points must be strictly increasing in (0,1); got {p}"
                        ));
                    }
                    prev = p;
                }
                Ok(())
            }
            ExecutionModel::Phased(p) => {
                if p.phases.is_empty() {
                    return Err("phased model needs at least one phase".into());
                }
                if p.saturation_cells_per_proc == 0 {
                    return Err("saturation_cells_per_proc must be positive".into());
                }
                Ok(())
            }
            ExecutionModel::WorkPool { work_core_millis } => {
                if *work_core_millis == 0 {
                    return Err("work pool must contain work".into());
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esp_f() -> ExecutionModel {
        // Job type F from Table I: SET 1846 s, DET 1230 s, +4 cores.
        ExecutionModel::esp_evolving(1846, 1230, 4)
    }

    #[test]
    fn static_durations() {
        assert_eq!(
            ExecutionModel::fixed_secs(267).static_duration(4),
            SimDuration::from_secs(267)
        );
        assert_eq!(esp_f().static_duration(8), SimDuration::from_secs(1846));
    }

    #[test]
    fn request_offsets_match_paper() {
        let offs = esp_f().request_offsets();
        assert_eq!(offs.len(), 2);
        // 16 % and 25 % of SET.
        assert_eq!(offs[0], SimDuration::from_secs(1846).mul_f64(0.16));
        assert_eq!(offs[1], SimDuration::from_secs(1846).mul_f64(0.25));
    }

    #[test]
    fn interpolated_speedup() {
        let m = esp_f();
        // Granted at exactly 16 % of SET.
        let e = SimDuration::from_secs(1846).mul_f64(0.16);
        let total = m.evolved_total(e).unwrap();
        let expect = 0.16 * 1846.0 + 0.84 * 1230.0;
        assert!((total.as_secs_f64() - expect).abs() < 1.0, "{total}");
        // Granted at start: full DET. Granted at the very end: SET.
        assert_eq!(m.evolved_total(SimDuration::ZERO).unwrap().as_secs(), 1230);
        assert_eq!(
            m.evolved_total(SimDuration::from_secs(1846))
                .unwrap()
                .as_secs(),
            1846
        );
    }

    #[test]
    fn full_det_speedup_never_rewinds() {
        let m = ExecutionModel::Evolving {
            set: SimDuration::from_secs(100),
            det: SimDuration::from_secs(50),
            extra_cores: 4,
            request_points: vec![0.16],
            speedup: SpeedupModel::FullDet,
        };
        assert_eq!(
            m.evolved_total(SimDuration::from_secs(10)).unwrap(),
            SimDuration::from_secs(50)
        );
        // Already ran 60 s > DET: total clamps to elapsed.
        assert_eq!(
            m.evolved_total(SimDuration::from_secs(60)).unwrap(),
            SimDuration::from_secs(60)
        );
    }

    #[test]
    fn rigid_has_no_evolution() {
        let m = ExecutionModel::fixed_secs(100);
        assert!(m.evolved_total(SimDuration::ZERO).is_none());
        assert!(m.request_offsets().is_empty());
        assert_eq!(m.extra_cores(), 0);
        assert!(!m.is_evolving());
    }

    #[test]
    fn phased_saturation() {
        let p = PhasedModel {
            phases: vec![Phase::new(16_000), Phase::new(64_000)],
            millis_per_cell_core: 1.0,
            threshold_cells_per_proc: 3000,
            saturation_cells_per_proc: 1000,
            extra_cores: 16,
        };
        // Phase 0: 16k cells saturate at 16 procs: identical on 16 and 32.
        assert_eq!(p.phase_duration(0, 16), p.phase_duration(0, 32));
        // Phase 1: 64k cells can feed 64 procs: 32 cores are twice as fast.
        assert_eq!(
            p.phase_duration(1, 16).as_millis(),
            2 * p.phase_duration(1, 32).as_millis()
        );
        // Growth wanted only when cells/proc exceeds the threshold.
        assert!(!p.wants_growth(0, 16)); // 1000 cells/proc
        assert!(p.wants_growth(1, 16)); // 4000 cells/proc
        assert!(!p.wants_growth(1, 32)); // 2000 cells/proc
    }

    #[test]
    fn work_pool_scaling() {
        let m = ExecutionModel::work_pool_secs(16_000);
        assert_eq!(m.static_duration(16), SimDuration::from_secs(1000));
        assert_eq!(m.static_duration(32), SimDuration::from_secs(500));
        // Rounds up on uneven division; never zero cores.
        assert_eq!(m.static_duration(3).as_millis(), 16_000_000_u64.div_ceil(3));
        assert_eq!(m.extra_cores(), 0);
        assert!(!m.is_evolving(), "malleability is scheduler-initiated");
        assert!(m.validate().is_ok());
        assert!(ExecutionModel::WorkPool {
            work_core_millis: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validation() {
        assert!(esp_f().validate().is_ok());
        let bad = ExecutionModel::Evolving {
            set: SimDuration::from_secs(10),
            det: SimDuration::from_secs(20),
            extra_cores: 4,
            request_points: vec![0.16],
            speedup: SpeedupModel::Interpolate,
        };
        assert!(bad.validate().is_err());
        let bad_points = ExecutionModel::Evolving {
            set: SimDuration::from_secs(10),
            det: SimDuration::from_secs(5),
            extra_cores: 4,
            request_points: vec![0.25, 0.16],
            speedup: SpeedupModel::Interpolate,
        };
        assert!(bad_points.validate().is_err());
        let empty = ExecutionModel::Phased(PhasedModel {
            phases: vec![],
            millis_per_cell_core: 1.0,
            threshold_cells_per_proc: 1,
            saturation_cells_per_proc: 1,
            extra_cores: 1,
        });
        assert!(empty.validate().is_err());
    }
}
