//! Scheduler and dynamic-fairness configuration.
//!
//! Mirrors the administrator-facing knobs of the extended Maui scheduler:
//! the classic parameters (`ReservationDepth`, backfill policy, priority
//! weights, fairshare) plus the paper's new family —
//! `ReservationDelayDepth` and the **DFS** (dynamic fairness) parameters of
//! §III-D. A small parser accepts the Maui-style text format shown in the
//! paper's Fig 6.

use crate::ids::{CredRegistry, GroupId, UserId};
use crate::time::SimDuration;
use std::collections::HashMap;

/// Backfill strategy for jobs below the reservation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackfillPolicy {
    /// No backfilling: strict priority order.
    None,
    /// EASY backfilling: a lower-priority job may start out of order as long
    /// as it does not delay any of the top-`ReservationDepth` reservations.
    #[default]
    Easy,
    /// Conservative backfilling: a job may start only if it delays no
    /// currently reserved job at all (reservations are created for every
    /// queued job that fits in the lookahead).
    Conservative,
}

/// How cores are placed onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Fill the most-loaded nodes first (minimises fragmentation).
    #[default]
    Pack,
    /// Fill the least-loaded nodes first (spreads jobs for bandwidth).
    Spread,
    /// A node is given to at most one job at a time.
    NodeExclusive,
}

/// Weights for the Maui composite priority function.
///
/// `priority = boost + queue_time_weight·wait_minutes
///            + expansion_weight·(wait/walltime)
///            + resource_weight·cores + fairshare_weight·fs_delta`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityWeights {
    /// Weight on minutes spent queued (the dominant FIFO-ish factor).
    pub queue_time_weight: f64,
    /// Weight on the expansion factor `wait / walltime`.
    pub expansion_weight: f64,
    /// Weight on requested cores (positive favours large jobs).
    pub resource_weight: f64,
    /// Weight on the fairshare deviation (target − usage share).
    pub fairshare_weight: f64,
}

impl Default for PriorityWeights {
    fn default() -> Self {
        PriorityWeights {
            queue_time_weight: 1.0,
            expansion_weight: 0.0,
            resource_weight: 0.0,
            fairshare_weight: 0.0,
        }
    }
}

/// Static fairshare configuration (classic Maui §III-A; distinct from DFS).
#[derive(Debug, Clone, PartialEq)]
pub struct FairshareConfig {
    /// Whether fairshare influences priority at all.
    pub enabled: bool,
    /// Which usage-accounting backend feeds the fairshare priority term.
    pub mode: FairshareMode,
    /// Length of one fairshare window (static mode). `ZERO` means an
    /// **infinite window**: usage accumulates forever with no decay, and
    /// only a single window may be configured (`windows == 1`) — any other
    /// combination is rejected by [`SchedulerConfig::validate`].
    pub window: SimDuration,
    /// Number of historical windows retained (static mode).
    pub windows: usize,
    /// Per-window decay applied to historical usage (newest window weight 1,
    /// then ×decay per step back; static mode).
    pub decay: f64,
    /// Half-life of the decayed resource-hour accounts (time-aware mode):
    /// a charge loses half its weight every `half_life`.
    pub half_life: SimDuration,
    /// Per-user usage-share targets (fraction of the system); users absent
    /// here get `default_target`.
    pub user_targets: HashMap<UserId, f64>,
    /// Target for users without an explicit entry.
    pub default_target: f64,
    /// Per-user decayed resource-hour budget (time-aware mode). A user
    /// whose decayed account exceeds this many core-hours has their queued
    /// jobs demoted (not denied) until decay drains the account.
    pub user_budget_core_hours: Option<f64>,
    /// Per-queue decayed resource-hour budget (time-aware mode), same
    /// demotion semantics as the user budget.
    pub queue_budget_core_hours: Option<f64>,
    /// Priority subtracted from a job whose owner (user or queue) is over
    /// budget. Large enough to rank over-budget work behind everything
    /// else, small enough that explicit `priority_boost` escalation can
    /// still outrank it.
    pub budget_demotion: f64,
}

/// Which usage history backs the fairshare priority component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairshareMode {
    /// The paper's windowed tracker: geometric decay over rotating
    /// fixed-length windows, charged by the sim/daemon at segment sync.
    #[default]
    Static,
    /// Decayed resource-hour accounts fed segment-exactly from the
    /// server's journalled usage ledger: exponential half-life decay,
    /// cluster-capacity normalization, per-user/per-queue budgets, and a
    /// heavy-user penalty on dynamic-request admission.
    TimeAware,
}

impl Default for FairshareConfig {
    fn default() -> Self {
        FairshareConfig {
            enabled: false,
            mode: FairshareMode::Static,
            window: SimDuration::from_hours(1),
            windows: 8,
            decay: 0.7,
            half_life: SimDuration::from_hours(24),
            user_targets: HashMap::new(),
            default_target: 0.1,
            user_budget_core_hours: None,
            queue_budget_core_hours: None,
            budget_demotion: 1e6,
        }
    }
}

/// The `DFSPolicy` parameter: which dynamic-fairness checks apply
/// (paper §III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DfsPolicy {
    /// Dynamic fairness disabled: dynamic requests take highest priority and
    /// delays to static jobs are ignored (the paper's *Dynamic-HP*).
    #[default]
    None,
    /// Limit the delay inflicted on each individual queued job
    /// (`DFSSingleDelayTime`).
    SingleJobDelay,
    /// Limit the *cumulative* delay per user/group per interval
    /// (`DFSTargetDelayTime` over `DFSInterval`).
    TargetDelay,
    /// Both limits apply (`DFSSINGLEANDTARGETDELAY`).
    SingleAndTargetDelay,
}

impl DfsPolicy {
    /// Whether the single-job check is active.
    pub fn checks_single(self) -> bool {
        matches!(
            self,
            DfsPolicy::SingleJobDelay | DfsPolicy::SingleAndTargetDelay
        )
    }

    /// Whether the cumulative-target check is active.
    pub fn checks_target(self) -> bool {
        matches!(
            self,
            DfsPolicy::TargetDelay | DfsPolicy::SingleAndTargetDelay
        )
    }
}

/// Per-credential (user or group) dynamic-fairness limits.
///
/// In the Maui text format a time of `0` means *unlimited*, which we encode
/// as `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CredLimits {
    /// `DFSDynDelayPerm`: may this credential's jobs be delayed by dynamic
    /// allocations at all? (`true` = allow, the default.)
    pub dyn_delay_perm: bool,
    /// `DFSTargetDelayTime`: cumulative delay cap per interval.
    pub target_delay_time: Option<SimDuration>,
    /// `DFSSingleDelayTime`: per-job delay cap.
    pub single_delay_time: Option<SimDuration>,
}

impl Default for CredLimits {
    fn default() -> Self {
        CredLimits {
            dyn_delay_perm: true,
            target_delay_time: None,
            single_delay_time: None,
        }
    }
}

impl CredLimits {
    /// A credential that may never be delayed (`DFSDYNDELAYPERM=0`).
    pub fn never_delay() -> Self {
        CredLimits {
            dyn_delay_perm: false,
            ..Default::default()
        }
    }

    /// A cumulative-delay cap.
    pub fn target(limit: SimDuration) -> Self {
        CredLimits {
            target_delay_time: Some(limit),
            ..Default::default()
        }
    }

    /// A per-job delay cap.
    pub fn single(limit: SimDuration) -> Self {
        CredLimits {
            single_delay_time: Some(limit),
            ..Default::default()
        }
    }

    /// Combines user and group limits by taking the most restrictive of
    /// each field (paper: "the most restrictive limits are used").
    pub fn most_restrictive(self, other: CredLimits) -> CredLimits {
        fn min_opt(a: Option<SimDuration>, b: Option<SimDuration>) -> Option<SimDuration> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (Some(x), None) => Some(x),
                (None, y) => y,
            }
        }
        CredLimits {
            dyn_delay_perm: self.dyn_delay_perm && other.dyn_delay_perm,
            target_delay_time: min_opt(self.target_delay_time, other.target_delay_time),
            single_delay_time: min_opt(self.single_delay_time, other.single_delay_time),
        }
    }
}

/// The complete dynamic-fairness configuration (paper §III-D, Fig 6).
#[derive(Debug, Clone, PartialEq)]
pub struct DfsConfig {
    /// Which checks apply.
    pub policy: DfsPolicy,
    /// `DFSInterval`: length of one accounting interval.
    pub interval: SimDuration,
    /// `DFSDecay`: fraction of the accumulated delay carried into the next
    /// interval (0 = forget everything, 1 = never forget).
    pub decay: f64,
    /// Limits applied to users without an explicit entry.
    pub default_limits: CredLimits,
    /// Per-user overrides (`USERCFG[...]`).
    pub users: HashMap<UserId, CredLimits>,
    /// Per-group overrides (`GROUPCFG[...]`).
    pub groups: HashMap<GroupId, CredLimits>,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            policy: DfsPolicy::None,
            interval: SimDuration::from_hours(1),
            decay: 0.0,
            default_limits: CredLimits::default(),
            users: HashMap::new(),
            groups: HashMap::new(),
        }
    }
}

impl DfsConfig {
    /// The paper's *Dynamic-HP* configuration: DFS disabled.
    pub fn highest_priority() -> Self {
        DfsConfig::default()
    }

    /// The paper's *Dynamic-500 / Dynamic-600* style configuration: a
    /// uniform per-user cumulative-delay cap per interval.
    pub fn uniform_target(limit_secs: u64, interval: SimDuration) -> Self {
        DfsConfig {
            policy: DfsPolicy::TargetDelay,
            interval,
            decay: 0.0,
            default_limits: CredLimits::target(SimDuration::from_secs(limit_secs)),
            users: HashMap::new(),
            groups: HashMap::new(),
        }
    }

    /// The effective limits for `user` in `group`: explicit user limits,
    /// combined most-restrictively with explicit group limits; the default
    /// applies when the user has no entry.
    pub fn effective_limits(&self, user: UserId, group: GroupId) -> CredLimits {
        let user_limits = self
            .users
            .get(&user)
            .copied()
            .unwrap_or(self.default_limits);
        match self.groups.get(&group) {
            Some(&g) => user_limits.most_restrictive(g),
            None => user_limits,
        }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.decay) {
            return Err(format!("DFSDecay must be within [0,1], got {}", self.decay));
        }
        if self.interval.is_zero() && self.policy.checks_target() {
            return Err("DFSInterval must be positive when target checks are active".into());
        }
        Ok(())
    }
}

/// Everything the scheduler needs from the site administrator.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// `ReservationDepth`: reservations created for the N highest-priority
    /// blocked jobs; controls how conservative backfilling is.
    pub reservation_depth: usize,
    /// `ReservationDelayDepth`: number of *StartLater* jobs whose delays are
    /// measured when evaluating a dynamic request (paper §III-C, Fig 5).
    pub reservation_delay_depth: usize,
    /// Backfill strategy.
    pub backfill: BackfillPolicy,
    /// Priority factors.
    pub priority: PriorityWeights,
    /// Static fairshare.
    pub fairshare: FairshareConfig,
    /// Dynamic fairness.
    pub dfs: DfsConfig,
    /// Core placement policy.
    pub alloc: AllocPolicy,
    /// Site option: satisfy dynamic requests by preempting *backfilled*
    /// jobs when idle cores alone do not suffice (paper §III-C: "idle
    /// before preemptible resources").
    pub preempt_backfilled_for_dyn: bool,
    /// Whether dynamic (evolving-job) requests are honoured at all; `false`
    /// reproduces the unmodified, static-only Maui (paper Algorithm 1).
    pub dynamic_enabled: bool,
    /// The *guaranteeing* approach the paper contrasts with (§II-B,
    /// CooRMv2-style): evolving jobs pre-reserve their maximum dynamic
    /// demand at start, so every dynamic request is granted instantly —
    /// at the cost of resources idling until (unless) they are claimed.
    /// `false` (the paper's choice) is the non-guaranteeing approach.
    pub guarantee_evolving: bool,
    /// Serve dynamic requests by shrinking running *malleable* jobs toward
    /// their minimum when idle cores do not suffice (paper §II-B:
    /// "stealing resources from malleable jobs").
    pub shrink_malleable_for_dyn: bool,
    /// Grow running malleable jobs onto otherwise-idle cores at the end of
    /// each iteration (the classic malleability benefit; paper future
    /// work).
    pub grow_malleable_on_idle: bool,
    /// Cores of a *separate partition maintained specifically to serve
    /// dynamic requests* (paper §II-B's second availability source).
    /// Static jobs are never planned onto these cores; dynamic requests
    /// draw from them first — and since no static job could ever have used
    /// them, partition grants inflict no measurable delay.
    pub dyn_partition_cores: u32,
    /// Scheduler shards for within-run parallelism: the cluster's cores
    /// are split into this many contiguous slices, each with its own
    /// incremental timeline, and the planning phases run on a scoped
    /// worker pool. `1` (the default) is the serial path; any other
    /// value produces **byte-identical decisions** — sharding is a pure
    /// performance knob, asserted by the sharded-equivalence suite.
    pub shards: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            reservation_depth: 1,
            reservation_delay_depth: 1,
            backfill: BackfillPolicy::Easy,
            priority: PriorityWeights::default(),
            fairshare: FairshareConfig::default(),
            dfs: DfsConfig::default(),
            alloc: AllocPolicy::Pack,
            preempt_backfilled_for_dyn: false,
            dynamic_enabled: true,
            guarantee_evolving: false,
            shrink_malleable_for_dyn: false,
            grow_malleable_on_idle: false,
            dyn_partition_cores: 0,
            shards: 1,
        }
    }
}

impl SchedulerConfig {
    /// The paper's evaluation baseline: `ReservationDepth` =
    /// `ReservationDelayDepth` = 5, EASY backfill.
    pub fn paper_eval() -> Self {
        SchedulerConfig {
            reservation_depth: 5,
            reservation_delay_depth: 5,
            ..Default::default()
        }
    }

    /// The number of queued jobs that must be examined for reservations or
    /// delay measurement: `max(ReservationDepth, ReservationDelayDepth)`
    /// (paper Fig 5).
    pub fn lookahead_depth(&self) -> usize {
        self.reservation_depth.max(self.reservation_delay_depth)
    }

    /// Validates the whole config.
    pub fn validate(&self) -> Result<(), String> {
        self.dfs.validate()?;
        if self.fairshare.enabled && !(0.0..=1.0).contains(&self.fairshare.decay) {
            return Err("fairshare decay must be within [0,1]".into());
        }
        if self.fairshare.enabled && self.fairshare.window.is_zero() && self.fairshare.windows != 1
        {
            return Err(
                "fairshare window ZERO means an infinite window and admits exactly one \
                 window (windows = 1); retained windows and decay would silently never apply"
                    .into(),
            );
        }
        if self.fairshare.mode == FairshareMode::TimeAware && self.fairshare.half_life.is_zero() {
            return Err("time-aware fairshare requires a positive half_life".into());
        }
        if let Some(b) = self.fairshare.user_budget_core_hours {
            if b.is_nan() || b < 0.0 {
                return Err("user resource-hour budget must be non-negative".into());
            }
        }
        if let Some(b) = self.fairshare.queue_budget_core_hours {
            if b.is_nan() || b < 0.0 {
                return Err("queue resource-hour budget must be non-negative".into());
            }
        }
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        Ok(())
    }
}

/// Parses the Maui-style configuration text of the paper's Fig 6 into a
/// [`DfsConfig`], interning user/group names in `reg`.
///
/// Supported directives (case-insensitive keys):
///
/// ```text
/// DFSPOLICY      DFSSINGLEANDTARGETDELAY | DFSSINGLEJOBDELAY | DFSTARGETDELAY | NONE
/// DFSINTERVAL    HH:MM:SS | seconds
/// DFSDECAY       float in [0,1]
/// USERCFG[name]  DFSDYNDELAYPERM=0|1 DFSTARGETDELAYTIME=… DFSSINGLEDELAYTIME=…
/// GROUPCFG[name] …same keys…
/// ```
///
/// A trailing `\` continues a line, exactly as in the paper's listing.
/// Times of `0` mean *unlimited*.
pub fn parse_dfs_config(text: &str, reg: &mut CredRegistry) -> Result<DfsConfig, String> {
    let mut cfg = DfsConfig::default();

    // Join continuation lines.
    let mut logical: Vec<String> = Vec::new();
    let mut pending = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(stripped) = line.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
        } else {
            pending.push_str(line);
            logical.push(std::mem::take(&mut pending));
        }
    }
    if !pending.is_empty() {
        logical.push(pending);
    }

    for line in &logical {
        let mut parts = line.split_whitespace();
        let key = parts.next().ok_or("empty directive")?.to_ascii_uppercase();
        match key.as_str() {
            "DFSPOLICY" => {
                let v = parts
                    .next()
                    .ok_or("DFSPOLICY needs a value")?
                    .to_ascii_uppercase();
                cfg.policy = match v.as_str() {
                    "NONE" => DfsPolicy::None,
                    "DFSSINGLEJOBDELAY" => DfsPolicy::SingleJobDelay,
                    "DFSTARGETDELAY" => DfsPolicy::TargetDelay,
                    "DFSSINGLEANDTARGETDELAY" | "DFSSINGLETARGETDELAY" => {
                        DfsPolicy::SingleAndTargetDelay
                    }
                    other => return Err(format!("unknown DFSPolicy {other}")),
                };
            }
            "DFSINTERVAL" => {
                let v = parts.next().ok_or("DFSINTERVAL needs a value")?;
                cfg.interval =
                    SimDuration::parse_hms(v).ok_or_else(|| format!("bad DFSInterval {v}"))?;
            }
            "DFSDECAY" => {
                let v = parts.next().ok_or("DFSDECAY needs a value")?;
                cfg.decay = v.parse().map_err(|_| format!("bad DFSDecay {v}"))?;
            }
            _ => {
                if let Some(name) = key
                    .strip_prefix("USERCFG[")
                    .and_then(|s| s.strip_suffix(']'))
                {
                    let limits = parse_cred_limits(parts)?;
                    // USERCFG names in the config are case-preserved in
                    // Maui; our registry keys are the original spelling,
                    // which the uppercased parse lost — recover it from the
                    // raw line.
                    let orig = extract_bracket_name(line, "USERCFG")
                        .unwrap_or_else(|| name.to_ascii_lowercase());
                    let uid = reg.user(&orig);
                    cfg.users.insert(uid, limits);
                } else if let Some(name) = key
                    .strip_prefix("GROUPCFG[")
                    .and_then(|s| s.strip_suffix(']'))
                {
                    let limits = parse_cred_limits(parts)?;
                    let orig = extract_bracket_name(line, "GROUPCFG")
                        .unwrap_or_else(|| name.to_ascii_lowercase());
                    let gid = reg.group(&orig);
                    cfg.groups.insert(gid, limits);
                } else {
                    return Err(format!("unknown directive {key}"));
                }
            }
        }
    }

    cfg.validate()?;
    Ok(cfg)
}

fn extract_bracket_name(line: &str, prefix: &str) -> Option<String> {
    let start = line
        .char_indices()
        .find(|&(i, _)| line[i..].to_ascii_uppercase().starts_with(prefix))
        .map(|(i, _)| i)?;
    let open = line[start..].find('[')? + start + 1;
    let close = line[open..].find(']')? + open;
    Some(line[open..close].to_owned())
}

fn parse_cred_limits<'a>(parts: impl Iterator<Item = &'a str>) -> Result<CredLimits, String> {
    let mut limits = CredLimits::default();
    for kv in parts {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("expected KEY=VALUE, got {kv}"))?;
        match k.to_ascii_uppercase().as_str() {
            "DFSDYNDELAYPERM" => {
                limits.dyn_delay_perm = match v {
                    "1" => true,
                    "0" => false,
                    _ => return Err(format!("DFSDynDelayPerm must be 0 or 1, got {v}")),
                };
            }
            "DFSTARGETDELAYTIME" => {
                let d = SimDuration::parse_hms(v)
                    .ok_or_else(|| format!("bad DFSTargetDelayTime {v}"))?;
                limits.target_delay_time = if d.is_zero() { None } else { Some(d) };
            }
            "DFSSINGLEDELAYTIME" => {
                let d = SimDuration::parse_hms(v)
                    .ok_or_else(|| format!("bad DFSSingleDelayTime {v}"))?;
                limits.single_delay_time = if d.is_zero() { None } else { Some(d) };
            }
            other => return Err(format!("unknown credential key {other}")),
        }
    }
    Ok(limits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The verbatim configuration from the paper's Fig 6.
    const FIG6: &str = r"
DFSPOLICY         DFSSINGLEANDTARGETDELAY
DFSINTERVAL       06:00:00
DFSDECAY          0.4
USERCFG[user01]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
                  DFSSINGLEDELAYTIME=0
USERCFG[user02]   DFSDYNDELAYPERM=0
USERCFG[user03]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=0 \
                  DFSSINGLEDELAYTIME=00:30:00
USERCFG[user04]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=02:00:00 \
                  DFSSINGLEDELAYTIME=00:15:00
GROUPCFG[group05] DFSTARGETDELAYTIME=04:00:00
GROUPCFG[group06] DFSDYNDELAYPERM=0
";

    #[test]
    fn parse_fig6() {
        let mut reg = CredRegistry::new();
        let cfg = parse_dfs_config(FIG6, &mut reg).expect("parse");
        assert_eq!(cfg.policy, DfsPolicy::SingleAndTargetDelay);
        assert_eq!(cfg.interval, SimDuration::from_hours(6));
        assert!((cfg.decay - 0.4).abs() < 1e-12);

        let u1 = reg.find_user("user01").unwrap();
        let l1 = cfg.users[&u1];
        assert!(l1.dyn_delay_perm);
        assert_eq!(l1.target_delay_time, Some(SimDuration::from_secs(3600)));
        assert_eq!(l1.single_delay_time, None); // 0 = unlimited

        let u2 = reg.find_user("user02").unwrap();
        assert!(!cfg.users[&u2].dyn_delay_perm);

        let u3 = reg.find_user("user03").unwrap();
        let l3 = cfg.users[&u3];
        assert_eq!(l3.target_delay_time, None);
        assert_eq!(l3.single_delay_time, Some(SimDuration::from_mins(30)));

        let u4 = reg.find_user("user04").unwrap();
        let l4 = cfg.users[&u4];
        assert_eq!(l4.target_delay_time, Some(SimDuration::from_hours(2)));
        assert_eq!(l4.single_delay_time, Some(SimDuration::from_mins(15)));

        let g5 = reg.find_group("group05").unwrap();
        assert_eq!(
            cfg.groups[&g5].target_delay_time,
            Some(SimDuration::from_hours(4))
        );
        let g6 = reg.find_group("group06").unwrap();
        assert!(!cfg.groups[&g6].dyn_delay_perm);
    }

    #[test]
    fn most_restrictive_combination() {
        let user = CredLimits {
            dyn_delay_perm: true,
            target_delay_time: Some(SimDuration::from_hours(2)),
            single_delay_time: None,
        };
        let group = CredLimits {
            dyn_delay_perm: true,
            target_delay_time: Some(SimDuration::from_hours(4)),
            single_delay_time: Some(SimDuration::from_mins(15)),
        };
        let eff = user.most_restrictive(group);
        assert_eq!(eff.target_delay_time, Some(SimDuration::from_hours(2)));
        assert_eq!(eff.single_delay_time, Some(SimDuration::from_mins(15)));
        assert!(eff.dyn_delay_perm);

        let no_perm = CredLimits::never_delay();
        assert!(!user.most_restrictive(no_perm).dyn_delay_perm);
    }

    #[test]
    fn effective_limits_lookup() {
        let mut reg = CredRegistry::new();
        let cfg = parse_dfs_config(FIG6, &mut reg).unwrap();
        // A user with no explicit entry in group05 inherits the group cap.
        let u9 = reg.user_in_group("user09", "group05");
        let g5 = reg.find_group("group05").unwrap();
        let eff = cfg.effective_limits(u9, g5);
        assert_eq!(eff.target_delay_time, Some(SimDuration::from_hours(4)));
        // user04 in group05: user target (2 h) beats group target (4 h).
        let u4 = reg.find_user("user04").unwrap();
        let eff4 = cfg.effective_limits(u4, g5);
        assert_eq!(eff4.target_delay_time, Some(SimDuration::from_hours(2)));
    }

    #[test]
    fn uniform_target_configs() {
        let c = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
        assert_eq!(c.policy, DfsPolicy::TargetDelay);
        assert_eq!(
            c.default_limits.target_delay_time,
            Some(SimDuration::from_secs(500))
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn policy_predicates() {
        assert!(!DfsPolicy::None.checks_single());
        assert!(!DfsPolicy::None.checks_target());
        assert!(DfsPolicy::SingleJobDelay.checks_single());
        assert!(DfsPolicy::TargetDelay.checks_target());
        assert!(DfsPolicy::SingleAndTargetDelay.checks_single());
        assert!(DfsPolicy::SingleAndTargetDelay.checks_target());
    }

    #[test]
    fn validation_errors() {
        let cfg = DfsConfig {
            decay: 1.5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let mut cfg = DfsConfig::uniform_target(500, SimDuration::ZERO);
        cfg.interval = SimDuration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn parse_errors() {
        let mut reg = CredRegistry::new();
        assert!(parse_dfs_config("DFSPOLICY BOGUS", &mut reg).is_err());
        assert!(parse_dfs_config("DFSINTERVAL xx", &mut reg).is_err());
        assert!(parse_dfs_config("NOT_A_KEY 1", &mut reg).is_err());
        assert!(parse_dfs_config("USERCFG[a] DFSDYNDELAYPERM=2", &mut reg).is_err());
        assert!(parse_dfs_config("USERCFG[a] NOPE=1", &mut reg).is_err());
        assert!(parse_dfs_config("USERCFG[a] DFSDYNDELAYPERM", &mut reg).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut reg = CredRegistry::new();
        let cfg = parse_dfs_config("# hello\n\nDFSPOLICY NONE\n", &mut reg).unwrap();
        assert_eq!(cfg.policy, DfsPolicy::None);
    }

    #[test]
    fn scheduler_config_lookahead() {
        let mut c = SchedulerConfig::paper_eval();
        assert_eq!(c.lookahead_depth(), 5);
        c.reservation_delay_depth = 9;
        assert_eq!(c.lookahead_depth(), 9);
        c.reservation_depth = 12;
        assert_eq!(c.lookahead_depth(), 12);
        assert!(c.validate().is_ok());
    }
}
