//! Error types shared across the dynbatch crates.

use crate::ids::{JobId, NodeId};
use std::fmt;

/// The crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong inside the batch system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A job ID was not found at the server.
    UnknownJob(JobId),
    /// A node ID was not found in the cluster.
    UnknownNode(NodeId),
    /// A request asked for more cores than the whole system owns.
    RequestExceedsSystem {
        /// Requested core count.
        requested: u32,
        /// Total cores in the system.
        capacity: u32,
    },
    /// An allocation operation targeted cores that are not free.
    CoresBusy {
        /// The node involved.
        node: NodeId,
        /// Cores requested on that node.
        requested: u32,
        /// Cores actually idle on that node.
        idle: u32,
    },
    /// A release targeted cores the job does not hold.
    NotAllocated {
        /// The job attempting the release.
        job: JobId,
        /// The node involved.
        node: NodeId,
    },
    /// An operation was applied to a job in an incompatible state.
    InvalidState {
        /// The job.
        job: JobId,
        /// What was attempted.
        operation: &'static str,
        /// The state it was in.
        state: &'static str,
    },
    /// A job already has a dynamic request pending (the server admits at
    /// most one per job; paper §III-B).
    DynRequestPending(JobId),
    /// A configuration was rejected.
    BadConfig(String),
    /// A job specification was rejected at submission.
    BadSpec(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownJob(j) => write!(f, "unknown job {j}"),
            Error::UnknownNode(n) => write!(f, "unknown node {n}"),
            Error::RequestExceedsSystem {
                requested,
                capacity,
            } => write!(
                f,
                "request for {requested} cores exceeds system capacity of {capacity}"
            ),
            Error::CoresBusy {
                node,
                requested,
                idle,
            } => write!(
                f,
                "{node}: requested {requested} cores but only {idle} idle"
            ),
            Error::NotAllocated { job, node } => {
                write!(f, "{job} holds no cores on {node}")
            }
            Error::InvalidState {
                job,
                operation,
                state,
            } => {
                write!(f, "cannot {operation} {job} in state {state}")
            }
            Error::DynRequestPending(j) => {
                write!(f, "{j} already has a dynamic request pending")
            }
            Error::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            Error::BadSpec(msg) => write!(f, "bad job spec: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(Error::UnknownJob(JobId(3)).to_string(), "unknown job job.3");
        assert!(Error::RequestExceedsSystem {
            requested: 200,
            capacity: 120
        }
        .to_string()
        .contains("exceeds"));
        assert!(Error::CoresBusy {
            node: NodeId(1),
            requested: 8,
            idle: 2
        }
        .to_string()
        .contains("only 2 idle"));
        assert!(Error::DynRequestPending(JobId(9))
            .to_string()
            .contains("pending"));
        let e = Error::InvalidState {
            job: JobId(1),
            operation: "start",
            state: "Running",
        };
        assert!(e.to_string().contains("cannot start"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::UnknownNode(NodeId(0)));
    }
}
