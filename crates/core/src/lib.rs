//! # dynbatch-core
//!
//! Shared model types for the `dynbatch` batch system — a Rust reproduction of
//! *"A Batch System with Fair Scheduling for Evolving Applications"*
//! (Prabhakaran et al., ICPP 2014).
//!
//! This crate is dependency-light on purpose: every other `dynbatch` crate —
//! the discrete-event simulator, the Maui-like scheduler, the Torque-like
//! server and the threaded daemon — speaks in terms of the types defined here.
//!
//! The central concepts, in paper terms:
//!
//! * [`job::JobClass`] — the Feitelson/Rudolph taxonomy (rigid, moldable,
//!   malleable, **evolving**). The paper's contribution is first-class
//!   scheduling support for *evolving* jobs: jobs that grow (or shrink) their
//!   own allocation at runtime via `tm_dynget()` / `tm_dynfree()`.
//! * [`exec::ExecutionModel`] — how a job's runtime responds to its
//!   allocation, including the dynamic-ESP evolving model (SET/DET linear
//!   reduction) and the Quadflow-style adaptive-mesh phase model.
//! * [`config::SchedulerConfig`] / [`config::DfsConfig`] — every
//!   administrator knob from the paper: `ReservationDepth`,
//!   `ReservationDelayDepth`, and the dynamic-fairness family
//!   (`DFSPolicy`, `DFSInterval`, `DFSDecay`, per-user/group
//!   `DFSDynDelayPerm` / `DFSTargetDelayTime` / `DFSSingleDelayTime`).
//! * [`time::SimTime`] / [`time::SimDuration`] — millisecond-resolution
//!   virtual time shared by the simulator and the wall-clock daemon.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod exec;
pub mod ids;
pub mod job;
pub mod json;
pub mod testkit;
pub mod time;

pub use config::{
    AllocPolicy, BackfillPolicy, CredLimits, DfsConfig, DfsPolicy, FairshareConfig, FairshareMode,
    PriorityWeights, SchedulerConfig,
};
pub use error::{Error, Result};
pub use exec::{ExecutionModel, Phase, PhasedModel, SpeedupModel};
pub use ids::{CredRegistry, GroupId, JobId, NodeId, QueueId, UserId};
pub use job::{Job, JobClass, JobOutcome, JobSpec, JobState, MalleableRange, OutcomeTotals};
pub use time::{SimDuration, SimTime};
