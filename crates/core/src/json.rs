//! A minimal JSON value, parser and writer.
//!
//! The repo builds fully offline, so `serde`/`serde_json` are not
//! available; the few places that need JSON (workload trace files,
//! benchmark reports) use this module instead. Integers are kept exact
//! ([`Json::UInt`]/[`Json::Int`] hold the full 64-bit range — virtual
//! times use `u64::MAX` as a sentinel, which `f64` cannot represent),
//! object key order is preserved, and the writer emits the same
//! two-space pretty style `serde_json::to_string_pretty` did, keeping
//! existing trace files readable and diffs small.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact up to `u64::MAX`.
    UInt(u64),
    /// A negative integer, kept exact down to `i64::MIN`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a key, failing with a path-style message.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// This value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            Json::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// This value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::UInt(n) => i64::try_from(n).ok(),
            Json::Int(n) => Some(n),
            _ => None,
        }
    }

    /// This value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// This value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation (the `serde_json` pretty
    /// style this repo's trace files were written in).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Mirror serde_json: always keep a fractional part so
                    // the value re-parses as a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the paired low one.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            s.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("hello \"world\"\n".into())),
            ("max", Json::UInt(u64::MAX)),
            ("neg", Json::Int(-42)),
            ("pi", Json::Float(3.25)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("list", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty_list", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [v.to_string_pretty(), v.to_string_compact()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_max_survives_exactly() {
        let text = Json::UInt(u64::MAX).to_string_compact();
        assert_eq!(text, "18446744073709551615");
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(parse(r#""aA\n\té""#).unwrap(), Json::Str("aA\n\té".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn pretty_matches_serde_style() {
        let v = Json::obj(vec![
            ("a", Json::UInt(1)),
            ("b", Json::Arr(vec![Json::Str("x".into())])),
        ]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}"
        );
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "t", "b": false, "f": 1.5, "neg": -7}"#).unwrap();
        assert_eq!(v.req("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-7));
        assert!(v.get("neg").unwrap().as_u64().is_none());
        assert!(v.req("missing").is_err());
        assert!(v.get("n").unwrap().get("x").is_none());
    }
}

/// JSON conversions for the model types that appear in workload traces
/// ([`crate::job::JobSpec`] and everything it contains). Kept here — next
/// to the [`Json`] value — so the format lives in one place; the trace
/// container itself is defined in `dynbatch-workload`.
pub mod model {
    use super::Json;
    use crate::exec::{ExecutionModel, Phase, PhasedModel, SpeedupModel};
    use crate::ids::{GroupId, JobId, QueueId, UserId};
    use crate::job::{Job, JobClass, JobOutcome, JobSpec, JobState, MalleableRange};
    use crate::time::{SimDuration, SimTime};

    fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
        v.req(key)?
            .as_u64()
            .ok_or_else(|| format!("field `{key}` is not a non-negative integer"))
    }

    fn u32_field(v: &Json, key: &str) -> Result<u32, String> {
        u32::try_from(u64_field(v, key)?).map_err(|_| format!("field `{key}` exceeds u32"))
    }

    fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
        v.req(key)?
            .as_str()
            .ok_or_else(|| format!("field `{key}` is not a string"))
    }

    fn duration_field(v: &Json, key: &str) -> Result<SimDuration, String> {
        Ok(SimDuration::from_millis(u64_field(v, key)?))
    }

    fn class_name(class: JobClass) -> &'static str {
        match class {
            JobClass::Rigid => "rigid",
            JobClass::Moldable => "moldable",
            JobClass::Malleable => "malleable",
            JobClass::Evolving => "evolving",
        }
    }

    fn class_from_name(name: &str) -> Result<JobClass, String> {
        match name {
            "rigid" => Ok(JobClass::Rigid),
            "moldable" => Ok(JobClass::Moldable),
            "malleable" => Ok(JobClass::Malleable),
            "evolving" => Ok(JobClass::Evolving),
            other => Err(format!("unknown job class `{other}`")),
        }
    }

    fn range_to_json(r: MalleableRange) -> Json {
        Json::obj(vec![
            ("min_cores", Json::UInt(r.min_cores as u64)),
            ("max_cores", Json::UInt(r.max_cores as u64)),
        ])
    }

    fn range_from_json(v: &Json) -> Result<MalleableRange, String> {
        Ok(MalleableRange {
            min_cores: u32_field(v, "min_cores")?,
            max_cores: u32_field(v, "max_cores")?,
        })
    }

    /// Serialises an execution model as a `type`-tagged object.
    pub fn exec_to_json(exec: &ExecutionModel) -> Json {
        match exec {
            ExecutionModel::Fixed { duration } => Json::obj(vec![
                ("type", Json::Str("fixed".into())),
                ("duration_ms", Json::UInt(duration.as_millis())),
            ]),
            ExecutionModel::Evolving {
                set,
                det,
                extra_cores,
                request_points,
                speedup,
            } => Json::obj(vec![
                ("type", Json::Str("evolving".into())),
                ("set_ms", Json::UInt(set.as_millis())),
                ("det_ms", Json::UInt(det.as_millis())),
                ("extra_cores", Json::UInt(*extra_cores as u64)),
                (
                    "request_points",
                    Json::Arr(request_points.iter().map(|&p| Json::Float(p)).collect()),
                ),
                (
                    "speedup",
                    Json::Str(
                        match speedup {
                            SpeedupModel::Interpolate => "interpolate",
                            SpeedupModel::FullDet => "full_det",
                        }
                        .into(),
                    ),
                ),
            ]),
            ExecutionModel::Phased(p) => Json::obj(vec![
                ("type", Json::Str("phased".into())),
                (
                    "phases",
                    Json::Arr(
                        p.phases
                            .iter()
                            .map(|ph| {
                                Json::obj(vec![
                                    ("cells", Json::UInt(ph.cells)),
                                    ("cost_milli", Json::UInt(ph.cost_milli)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("millis_per_cell_core", Json::Float(p.millis_per_cell_core)),
                (
                    "threshold_cells_per_proc",
                    Json::UInt(p.threshold_cells_per_proc),
                ),
                (
                    "saturation_cells_per_proc",
                    Json::UInt(p.saturation_cells_per_proc),
                ),
                ("extra_cores", Json::UInt(p.extra_cores as u64)),
            ]),
            ExecutionModel::WorkPool { work_core_millis } => Json::obj(vec![
                ("type", Json::Str("work_pool".into())),
                ("work_core_millis", Json::UInt(*work_core_millis)),
            ]),
        }
    }

    /// Parses an execution model written by [`exec_to_json`].
    pub fn exec_from_json(v: &Json) -> Result<ExecutionModel, String> {
        match str_field(v, "type")? {
            "fixed" => Ok(ExecutionModel::Fixed {
                duration: duration_field(v, "duration_ms")?,
            }),
            "evolving" => {
                let points = v
                    .req("request_points")?
                    .as_arr()
                    .ok_or("`request_points` is not an array")?
                    .iter()
                    .map(|p| {
                        p.as_f64()
                            .ok_or_else(|| "non-numeric request point".to_string())
                    })
                    .collect::<Result<Vec<f64>, String>>()?;
                let speedup = match str_field(v, "speedup")? {
                    "interpolate" => SpeedupModel::Interpolate,
                    "full_det" => SpeedupModel::FullDet,
                    other => return Err(format!("unknown speedup model `{other}`")),
                };
                Ok(ExecutionModel::Evolving {
                    set: duration_field(v, "set_ms")?,
                    det: duration_field(v, "det_ms")?,
                    extra_cores: u32_field(v, "extra_cores")?,
                    request_points: points,
                    speedup,
                })
            }
            "phased" => {
                let phases = v
                    .req("phases")?
                    .as_arr()
                    .ok_or("`phases` is not an array")?
                    .iter()
                    .map(|ph| {
                        Ok(Phase {
                            cells: u64_field(ph, "cells")?,
                            cost_milli: u64_field(ph, "cost_milli")?,
                        })
                    })
                    .collect::<Result<Vec<Phase>, String>>()?;
                Ok(ExecutionModel::Phased(PhasedModel {
                    phases,
                    millis_per_cell_core: v
                        .req("millis_per_cell_core")?
                        .as_f64()
                        .ok_or("`millis_per_cell_core` is not a number")?,
                    threshold_cells_per_proc: u64_field(v, "threshold_cells_per_proc")?,
                    saturation_cells_per_proc: u64_field(v, "saturation_cells_per_proc")?,
                    extra_cores: u32_field(v, "extra_cores")?,
                }))
            }
            "work_pool" => Ok(ExecutionModel::WorkPool {
                work_core_millis: u64_field(v, "work_core_millis")?,
            }),
            other => Err(format!("unknown execution model `{other}`")),
        }
    }

    /// Serialises a job spec.
    pub fn spec_to_json(spec: &JobSpec) -> Json {
        let opt_range = |r: Option<MalleableRange>| r.map(range_to_json).unwrap_or(Json::Null);
        Json::obj(vec![
            ("name", Json::Str(spec.name.clone())),
            ("user", Json::UInt(spec.user.0 as u64)),
            ("group", Json::UInt(spec.group.0 as u64)),
            ("class", Json::Str(class_name(spec.class).into())),
            ("cores", Json::UInt(spec.cores as u64)),
            ("walltime_ms", Json::UInt(spec.walltime.as_millis())),
            ("exec", exec_to_json(&spec.exec)),
            ("priority_boost", priority_to_json(spec.priority_boost)),
            (
                "suppress_backfill_while_queued",
                Json::Bool(spec.suppress_backfill_while_queued),
            ),
            ("malleable", opt_range(spec.malleable)),
            ("moldable", opt_range(spec.moldable)),
            (
                "dyn_timeout_ms",
                spec.dyn_timeout
                    .map(|d| Json::UInt(d.as_millis()))
                    .unwrap_or(Json::Null),
            ),
            (
                "queue",
                spec.queue
                    .map(|q| Json::UInt(q.0 as u64))
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    fn priority_to_json(boost: i64) -> Json {
        if boost >= 0 {
            Json::UInt(boost as u64)
        } else {
            Json::Int(boost)
        }
    }

    /// Parses a job spec written by [`spec_to_json`].
    pub fn spec_from_json(v: &Json) -> Result<JobSpec, String> {
        let opt_range = |key: &str| -> Result<Option<MalleableRange>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(r) => range_from_json(r).map(Some),
            }
        };
        let dyn_timeout = match v.get("dyn_timeout_ms") {
            None | Some(Json::Null) => None,
            Some(d) => Some(SimDuration::from_millis(
                d.as_u64().ok_or("`dyn_timeout_ms` is not an integer")?,
            )),
        };
        let queue = match v.get("queue") {
            None | Some(Json::Null) => None,
            Some(q) => Some(QueueId(
                u32::try_from(q.as_u64().ok_or("`queue` is not an integer")?)
                    .map_err(|_| "`queue` out of range".to_string())?,
            )),
        };
        Ok(JobSpec {
            name: str_field(v, "name")?.to_owned(),
            user: UserId(u32_field(v, "user")?),
            group: GroupId(u32_field(v, "group")?),
            class: class_from_name(str_field(v, "class")?)?,
            cores: u32_field(v, "cores")?,
            walltime: duration_field(v, "walltime_ms")?,
            exec: exec_from_json(v.req("exec")?)?,
            priority_boost: v
                .req("priority_boost")?
                .as_i64()
                .ok_or("`priority_boost` is not an integer")?,
            suppress_backfill_while_queued: v
                .req("suppress_backfill_while_queued")?
                .as_bool()
                .ok_or("`suppress_backfill_while_queued` is not a bool")?,
            malleable: opt_range("malleable")?,
            moldable: opt_range("moldable")?,
            dyn_timeout,
            queue,
        })
    }

    fn state_name(state: JobState) -> &'static str {
        match state {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::DynQueued => "dyn_queued",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn state_from_name(name: &str) -> Result<JobState, String> {
        match name {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "dyn_queued" => Ok(JobState::DynQueued),
            "completed" => Ok(JobState::Completed),
            "cancelled" => Ok(JobState::Cancelled),
            other => Err(format!("unknown job state `{other}`")),
        }
    }

    fn opt_time_to_json(t: Option<SimTime>) -> Json {
        t.map(|t| Json::UInt(t.as_millis())).unwrap_or(Json::Null)
    }

    fn opt_time_from_json(v: &Json, key: &str) -> Result<Option<SimTime>, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(t) => {
                Ok(Some(SimTime::from_millis(t.as_u64().ok_or_else(|| {
                    format!("field `{key}` is not an integer")
                })?)))
            }
        }
    }

    fn time_field(v: &Json, key: &str) -> Result<SimTime, String> {
        Ok(SimTime::from_millis(u64_field(v, key)?))
    }

    fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
        v.req(key)?
            .as_bool()
            .ok_or_else(|| format!("field `{key}` is not a bool"))
    }

    /// Serialises a server-side job record (spec + lifecycle bookkeeping) —
    /// the unit the write-ahead journal's snapshots are made of.
    pub fn job_to_json(job: &Job) -> Json {
        Json::obj(vec![
            ("id", Json::UInt(job.id.0)),
            ("spec", spec_to_json(&job.spec)),
            ("state", Json::Str(state_name(job.state).into())),
            ("submit_ms", Json::UInt(job.submit_time.as_millis())),
            ("start_ms", opt_time_to_json(job.start_time)),
            ("end_ms", opt_time_to_json(job.end_time)),
            ("cores_allocated", Json::UInt(job.cores_allocated as u64)),
            ("dyn_requests", Json::UInt(job.dyn_requests as u64)),
            ("dyn_grants", Json::UInt(job.dyn_grants as u64)),
            ("backfilled", Json::Bool(job.backfilled)),
            ("reserved_extra", Json::UInt(job.reserved_extra as u64)),
        ])
    }

    /// Parses a job written by [`job_to_json`].
    pub fn job_from_json(v: &Json) -> Result<Job, String> {
        Ok(Job {
            id: JobId(u64_field(v, "id")?),
            spec: spec_from_json(v.req("spec")?)?,
            state: state_from_name(str_field(v, "state")?)?,
            submit_time: time_field(v, "submit_ms")?,
            start_time: opt_time_from_json(v, "start_ms")?,
            end_time: opt_time_from_json(v, "end_ms")?,
            cores_allocated: u32_field(v, "cores_allocated")?,
            dyn_requests: u32_field(v, "dyn_requests")?,
            dyn_grants: u32_field(v, "dyn_grants")?,
            backfilled: bool_field(v, "backfilled")?,
            reserved_extra: u32_field(v, "reserved_extra")?,
        })
    }

    /// Serialises an accounting outcome. The crash-recovery suite compares
    /// accounting logs *textually*, so this is the canonical form.
    pub fn outcome_to_json(o: &JobOutcome) -> Json {
        Json::obj(vec![
            ("id", Json::UInt(o.id.0)),
            ("name", Json::Str(o.name.clone())),
            ("user", Json::UInt(o.user.0 as u64)),
            ("class", Json::Str(class_name(o.class).into())),
            ("cores_requested", Json::UInt(o.cores_requested as u64)),
            ("cores_final", Json::UInt(o.cores_final as u64)),
            ("submit_ms", Json::UInt(o.submit_time.as_millis())),
            ("start_ms", Json::UInt(o.start_time.as_millis())),
            ("end_ms", Json::UInt(o.end_time.as_millis())),
            ("dyn_requests", Json::UInt(o.dyn_requests as u64)),
            ("dyn_grants", Json::UInt(o.dyn_grants as u64)),
            ("backfilled", Json::Bool(o.backfilled)),
        ])
    }

    /// Parses an outcome written by [`outcome_to_json`].
    pub fn outcome_from_json(v: &Json) -> Result<JobOutcome, String> {
        Ok(JobOutcome {
            id: JobId(u64_field(v, "id")?),
            name: str_field(v, "name")?.to_owned(),
            user: UserId(u32_field(v, "user")?),
            class: class_from_name(str_field(v, "class")?)?,
            cores_requested: u32_field(v, "cores_requested")?,
            cores_final: u32_field(v, "cores_final")?,
            submit_time: time_field(v, "submit_ms")?,
            start_time: time_field(v, "start_ms")?,
            end_time: time_field(v, "end_ms")?,
            dyn_requests: u32_field(v, "dyn_requests")?,
            dyn_grants: u32_field(v, "dyn_grants")?,
            backfilled: bool_field(v, "backfilled")?,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::ids::{GroupId, UserId};

        #[test]
        fn specs_round_trip() {
            let specs = vec![
                JobSpec::rigid("A", UserId(1), GroupId(2), 4, SimDuration::from_secs(267)),
                JobSpec::evolving(
                    "F",
                    UserId(5),
                    GroupId(1),
                    8,
                    ExecutionModel::esp_evolving(1846, 1230, 4),
                )
                .with_priority_boost(-3),
                JobSpec::malleable("m", UserId(0), GroupId(0), 16, 8, 32, 16_000),
                JobSpec::moldable("d", UserId(0), GroupId(0), 16, 8, 32, 16_000),
                JobSpec::evolving(
                    "ph",
                    UserId(2),
                    GroupId(0),
                    16,
                    ExecutionModel::Phased(PhasedModel {
                        phases: vec![Phase::new(16_000), Phase::new(64_000)],
                        millis_per_cell_core: 1.5,
                        threshold_cells_per_proc: 3000,
                        saturation_cells_per_proc: 1000,
                        extra_cores: 16,
                    }),
                ),
            ];
            for spec in specs {
                let text = spec_to_json(&spec).to_string_pretty();
                let parsed = super::super::parse(&text).unwrap();
                let back = spec_from_json(&parsed).unwrap();
                assert_eq!(spec, back, "{text}");
            }
        }

        #[test]
        fn jobs_and_outcomes_round_trip() {
            let spec = JobSpec::evolving(
                "F",
                UserId(5),
                GroupId(1),
                8,
                ExecutionModel::esp_evolving(1846, 1230, 4),
            );
            let mut job = Job::new(JobId(7), spec, SimTime::from_secs(3));
            for state in [
                JobState::Queued,
                JobState::Running,
                JobState::DynQueued,
                JobState::Completed,
                JobState::Cancelled,
            ] {
                job.state = state;
                job.start_time = state.is_active().then(|| SimTime::from_secs(10));
                job.cores_allocated = 12;
                job.dyn_requests = 2;
                job.dyn_grants = 1;
                job.backfilled = true;
                job.reserved_extra = 4;
                let text = job_to_json(&job).to_string_compact();
                let back = job_from_json(&super::super::parse(&text).unwrap()).unwrap();
                assert_eq!(job, back, "{text}");
            }

            let o = JobOutcome {
                id: JobId(7),
                name: "F".into(),
                user: UserId(5),
                class: JobClass::Evolving,
                cores_requested: 8,
                cores_final: 12,
                submit_time: SimTime::from_secs(3),
                start_time: SimTime::from_secs(10),
                end_time: SimTime::from_secs(500),
                dyn_requests: 2,
                dyn_grants: 1,
                backfilled: false,
            };
            let text = outcome_to_json(&o).to_string_compact();
            let back = outcome_from_json(&super::super::parse(&text).unwrap()).unwrap();
            assert_eq!(o, back);
        }

        #[test]
        fn rejects_malformed_specs() {
            let spec = JobSpec::rigid("A", UserId(1), GroupId(2), 4, SimDuration::from_secs(10));
            let mut j = spec_to_json(&spec);
            if let Json::Obj(pairs) = &mut j {
                for (k, v) in pairs.iter_mut() {
                    if k == "class" {
                        *v = Json::Str("weird".into());
                    }
                }
            }
            assert!(spec_from_json(&j).is_err());
        }
    }
}
