//! Virtual time.
//!
//! The simulator and the threaded daemon share one time vocabulary:
//! [`SimTime`] is an absolute instant and [`SimDuration`] a span, both with
//! millisecond resolution. Milliseconds are fine-grained enough for the
//! paper's workloads (job runtimes are hundreds of seconds; the overhead
//! study in Fig 12 reports sub-second values that we reproduce from wall
//! clock measurements, not from virtual time) while keeping all arithmetic
//! exact and deterministic — no floating-point clocks.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in milliseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// This instant as whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// This instant as (truncated) whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// This instant as fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (never overflows past
    /// [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; used as a sentinel for "unbounded".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Builds a span from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1000)
    }

    /// Builds a span from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600 * 1000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// millisecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            SimDuration(0)
        } else {
            SimDuration((s * 1000.0).round() as u64)
        }
    }

    /// Parses the Maui `HH:MM:SS` / plain-seconds notation used throughout
    /// the paper's configuration examples (Fig 6): `"04:00:00"` is four
    /// hours, `"3600"` is an hour.
    pub fn parse_hms(text: &str) -> Option<Self> {
        let text = text.trim();
        if text.is_empty() {
            return None;
        }
        if text.contains(':') {
            let parts: Vec<&str> = text.split(':').collect();
            if parts.len() != 3 {
                return None;
            }
            let h: u64 = parts[0].parse().ok()?;
            let m: u64 = parts[1].parse().ok()?;
            let s: u64 = parts[2].parse().ok()?;
            if m >= 60 || s >= 60 {
                return None;
            }
            Some(SimDuration::from_secs(h * 3600 + m * 60 + s))
        } else {
            text.parse::<u64>().ok().map(SimDuration::from_secs)
        }
    }

    /// This span as whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// This span as (truncated) whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This span as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Scales the span by a non-negative factor, rounding to the nearest
    /// millisecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0 && factor.is_finite());
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// True iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition (never overflows past [`SimDuration::MAX`]).
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    /// Formats as `HH:MM:SS` (with a `.mmm` suffix when sub-second detail
    /// is present), mirroring the notation of the paper's configs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1000;
        let total_s = self.0 / 1000;
        let (h, m, s) = (total_s / 3600, (total_s / 60) % 60, total_s % 60);
        if ms == 0 {
            write!(f, "{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3600);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
        assert_eq!((t - SimTime::from_secs(10)).as_secs(), 5);
        assert_eq!(t.duration_since(SimTime::from_secs(20)), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(9).saturating_sub(SimDuration::from_secs(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn parse_hms_formats() {
        assert_eq!(
            SimDuration::parse_hms("04:00:00"),
            Some(SimDuration::from_hours(4))
        );
        assert_eq!(
            SimDuration::parse_hms("00:30:00"),
            Some(SimDuration::from_mins(30))
        );
        assert_eq!(
            SimDuration::parse_hms("3600"),
            Some(SimDuration::from_secs(3600))
        );
        assert_eq!(SimDuration::parse_hms("1:60:00"), None);
        assert_eq!(SimDuration::parse_hms("1:00"), None);
        assert_eq!(SimDuration::parse_hms(""), None);
        assert_eq!(SimDuration::parse_hms("abc"), None);
    }

    #[test]
    fn display_hms() {
        assert_eq!(
            SimDuration::from_secs(4 * 3600 + 62).to_string(),
            "04:01:02"
        );
        assert_eq!(SimDuration::from_millis(1500).to_string(), "00:00:01.500");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(0.25),
            SimDuration::from_millis(2500)
        );
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(u64::MAX / 2000));
    }
}
