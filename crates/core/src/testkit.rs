//! A tiny deterministic property-testing harness.
//!
//! The repo builds offline, so `proptest` is unavailable; the property
//! suites under `crates/*/tests/prop_*.rs` use this instead. The model is
//! deliberately simple: [`check`] runs a closure over `cases` independent
//! deterministic RNG streams and, if one panics, re-raises with the case
//! index and seed so the failure reproduces with
//! [`TestRng::from_seed`]`(seed)`. There is no shrinking — generators
//! here are small enough that the raw failing seed is debuggable.
//!
//! The RNG is SplitMix64, the same generator `dynbatch-simtime` uses for
//! workloads (duplicated here because `simtime` depends on this crate).

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A deterministic 64-bit RNG (SplitMix64) for generating test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    /// Uses rejection sampling, so the distribution is exactly uniform.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform `u64` in `[lo, hi)`; the range must be non-empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range(lo as u64, hi as u64) as u32
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A biased coin: `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Runs `body` over `cases` deterministic RNG streams derived from
/// `seed`. On a panic, re-raises with the failing case index and the
/// exact per-case seed, so the failure reproduces in isolation with
/// `body(&mut TestRng::from_seed(that_seed))`.
pub fn check(cases: u32, seed: u64, body: impl Fn(&mut TestRng)) {
    for case in 0..cases {
        // Decorrelate per-case streams: feed the case index through one
        // SplitMix64 step rather than seeding with `seed + case` directly.
        let case_seed =
            TestRng::from_seed(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        let result = catch_unwind(AssertUnwindSafe(|| {
            body(&mut TestRng::from_seed(case_seed));
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property failed on case {case}/{cases} (seed {case_seed:#018x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let v = rng.range(5, 15);
            assert!((5..15).contains(&v));
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f));
            let x = *rng.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn check_runs_all_cases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let count = AtomicU32::new(0);
        check(16, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    #[should_panic(expected = "property failed on case")]
    fn check_reports_failing_case() {
        check(8, 2, |rng| {
            let v = rng.below(100);
            assert!(v == u64::MAX, "draw {v} is never u64::MAX");
        });
    }
}
