//! Identifiers and the credential registry.
//!
//! Jobs, nodes, users and groups are referred to by small copyable IDs.
//! Human-readable names (the paper's `user01`…`user10`, `group05`, …) are
//! interned once in a [`CredRegistry`] so the hot scheduler paths compare
//! integers, never strings.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A batch job identifier, unique within one server instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct JobId(pub u64);

/// A compute-node identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

/// An interned user identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct UserId(pub u32);

/// An interned group identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct GroupId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job.{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:03}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gid{}", self.0)
    }
}

/// Interns user and group names to compact IDs and maps them back.
///
/// Every user belongs to exactly one primary group (Torque semantics). The
/// registry is append-only: IDs are stable for the lifetime of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CredRegistry {
    users: Vec<String>,
    groups: Vec<String>,
    user_group: Vec<GroupId>,
    user_index: HashMap<String, UserId>,
    group_index: HashMap<String, GroupId>,
}

impl CredRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or looks up) a group by name.
    pub fn group(&mut self, name: &str) -> GroupId {
        if let Some(&g) = self.group_index.get(name) {
            return g;
        }
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(name.to_owned());
        self.group_index.insert(name.to_owned(), id);
        id
    }

    /// Interns (or looks up) a user by name, binding it to `group`.
    ///
    /// Re-interning an existing user with a different group is a programming
    /// error and panics: accounting would otherwise silently split.
    pub fn user_in_group(&mut self, name: &str, group: &str) -> UserId {
        let gid = self.group(group);
        if let Some(&u) = self.user_index.get(name) {
            assert_eq!(
                self.user_group[u.0 as usize], gid,
                "user {name} re-registered with a different group"
            );
            return u;
        }
        let id = UserId(self.users.len() as u32);
        self.users.push(name.to_owned());
        self.user_group.push(gid);
        self.user_index.insert(name.to_owned(), id);
        id
    }

    /// Interns a user into the default group `"users"`.
    pub fn user(&mut self, name: &str) -> UserId {
        self.user_in_group(name, "users")
    }

    /// The primary group of `user`.
    pub fn group_of(&self, user: UserId) -> GroupId {
        self.user_group[user.0 as usize]
    }

    /// The name of `user`.
    pub fn user_name(&self, user: UserId) -> &str {
        &self.users[user.0 as usize]
    }

    /// The name of `group`.
    pub fn group_name(&self, group: GroupId) -> &str {
        &self.groups[group.0 as usize]
    }

    /// Looks up a user by name without interning.
    pub fn find_user(&self, name: &str) -> Option<UserId> {
        self.user_index.get(name).copied()
    }

    /// Looks up a group by name without interning.
    pub fn find_group(&self, name: &str) -> Option<GroupId> {
        self.group_index.get(name).copied()
    }

    /// Number of interned users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of interned groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Iterates over all interned users.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.users.len() as u32).map(UserId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut reg = CredRegistry::new();
        let u1 = reg.user_in_group("user01", "group05");
        let u2 = reg.user_in_group("user02", "group05");
        let u1b = reg.user_in_group("user01", "group05");
        assert_eq!(u1, u1b);
        assert_ne!(u1, u2);
        assert_eq!(reg.group_of(u1), reg.group_of(u2));
        assert_eq!(reg.user_name(u1), "user01");
        assert_eq!(reg.group_name(reg.group_of(u1)), "group05");
    }

    #[test]
    fn default_group() {
        let mut reg = CredRegistry::new();
        let u = reg.user("alice");
        assert_eq!(reg.group_name(reg.group_of(u)), "users");
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn group_change_panics() {
        let mut reg = CredRegistry::new();
        reg.user_in_group("bob", "g1");
        reg.user_in_group("bob", "g2");
    }

    #[test]
    fn lookups() {
        let mut reg = CredRegistry::new();
        let u = reg.user_in_group("carol", "staff");
        assert_eq!(reg.find_user("carol"), Some(u));
        assert_eq!(reg.find_user("dave"), None);
        assert!(reg.find_group("staff").is_some());
        assert_eq!(reg.user_count(), 1);
        assert_eq!(reg.group_count(), 1);
        assert_eq!(reg.users().collect::<Vec<_>>(), vec![u]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(JobId(7).to_string(), "job.7");
        assert_eq!(NodeId(3).to_string(), "node003");
        assert_eq!(UserId(1).to_string(), "uid1");
        assert_eq!(GroupId(2).to_string(), "gid2");
    }
}
