//! Identifiers and the credential registry.
//!
//! Jobs, nodes, users and groups are referred to by small copyable IDs.
//! Human-readable names (the paper's `user01`…`user10`, `group05`, …) are
//! interned once in a [`CredRegistry`] so the hot scheduler paths compare
//! integers, never strings.

use std::collections::HashMap;
use std::fmt;

/// A batch job identifier, unique within one server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// A compute-node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// An interned user identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// An interned group identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

/// A submission-queue identifier. Sites that do not configure explicit
/// queues get one queue per user group ([`crate::JobSpec::effective_queue`]),
/// so per-queue resource-hour accounting degenerates to per-group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job.{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:03}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gid{}", self.0)
    }
}

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Interns user and group names to compact IDs and maps them back.
///
/// Every user belongs to exactly one primary group (Torque semantics). The
/// registry is append-only: IDs are stable for the lifetime of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CredRegistry {
    users: Vec<String>,
    groups: Vec<String>,
    user_group: Vec<GroupId>,
    user_index: HashMap<String, UserId>,
    group_index: HashMap<String, GroupId>,
}

impl CredRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or looks up) a group by name.
    pub fn group(&mut self, name: &str) -> GroupId {
        if let Some(&g) = self.group_index.get(name) {
            return g;
        }
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(name.to_owned());
        self.group_index.insert(name.to_owned(), id);
        id
    }

    /// Interns (or looks up) a user by name, binding it to `group`.
    ///
    /// Re-interning an existing user with a different group is a programming
    /// error and panics: accounting would otherwise silently split.
    pub fn user_in_group(&mut self, name: &str, group: &str) -> UserId {
        let gid = self.group(group);
        if let Some(&u) = self.user_index.get(name) {
            assert_eq!(
                self.user_group[u.0 as usize], gid,
                "user {name} re-registered with a different group"
            );
            return u;
        }
        let id = UserId(self.users.len() as u32);
        self.users.push(name.to_owned());
        self.user_group.push(gid);
        self.user_index.insert(name.to_owned(), id);
        id
    }

    /// Interns a user into the default group `"users"`.
    pub fn user(&mut self, name: &str) -> UserId {
        self.user_in_group(name, "users")
    }

    /// The primary group of `user`.
    pub fn group_of(&self, user: UserId) -> GroupId {
        self.user_group[user.0 as usize]
    }

    /// The name of `user`.
    pub fn user_name(&self, user: UserId) -> &str {
        &self.users[user.0 as usize]
    }

    /// The name of `group`.
    pub fn group_name(&self, group: GroupId) -> &str {
        &self.groups[group.0 as usize]
    }

    /// Looks up a user by name without interning.
    pub fn find_user(&self, name: &str) -> Option<UserId> {
        self.user_index.get(name).copied()
    }

    /// Looks up a group by name without interning.
    pub fn find_group(&self, name: &str) -> Option<GroupId> {
        self.group_index.get(name).copied()
    }

    /// Number of interned users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of interned groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Iterates over all interned users.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.users.len() as u32).map(UserId)
    }

    /// Serialises the registry (used by workload trace files). Only the
    /// name tables and the user→group binding are written; the lookup
    /// indices are rebuilt on load.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj(vec![
            (
                "users",
                Json::Arr(self.users.iter().map(|u| Json::Str(u.clone())).collect()),
            ),
            (
                "groups",
                Json::Arr(self.groups.iter().map(|g| Json::Str(g.clone())).collect()),
            ),
            (
                "user_group",
                Json::Arr(
                    self.user_group
                        .iter()
                        .map(|g| Json::UInt(g.0 as u64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a registry written by [`CredRegistry::to_json`], rebuilding
    /// the name→ID indices and validating the user→group binding.
    pub fn from_json(v: &crate::json::Json) -> Result<Self, String> {
        let str_list = |key: &str| -> Result<Vec<String>, String> {
            v.req(key)?
                .as_arr()
                .ok_or_else(|| format!("`{key}` is not an array"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("`{key}` contains a non-string"))
                })
                .collect()
        };
        let users = str_list("users")?;
        let groups = str_list("groups")?;
        let user_group = v
            .req("user_group")?
            .as_arr()
            .ok_or("`user_group` is not an array")?
            .iter()
            .map(|g| {
                let gid = g.as_u64().ok_or("`user_group` contains a non-integer")?;
                if gid >= groups.len() as u64 {
                    return Err(format!("group id {gid} out of range"));
                }
                Ok(GroupId(gid as u32))
            })
            .collect::<Result<Vec<GroupId>, String>>()?;
        if user_group.len() != users.len() {
            return Err(format!(
                "user_group has {} entries for {} users",
                user_group.len(),
                users.len()
            ));
        }
        let mut user_index = HashMap::new();
        for (i, name) in users.iter().enumerate() {
            if user_index.insert(name.clone(), UserId(i as u32)).is_some() {
                return Err(format!("duplicate user `{name}`"));
            }
        }
        let mut group_index = HashMap::new();
        for (i, name) in groups.iter().enumerate() {
            if group_index
                .insert(name.clone(), GroupId(i as u32))
                .is_some()
            {
                return Err(format!("duplicate group `{name}`"));
            }
        }
        Ok(CredRegistry {
            users,
            groups,
            user_group,
            user_index,
            group_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut reg = CredRegistry::new();
        let u1 = reg.user_in_group("user01", "group05");
        let u2 = reg.user_in_group("user02", "group05");
        let u1b = reg.user_in_group("user01", "group05");
        assert_eq!(u1, u1b);
        assert_ne!(u1, u2);
        assert_eq!(reg.group_of(u1), reg.group_of(u2));
        assert_eq!(reg.user_name(u1), "user01");
        assert_eq!(reg.group_name(reg.group_of(u1)), "group05");
    }

    #[test]
    fn default_group() {
        let mut reg = CredRegistry::new();
        let u = reg.user("alice");
        assert_eq!(reg.group_name(reg.group_of(u)), "users");
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn group_change_panics() {
        let mut reg = CredRegistry::new();
        reg.user_in_group("bob", "g1");
        reg.user_in_group("bob", "g2");
    }

    #[test]
    fn lookups() {
        let mut reg = CredRegistry::new();
        let u = reg.user_in_group("carol", "staff");
        assert_eq!(reg.find_user("carol"), Some(u));
        assert_eq!(reg.find_user("dave"), None);
        assert!(reg.find_group("staff").is_some());
        assert_eq!(reg.user_count(), 1);
        assert_eq!(reg.group_count(), 1);
        assert_eq!(reg.users().collect::<Vec<_>>(), vec![u]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(JobId(7).to_string(), "job.7");
        assert_eq!(NodeId(3).to_string(), "node003");
        assert_eq!(UserId(1).to_string(), "uid1");
        assert_eq!(GroupId(2).to_string(), "gid2");
    }
}
