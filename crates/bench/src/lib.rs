//! # dynbatch-bench
//! Benchmark harness; see `src/bin` and `benches`.
