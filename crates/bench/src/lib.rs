//! # dynbatch-bench
//! Benchmark harness; see `src/bin` and `benches`.

pub mod alloc_meter;
