//! A counting global allocator for peak-memory benchmarks.
//!
//! Wraps the system allocator with two relaxed atomics: live bytes and
//! the high-water mark. Zero dependencies, negligible overhead, and —
//! unlike RSS sampling — deterministic and immune to allocator caching,
//! so the `ingest` section of `BENCH_sched.json` can assert a memory
//! *ratio* rather than eyeball a noisy number.
//!
//! Installing it is the binary's choice:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dynbatch_bench::alloc_meter::CountingAlloc =
//!     dynbatch_bench::alloc_meter::CountingAlloc;
//! ```
//!
//! The workload/sim/server crates all `forbid(unsafe_code)`; the two
//! `unsafe` blocks below are pure delegation to [`System`] and live only
//! in this measurement crate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// The system allocator plus live/peak byte counters.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                let live = LIVE.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Bytes currently allocated.
pub fn current_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Rebases the high-water mark to the current live bytes and returns the
/// live level — call before the section whose peak is being measured.
pub fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}
