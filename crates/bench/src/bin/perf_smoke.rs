//! Dependency-light performance smoke harness (no criterion).
//!
//! The measurements, written to `BENCH_sched.json`:
//!
//! 1. **Scaled planning kernel** — one scheduler iteration's hot path
//!    (profile build, mold-fit sweep, reservations, backfill, dynamic
//!    what-if delay loop) on a 10×-ESP-scale snapshot (150 nodes / 1200
//!    cores, 2300 jobs), implemented twice: the *pre-change* formulation
//!    on [`NaiveProfile`] (full-scan `min_idle`, global re-coalescing
//!    `hold`, allocating `earliest_fit`, per-request clone + replan of the
//!    "before" plan) and the *optimised* formulation on
//!    [`AvailabilityProfile`] (windowed ops, scratch buffers, cached
//!    before-plan, `JobId` index). Both kernels implement the same
//!    decision policy and the harness asserts their decisions are
//!    identical before trusting the timing.
//! 2. **Full `Maui::iterate`** on the same scaled snapshot, before-plan
//!    cache on vs off, decisions asserted identical.
//! 3. **Incremental timeline** — a multi-tick snapshot sequence (jobs
//!    finishing, starting and resizing between scheduler cycles, each
//!    tick carrying the server's [`DeltaLog`]) driven through a delta-fed
//!    `Maui` and a rebuild-every-iteration `Maui`. Decisions are asserted
//!    identical tick by tick — with the rebuild-equivalence guard enabled
//!    on the correctness pass — before either path is timed.
//! 4. **Sharded kernel** — the same tick sequence through the
//!    partitioned-timeline scheduler at shard counts {1, 2, 4, 8}:
//!    per-tick decisions asserted byte-identical to the serial path at
//!    every count (with the threaded rounds pinned on), then each count
//!    timed with auto worker selection. The ≥2× bar at 4 shards is
//!    enforced only on hosts with ≥4 cores — skipped (and recorded as
//!    skipped), never faked, elsewhere.
//! 5. **Table II end-to-end** — the paper configurations (Static, Dyn-HP,
//!    Dyn-500, Dyn-100) over the ESP workload, wall clock plus
//!    per-iteration stats.
//! 6. **Journal overhead** — the Dyn-HP ESP run with the write-ahead
//!    state journal disabled vs enabled, append cost charged per
//!    scheduled job, with a ≤10 % regression sanity bound (durability
//!    must stay in the noise).
//! 7. **Command reactor** — sustained submissions/sec through the
//!    `server::reactor` front-end: N client threads race `qsub` lines
//!    into the reactor while the host drains admission batches into a
//!    journaled `PbsServer`, with group-commit acks vs per-command acks.
//!    Every command's journal record is appended before its reply either
//!    way (ack-on-append); the contrast isolates the ack-batching cost.
//! 8. **Sweep engine** — a `(config × seed)` ESP campaign run serially
//!    (fresh simulator per run) and on the parallel sweep engine at two
//!    different worker counts, per-seed `RunSummary`s asserted identical
//!    across all three. Written to `BENCH_sweep.json`, with requested
//!    (null when auto-derived) and effective worker counts recorded
//!    separately so emitted content stays comparable across hosts.
//!
//! 9. **Streaming ingestion** — a month-scale synthetic SWF trace is
//!    written to disk once, then replayed twice under a counting global
//!    allocator: streamed (`SwfSource` over a `BufRead`, lazy admission
//!    through a bounded lookahead window, O(trace) side buffers off) and
//!    materialized (slurp + `parse_swf` + eager `load`, same retention
//!    mode). End-state fingerprints, summaries and counters are asserted
//!    identical before the peak-allocation ratio is trusted; the full run
//!    gates the ratio at ≥10×.
//!
//! `--quick` (or `DYNBATCH_QUICK=1`) shrinks the workload, repetition
//! counts and sweep matrix in **every** section for CI; the full run is
//! the one whose numbers are recorded in the committed JSON files.

use dynbatch_bench::alloc_meter;
use dynbatch_cluster::Cluster;
use dynbatch_core::json::Json;
use dynbatch_core::{
    AllocPolicy, CredRegistry, DfsConfig, FairshareMode, JobId, JobOutcome, QueueId,
    SchedulerConfig, SimDuration, SimTime,
};
use dynbatch_metrics::{
    stats::quantile, summarize_ensemble, user_wait_fairness, Aggregate, RunSummary,
};
use dynbatch_sched::incremental::rebuild_into;
use dynbatch_sched::reference::NaiveProfile;
use dynbatch_sched::{
    rank_jobs, AvailabilityProfile, DeltaLog, DynRequest, FairnessView, IncrementalTimeline, Maui,
    ProfileDelta, QueuedJob, RunningJob, Snapshot,
};
use dynbatch_server::reactor::apply_to_server;
use dynbatch_server::{PbsServer, Reactor};
use dynbatch_sim::{run_experiment, run_sweep, sweep::worker_count, BatchSim, ExperimentConfig};
use dynbatch_simtime::SplitMix64;
use dynbatch_workload::{
    generate_esp, stream_esp, stream_synthetic, EspConfig, SyntheticConfig, WorkloadItem,
};
use std::collections::HashMap;
use std::hint::black_box;
use std::thread;
use std::time::Instant;

/// Every byte the harness allocates flows through the counter so the
/// ingest section can assert a peak-memory *ratio* deterministically.
#[global_allocator]
static ALLOC: alloc_meter::CountingAlloc = alloc_meter::CountingAlloc;

/// A planned (job, start) pair — the comparable output of both kernels.
type Plan = Vec<(JobId, SimTime)>;

/// What one iteration decides; both kernels must produce the same value.
#[derive(Debug, PartialEq, Eq)]
struct KernelOut {
    starts: Vec<(JobId, bool)>,
    reservations: Vec<(JobId, SimTime)>,
    grants: Vec<JobId>,
    delay_ms: u64,
}

const GRACE: SimDuration = SimDuration::from_millis(1);

/// A saturated snapshot scaled from the paper's testbed: `nodes` 8-core
/// nodes, `jobs` total jobs split into running / queued, with dynamic
/// requests from a slice of the running evolving jobs.
fn scaled_snapshot(nodes: u32, jobs: usize, seed: u64) -> Snapshot {
    let total_cores = nodes * 8;
    let mut rng = SplitMix64::new(seed);
    let now = SimTime::from_secs(10_000);
    let horizon = 4 * 3600; // running jobs end within 4 h, like ESP
    let mut snap = Snapshot {
        now,
        total_cores,
        running: Vec::new(),
        queued: Vec::new(),
        dyn_requests: Vec::new(),
        usage: None,
        deltas: None,
    };
    // Fill ~95% of the machine with small running jobs so planning is
    // forced to look ahead and the availability timeline carries many
    // distinct steps (the interesting regime: hundreds of step joints).
    let mut used = 0u32;
    let mut id = 0u64;
    let mut seq = 0u64;
    while used + 3 <= total_cores * 95 / 100 {
        let cores = 1 + rng.next_below(3) as u32;
        used += cores;
        let end = now + SimDuration::from_secs(10 + rng.next_below(horizon));
        snap.running.push(RunningJob {
            id: JobId(id),
            user: dynbatch_core::UserId((id % 10) as u32),
            group: dynbatch_core::GroupId(0),
            cores,
            start_time: SimTime::from_secs(rng.next_below(9_000)),
            walltime_end: end,
            backfilled: false,
            reserved_extra: 0,
            malleable: None,
        });
        // Every fourth running job is evolving and asks for more cores.
        if id.is_multiple_of(4) {
            snap.dyn_requests.push(DynRequest {
                job: JobId(id),
                user: dynbatch_core::UserId((id % 10) as u32),
                group: dynbatch_core::GroupId(0),
                extra_cores: 2 + rng.next_below(4) as u32,
                remaining_walltime: end.duration_since(now),
                seq,
                deadline: None,
            });
            seq += 1;
        }
        id += 1;
    }
    while (snap.running.len() + snap.queued.len()) < jobs {
        snap.queued.push(QueuedJob {
            id: JobId(100_000 + id),
            user: dynbatch_core::UserId((id % 10) as u32),
            group: dynbatch_core::GroupId(0),
            queue: QueueId(0),
            cores: 4 + rng.next_below(40) as u32,
            walltime: SimDuration::from_secs(300 + rng.next_below(1_500)),
            submit_time: SimTime::from_secs(rng.next_below(10_000)),
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        });
        id += 1;
    }
    snap
}

/// A multi-cycle snapshot sequence over the scaled cluster, mimicking
/// what [`PbsServer::snapshot_incremental`] feeds the scheduler: each
/// tick advances `now` by 30 s, retires running jobs well past their
/// walltime (a short overdue tail survives, exercising the grace
/// re-clamp), starts queued jobs into the freed cores, resizes one
/// running job, and stamps a [`DeltaLog`] mirroring exactly those edits
/// with consecutive epochs.
fn tick_sequence(nodes: u32, jobs: usize, seed: u64, ticks: usize) -> Vec<Snapshot> {
    let total_cores = nodes * 8;
    let mut rng = SplitMix64::new(seed ^ 0x71C5);
    let mut snap = scaled_snapshot(nodes, jobs, seed);
    let mut epoch = 0u64;
    let mut seq = snap
        .dyn_requests
        .iter()
        .map(|r| r.seq + 1)
        .max()
        .unwrap_or(0);
    let mut out = Vec::with_capacity(ticks);
    snap.deltas = Some(DeltaLog {
        base_epoch: epoch,
        epoch: epoch + 1,
        deltas: Vec::new(),
    });
    epoch += 1;
    out.push(snap.clone());
    for _ in 1..ticks {
        snap.now += SimDuration::from_secs(30);
        let now = snap.now;
        let mut deltas = Vec::new();
        // Retire jobs 60 s past their walltime; until then they stay
        // running overdue, pinned to the one-grace clamp on both paths.
        let mut i = 0;
        while i < snap.running.len() {
            if snap.running[i].walltime_end + SimDuration::from_secs(60) <= now {
                let gone = snap.running.swap_remove(i);
                deltas.push(ProfileDelta::Finished { job: gone.id });
            } else {
                i += 1;
            }
        }
        let mut used: u32 = snap
            .running
            .iter()
            .map(|r| r.cores + r.reserved_extra)
            .sum();
        // Resize one running job by a core (grow if it fits, else shrink).
        if !snap.running.is_empty() {
            let i = rng.next_below(snap.running.len() as u64) as usize;
            let r = &mut snap.running[i];
            if used < total_cores {
                r.cores += 1;
                used += 1;
            } else if r.cores > 1 {
                r.cores -= 1;
                used -= 1;
            }
            deltas.push(ProfileDelta::Resized {
                job: r.id,
                held_cores: r.cores + r.reserved_extra,
            });
        }
        // Start queued jobs into whatever the retirements freed.
        let mut started = 0;
        while started < 4 {
            match snap.queued.last() {
                Some(q) if used + q.cores <= total_cores => {
                    let q = snap.queued.pop().expect("just peeked");
                    used += q.cores;
                    let end = now + SimDuration::from_secs(120 + rng.next_below(7_200));
                    deltas.push(ProfileDelta::Started {
                        job: q.id,
                        held_cores: q.cores,
                        walltime_end: end,
                    });
                    snap.running.push(RunningJob {
                        id: q.id,
                        user: q.user,
                        group: q.group,
                        cores: q.cores,
                        start_time: now,
                        walltime_end: end,
                        backfilled: false,
                        reserved_extra: 0,
                        malleable: None,
                    });
                    started += 1;
                }
                _ => break,
            }
        }
        // Fresh dynamic requests from the surviving evolving jobs.
        snap.dyn_requests = snap
            .running
            .iter()
            .filter(|r| r.id.0.is_multiple_of(4) && r.walltime_end > now)
            .take(16)
            .map(|r| {
                seq += 1;
                DynRequest {
                    job: r.id,
                    user: r.user,
                    group: r.group,
                    extra_cores: 2,
                    remaining_walltime: r.walltime_end.duration_since(now),
                    seq,
                    deadline: None,
                }
            })
            .collect();
        snap.deltas = Some(DeltaLog {
            base_epoch: epoch,
            epoch: epoch + 1,
            deltas,
        });
        epoch += 1;
        out.push(snap.clone());
    }
    out
}

/// `plan_starts` in the pre-change formulation.
fn naive_plan(
    profile: &mut NaiveProfile,
    ranked: &[QueuedJob],
    depth: usize,
    now: SimTime,
) -> Plan {
    let mut plans = Vec::new();
    for job in ranked.iter().take(depth) {
        let Some(start) = profile.earliest_fit(job.cores, job.walltime, now) else {
            continue;
        };
        profile.hold(start, start.saturating_add(job.walltime), job.cores);
        plans.push((job.id, start));
    }
    plans
}

/// `plan_starts` in the optimised formulation (ref-based queue).
fn opt_plan(
    profile: &mut AvailabilityProfile,
    ranked: &[&QueuedJob],
    depth: usize,
    now: SimTime,
) -> Plan {
    let mut plans = Vec::new();
    for job in ranked.iter().take(depth) {
        let Some(start) = profile.earliest_fit(job.cores, job.walltime, now) else {
            continue;
        };
        profile.hold(start, start.saturating_add(job.walltime), job.cores);
        plans.push((job.id, start));
    }
    plans
}

/// One scheduler iteration's hot path exactly as the pre-optimisation code
/// performed it: naive profile ops and — crucially — the "before" plan
/// recomputed from a fresh clone for every dynamic request.
///
/// Ranking is hoisted out of both kernels (`ranked` arrives pre-sorted):
/// the priority comparator is untouched by the overhaul, and including it
/// would only dilute the measurement of what actually changed.
fn naive_kernel(snap: &Snapshot, ranked: &[QueuedJob], cfg: &SchedulerConfig) -> KernelOut {
    let now = snap.now;
    let mut base = NaiveProfile::new(now, snap.total_cores);
    for r in &snap.running {
        base.hold(
            now,
            r.walltime_end.max(now + GRACE),
            r.cores + r.reserved_extra,
        );
    }
    black_box(naive_plan(
        &mut base.clone(),
        ranked,
        cfg.lookahead_depth(),
        now,
    ));

    let mut requests: Vec<DynRequest> = snap.dyn_requests.clone();
    requests.sort_by_key(|r| r.seq);
    let mut grants = Vec::new();
    let mut delay_ms = 0u64;
    let depth = cfg.reservation_delay_depth;
    for req in &requests {
        let trial = base.clone();
        if trial.idle_at(now) < req.extra_cores {
            continue; // rejected: no resources
        }
        let mut expanded = trial.clone();
        expanded.hold_for(now, req.remaining_walltime, req.extra_cores);
        let before = naive_plan(&mut base.clone(), ranked, depth, now);
        let after = naive_plan(&mut expanded.clone(), ranked, depth, now);
        for &(job, start) in &before {
            let d = match after.iter().find(|&&(a, _)| a == job) {
                Some(&(_, s)) => s.duration_since(start),
                None => ranked
                    .iter()
                    .find(|j| j.id == job)
                    .map(|j| j.walltime)
                    .unwrap_or(SimDuration::ZERO),
            };
            let owner = ranked
                .iter()
                .find(|j| j.id == job)
                .expect("planned job is queued");
            black_box(owner.user);
            delay_ms += d.as_millis();
        }
        base = expanded; // highest-priority policy: grant whenever it fits
        grants.push(req.job);
    }

    let mut profile = base;
    let mut starts = Vec::new();
    let mut reservations = Vec::new();
    let mut taken: Vec<JobId> = Vec::new();
    let mut blocked = false;
    for job in ranked {
        if !blocked {
            if profile.min_idle(now, now.saturating_add(job.walltime)) >= job.cores {
                profile.hold_for(now, job.walltime, job.cores);
                starts.push((job.id, false));
                taken.push(job.id);
                continue;
            }
            blocked = true;
        }
        if reservations.len() < cfg.reservation_depth {
            if let Some(start) = profile.earliest_fit(job.cores, job.walltime, now) {
                if start > now {
                    profile.hold(start, start.saturating_add(job.walltime), job.cores);
                    reservations.push((job.id, start));
                    taken.push(job.id);
                }
            }
        }
    }
    for job in ranked {
        if taken.contains(&job.id) {
            continue;
        }
        if profile.min_idle(now, now.saturating_add(job.walltime)) >= job.cores {
            profile.hold_for(now, job.walltime, job.cores);
            starts.push((job.id, true));
            taken.push(job.id);
        }
    }
    KernelOut {
        starts,
        reservations,
        grants,
        delay_ms,
    }
}

/// The same iteration on the optimised machinery: borrowed queue, windowed
/// profile, scratch buffers, cached before-plan, `JobId` index.
fn opt_kernel(snap: &Snapshot, ranked_src: &[QueuedJob], cfg: &SchedulerConfig) -> KernelOut {
    let now = snap.now;
    let ranked: Vec<&QueuedJob> = ranked_src.iter().collect();
    let mut base = AvailabilityProfile::new(now, snap.total_cores);
    for r in &snap.running {
        base.hold(
            now,
            r.walltime_end.max(now + GRACE),
            r.cores + r.reserved_extra,
        );
    }
    let mut scratch = AvailabilityProfile::new(now, snap.total_cores);
    let mut expanded = AvailabilityProfile::new(now, snap.total_cores);
    scratch.assign_from(&base);
    black_box(opt_plan(&mut scratch, &ranked, cfg.lookahead_depth(), now));

    let mut requests: Vec<&DynRequest> = snap.dyn_requests.iter().collect();
    requests.sort_by_key(|r| r.seq);
    let jobs_by_id: HashMap<JobId, &QueuedJob> = ranked.iter().map(|j| (j.id, *j)).collect();
    let mut before_plan: Option<Plan> = None;
    let mut grants = Vec::new();
    let mut delay_ms = 0u64;
    let depth = cfg.reservation_delay_depth;
    for req in requests {
        if base.idle_at(now) < req.extra_cores {
            continue; // rejected: no resources
        }
        expanded.assign_from(&base);
        expanded.hold_for(now, req.remaining_walltime, req.extra_cores);
        if before_plan.is_none() {
            scratch.assign_from(&base);
            before_plan = Some(opt_plan(&mut scratch, &ranked, depth, now));
        }
        let before = before_plan.as_deref().expect("just ensured");
        scratch.assign_from(&expanded);
        let after = opt_plan(&mut scratch, &ranked, depth, now);
        for &(job, start) in before {
            let d = match after.iter().find(|&&(a, _)| a == job) {
                Some(&(_, s)) => s.duration_since(start),
                None => jobs_by_id[&job].walltime,
            };
            black_box(jobs_by_id[&job].user);
            delay_ms += d.as_millis();
        }
        base.assign_from(&expanded);
        before_plan = Some(after);
        grants.push(req.job);
    }

    let mut profile = base;
    let mut starts = Vec::new();
    let mut reservations = Vec::new();
    let mut taken: Vec<JobId> = Vec::new();
    let mut blocked = false;
    for job in &ranked {
        if !blocked {
            if profile.min_idle(now, now.saturating_add(job.walltime)) >= job.cores {
                profile.hold_for(now, job.walltime, job.cores);
                starts.push((job.id, false));
                taken.push(job.id);
                continue;
            }
            blocked = true;
        }
        if reservations.len() < cfg.reservation_depth {
            if let Some(start) = profile.earliest_fit(job.cores, job.walltime, now) {
                if start > now {
                    profile.hold(start, start.saturating_add(job.walltime), job.cores);
                    reservations.push((job.id, start));
                    taken.push(job.id);
                }
            }
        }
    }
    for job in &ranked {
        if taken.contains(&job.id) {
            continue;
        }
        if profile.min_idle(now, now.saturating_add(job.walltime)) >= job.cores {
            profile.hold_for(now, job.walltime, job.cores);
            starts.push((job.id, true));
            taken.push(job.id);
        }
    }
    KernelOut {
        starts,
        reservations,
        grants,
        delay_ms,
    }
}

fn time_ms<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn run_esp_config(label: &str, cap: Option<u64>, dynamic: bool, seed: u64) -> Json {
    let mut reg = CredRegistry::new();
    let mut wl_cfg = if dynamic {
        EspConfig::paper_dynamic()
    } else {
        EspConfig::paper_static()
    };
    wl_cfg.seed = seed;
    let wl = generate_esp(&wl_cfg, &mut reg);
    let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), table2_sched(cap));
    sim.load(&wl);
    let t0 = Instant::now();
    sim.run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = sim.stats();
    assert!(sim.server().is_drained(), "{label}: run did not drain");
    Json::obj(vec![
        ("config", Json::Str(label.to_owned())),
        (
            "jobs",
            Json::UInt(sim.server().accounting().outcomes().len() as u64),
        ),
        ("wall_ms", Json::Float(wall_ms)),
        ("cycles", Json::UInt(stats.cycles)),
        (
            "mean_iteration_us",
            Json::Float(wall_ms * 1e3 / stats.cycles.max(1) as f64),
        ),
        ("dyn_granted", Json::UInt(stats.dyn_granted)),
        ("dyn_rejected", Json::UInt(stats.dyn_rejected)),
        (
            "makespan_mins",
            Json::Float(
                sim.last_completion()
                    .duration_since(sim.first_submit())
                    .as_mins_f64(),
            ),
        ),
    ])
}

/// The scheduler configuration of one Table-II/sweep column.
fn table2_sched(cap: Option<u64>) -> SchedulerConfig {
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = match cap {
        None => DfsConfig::highest_priority(),
        Some(c) => DfsConfig::uniform_target(c, SimDuration::from_hours(1)),
    };
    cfg
}

/// The per-cell workload of the sweep campaign: a pure function of the
/// cell's configuration and seed (the engine's determinism contract).
fn sweep_workload(cfg: &ExperimentConfig, seed: u64) -> dynbatch_workload::EspStream {
    let mut reg = CredRegistry::new();
    let mut wl_cfg = if cfg.label == "Static" {
        EspConfig::paper_static()
    } else {
        EspConfig::paper_dynamic()
    };
    wl_cfg.seed = seed;
    stream_esp(&wl_cfg, &mut reg)
}

/// One fairness-ensemble column: the sweep workload under a fairshare
/// mode. The synthetic mix is deliberately **skewed** — user 0 owns a
/// third of the submissions (`users: 3` over round-robin assignment ⇒
/// uneven per-user demand once core sizes randomise) — so per-user wait
/// spread has something to measure.
fn fairness_sched(mode: FairshareMode) -> SchedulerConfig {
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
    // Give the fairshare delta real weight in both arms (the default is
    // 0.0 — pure FIFO — under which the two modes are indistinguishable):
    // a full share deviation is worth ~an hour of queueing.
    cfg.priority.fairshare_weight = 60.0;
    cfg.fairshare.enabled = true;
    cfg.fairshare.mode = mode;
    cfg.fairshare.half_life = SimDuration::from_hours(6);
    cfg.fairshare.default_target = 1.0 / 6.0;
    if mode == FairshareMode::TimeAware {
        cfg.fairshare.user_budget_core_hours = Some(60.0);
    }
    cfg
}

fn fairness_workload(cfg: &ExperimentConfig, seed: u64) -> dynbatch_workload::SyntheticStream {
    let _ = cfg;
    let mut reg = CredRegistry::new();
    let wl = SyntheticConfig {
        seed,
        jobs: 80,
        users: 6,
        total_cores: 120,
        mean_interarrival: SimDuration::from_secs(25),
        runtime_secs: (60, 900),
        cores: (1, 12),
        evolving_fraction: 0.3,
        extra_cores: 4,
        det_factor: 0.7,
    };
    stream_synthetic(&wl, &mut reg)
}

/// The fairness headline: the spread (max − min) of per-user p95 waiting
/// times, seconds — 0 when every user experiences the same tail latency.
fn p95_wait_spread_s(outcomes: &[JobOutcome]) -> f64 {
    let mut by_user: HashMap<u32, Vec<f64>> = HashMap::new();
    for o in outcomes {
        by_user
            .entry(o.user.0)
            .or_default()
            .push(o.wait().as_secs_f64());
    }
    let p95s: Vec<f64> = by_user.values().map(|w| quantile(w, 0.95)).collect();
    let max = p95s.iter().copied().fold(f64::MIN, f64::max);
    let min = p95s.iter().copied().fold(f64::MAX, f64::min);
    if p95s.is_empty() {
        0.0
    } else {
        max - min
    }
}

fn aggregate_json(a: &Aggregate) -> Json {
    Json::obj(vec![
        ("mean", Json::Float(a.mean)),
        ("stddev", Json::Float(a.stddev)),
        ("p50", Json::Float(a.p50)),
        ("p95", Json::Float(a.p95)),
        ("p99", Json::Float(a.p99)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("DYNBATCH_QUICK").is_ok_and(|v| v == "1");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sched.json".to_owned());
    let out_sweep_path = args
        .iter()
        .position(|a| a == "--out-sweep")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sweep.json".to_owned());

    let (nodes, jobs, reps) = if quick { (40, 600, 3) } else { (150, 2300, 10) };
    // Deep-lookahead stress configuration for the scaled measurements: at
    // 10× the paper's testbed the site would plan correspondingly deeper,
    // and depth is exactly what the cached what-if planning amortises.
    // Identical on both sides of every comparison.
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.reservation_depth = 20;
    cfg.reservation_delay_depth = 20;

    // 1. Scaled planning kernel: pre-change vs optimised, decisions equal.
    eprintln!("perf_smoke: scaled kernel ({nodes} nodes, {jobs} jobs, {reps} reps)");
    let snap = scaled_snapshot(nodes, jobs, 42);
    let ranked: Vec<QueuedJob> = {
        let mut v = snap.queued.clone();
        rank_jobs(&mut v, snap.now, &cfg.priority, FairnessView::None);
        v
    };
    let (naive_ms, naive_out) = time_ms(reps, || naive_kernel(&snap, &ranked, &cfg));
    let (opt_ms, opt_out) = time_ms(reps, || opt_kernel(&snap, &ranked, &cfg));
    assert_eq!(
        naive_out, opt_out,
        "kernel decisions diverged — timing is meaningless"
    );
    let kernel_speedup = naive_ms / opt_ms;
    eprintln!("  naive {naive_ms:.2} ms  optimized {opt_ms:.2} ms  speedup {kernel_speedup:.1}x");

    // 2. Full Maui::iterate on the scaled snapshot, cache on vs off.
    let iterate = |cache: bool| {
        let mut m = Maui::new(cfg.clone());
        m.set_plan_cache_enabled(cache);
        m.iterate(&snap)
    };
    let (uncached_ms, out_u) = time_ms(reps, || iterate(false));
    let (cached_ms, out_c) = time_ms(reps, || iterate(true));
    assert_eq!(out_u.starts, out_c.starts);
    assert_eq!(out_u.dyn_decisions, out_c.dyn_decisions);
    assert_eq!(out_u.reservations, out_c.reservations);
    eprintln!(
        "  iterate uncached {uncached_ms:.2} ms  cached {cached_ms:.2} ms  ({:.1}x)",
        uncached_ms / cached_ms
    );

    // 3. Incremental timeline: a multi-tick delta-carrying snapshot
    // sequence through a delta-fed Maui and a rebuild-every-iteration
    // Maui. Correctness first (decisions asserted identical per tick,
    // rebuild-equivalence guard enabled), then timing with the guard off.
    let ticks = if quick { 40 } else { 150 };
    eprintln!("perf_smoke: incremental timeline ({ticks} ticks)");
    let seq_snaps = tick_sequence(nodes, jobs, 43, ticks);
    {
        let mut m_inc = Maui::new(cfg.clone());
        m_inc.set_incremental_check_enabled(true);
        let mut m_reb = Maui::new(cfg.clone());
        m_reb.set_incremental_enabled(false);
        for (i, s) in seq_snaps.iter().enumerate() {
            let a = m_inc.iterate(s);
            let b = m_reb.iterate(s);
            assert_eq!(a.starts, b.starts, "tick {i}: starts diverged");
            assert_eq!(
                a.dyn_decisions, b.dyn_decisions,
                "tick {i}: dynamic decisions diverged"
            );
            assert_eq!(
                a.reservations, b.reservations,
                "tick {i}: reservations diverged"
            );
            assert_eq!(a.grows, b.grows, "tick {i}: grows diverged");
        }
        let st = m_inc.timeline_stats();
        assert_eq!(st.rebuilds, 1, "only the first tick may rebuild");
        assert_eq!(st.delta_batches as usize, ticks - 1);
    }
    // Maintenance alone: applying each tick's deltas (plus re-anchoring)
    // vs rebuilding the base profile from the running set — the edit this
    // section exists to measure.
    let (reb_profile_ms, _) = time_ms(reps, || {
        let mut buf = AvailabilityProfile::new(SimTime::ZERO, 0);
        for s in &seq_snaps {
            rebuild_into(&mut buf, s.now, s.total_cores, &s.running);
            black_box(buf.steps().len());
        }
    });
    let (inc_profile_ms, _) = time_ms(reps, || {
        let mut tl = IncrementalTimeline::new();
        for s in &seq_snaps {
            tl.advance(s);
            black_box(tl.profile().steps().len());
        }
    });
    let maintenance_speedup = reb_profile_ms / inc_profile_ms;
    // End to end: the full iterate sequence both ways. Planning dominates
    // each iteration, so the headline here is the maintenance speedup;
    // this pins "incremental is never slower overall".
    let run_seq = |incremental: bool| {
        let mut m = Maui::new(cfg.clone());
        m.set_incremental_enabled(incremental);
        let mut n = 0usize;
        for s in &seq_snaps {
            n += black_box(m.iterate(s)).starts.len();
        }
        n
    };
    let it_reps = reps.min(3);
    let (it_reb_ms, _) = time_ms(it_reps, || run_seq(false));
    let (it_inc_ms, _) = time_ms(it_reps, || run_seq(true));
    eprintln!(
        "  profile rebuild {reb_profile_ms:.2} ms  incremental {inc_profile_ms:.2} ms  \
         ({maintenance_speedup:.1}x); iterate {it_reb_ms:.2} -> {it_inc_ms:.2} ms"
    );

    // 3b. Sharded scheduler: the same delta-carrying tick sequence
    // through the partitioned-timeline planner at shard counts
    // {1, 2, 4, 8}. Correctness first: every shard count must reproduce
    // the serial decisions byte for byte, with the threaded rounds forced
    // on (two pinned workers) so even a single-core CI host exercises the
    // speculative evaluate/commit path. Timing second: the worker count
    // is left on auto (host parallelism), the honest deployment setting.
    // Quick mode inherits the shrunken (nodes, jobs, ticks) above.
    eprintln!("perf_smoke: sharded kernel (shards 1/2/4/8, {ticks} ticks)");
    let run_shards = |shards: usize, workers: usize| {
        let mut shard_cfg = cfg.clone();
        shard_cfg.shards = shards;
        let mut m = Maui::new(shard_cfg);
        m.set_shard_workers(workers);
        let mut outs = Vec::with_capacity(seq_snaps.len());
        for s in &seq_snaps {
            outs.push(m.iterate(s));
        }
        outs
    };
    let serial_outs = run_shards(1, 1);
    for shards in [2usize, 4, 8] {
        let outs = run_shards(shards, 2);
        for (i, (a, b)) in serial_outs.iter().zip(&outs).enumerate() {
            assert_eq!(
                a.starts, b.starts,
                "shards={shards} tick {i}: starts diverged"
            );
            assert_eq!(
                a.dyn_decisions, b.dyn_decisions,
                "shards={shards} tick {i}: dynamic decisions diverged"
            );
            assert_eq!(
                a.reservations, b.reservations,
                "shards={shards} tick {i}: reservations diverged"
            );
            assert_eq!(a.grows, b.grows, "shards={shards} tick {i}: grows diverged");
        }
    }
    let mut shard_rows = Vec::new();
    let mut serial_shard_ms = f64::NAN;
    let mut sharded_speedup_4 = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let (ms, outs) = time_ms(it_reps, || run_shards(shards, 0));
        black_box(outs.len());
        if shards == 1 {
            serial_shard_ms = ms;
        }
        let speedup = serial_shard_ms / ms;
        if shards == 4 {
            sharded_speedup_4 = speedup;
        }
        eprintln!("  shards {shards}  {ms:.2} ms  ({speedup:.2}x vs serial)");
        shard_rows.push(Json::obj(vec![
            ("shards", Json::UInt(shards as u64)),
            ("wall_ms", Json::Float(ms)),
            ("speedup_vs_serial", Json::Float(speedup)),
        ]));
    }
    let cores = worker_count(0);
    // The ≥2x bar only applies where there are cores to scale onto and at
    // the full workload size; the byte-equality asserts above always run.
    let shard_gate_enforced = !quick && cores >= 4;
    let shard_gate = if shard_gate_enforced {
        "enforced".to_owned()
    } else {
        format!("skipped ({cores} cores, quick={quick})")
    };

    // 4. Table II end-to-end sweep. Quick mode keeps the two extreme
    // columns (Static, Dyn-HP) rather than all four.
    let esp_seed = 2014;
    let all_configs: &[(&str, Option<u64>, bool)] = &[
        ("Static", None, false),
        ("Dyn-HP", None, true),
        ("Dyn-500", Some(500), true),
        ("Dyn-100", Some(100), true),
    ];
    let configs = if quick {
        &all_configs[..2]
    } else {
        all_configs
    };
    let mut esp = Vec::new();
    for &(label, cap, dynamic) in configs {
        let row = run_esp_config(label, cap, dynamic, esp_seed);
        eprintln!(
            "  {label:<8} wall {:>8.1} ms  cycles {:>5}",
            row.req("wall_ms").unwrap().as_f64().unwrap(),
            row.req("cycles").unwrap().as_u64().unwrap(),
        );
        esp.push(row);
    }

    // 5. Journal overhead: the Dyn-HP ESP run with the write-ahead
    // journal off vs on (compacting snapshot every 64 records). The two
    // runs must agree on the outcome count — journaling is observation,
    // not policy — and durability must stay in the noise: the journaled
    // run is asserted within 10 % of the baseline (plus a small floor so
    // a sub-millisecond quick run can't fail on timer jitter).
    eprintln!("perf_smoke: journal overhead (Dyn-HP ESP, journal off vs on)");
    let journal_wl = {
        let mut reg = CredRegistry::new();
        let mut wl_cfg = EspConfig::paper_dynamic();
        wl_cfg.seed = esp_seed;
        generate_esp(&wl_cfg, &mut reg)
    };
    let journal_run = |journal: bool| {
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), table2_sched(None));
        if journal {
            sim.enable_journal(64);
        }
        sim.load(&journal_wl);
        sim.run();
        assert!(sim.server().is_drained(), "journal section: run must drain");
        let jobs = sim.server().accounting().outcomes().len();
        let records = sim.server().journal().map_or(0, |j| j.total_appended());
        (jobs, records)
    };
    let (base_ms, (base_jobs, _)) = time_ms(reps, || journal_run(false));
    let (journal_ms, (journal_jobs, journal_records)) = time_ms(reps, || journal_run(true));
    assert_eq!(
        base_jobs, journal_jobs,
        "journaling changed the outcome count — it must be pure observation"
    );
    let journal_overhead_pct = (journal_ms - base_ms) / base_ms * 100.0;
    let append_us_per_job = ((journal_ms - base_ms) * 1e3 / base_jobs.max(1) as f64).max(0.0);
    eprintln!(
        "  baseline {base_ms:.2} ms  journaled {journal_ms:.2} ms  \
         ({journal_overhead_pct:+.1}%, {append_us_per_job:.2} us/job, \
         {journal_records} records)"
    );
    assert!(
        journal_ms <= base_ms * 1.10 + 2.0,
        "journal append overhead regressed past the 10% bound: \
         {journal_ms:.2} ms vs baseline {base_ms:.2} ms"
    );

    // 5b. Replication: the same Dyn-HP ESP run (same journal config) with
    // the journal streamed to two hot followers. Before any number is
    // trusted, the replicated leader's end digest is asserted
    // byte-identical to the journal-only run — streaming is observation,
    // not policy — and every follower must converge to that digest
    // (checked outside the timed region: convergence is a correctness
    // barrier, not hot-path work). The hot-path bound: the leader's run
    // with journal + streaming stays within 15 % of journal-only (same
    // jitter floor as the journal gate). Followers apply every record on
    // their own threads, so the 15 % bound is only physical when the box
    // has cores for them to run on — with `cores > followers` it is
    // enforced as-is; on smaller boxes the follower apply work has
    // nowhere to overlap and serialises into the leader's wall clock, so
    // the gate degrades to the serialized-ensemble bound (leader + every
    // follower's apply, each within the same 15 %). Perf posture mirrors
    // a group-commit deployment: the stream pumps every 16 event steps,
    // watermark polls batch every 64 pumps, and rolling-digest frames are
    // off (each serialises the full image); `converge()` still
    // byte-compares every follower against the leader at the end. Also
    // measured: worst append→apply lag, sustained follower-read
    // throughput from racing client threads, and the wall-clock cost of
    // a failover through to the promoted leader's first scheduling
    // decision.
    eprintln!("perf_smoke: replication (Dyn-HP ESP, journal-only vs journal+2 followers)");
    let repl_followers = 2u32;
    let journal_digest = {
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), table2_sched(None));
        sim.enable_journal(64);
        sim.load(&journal_wl);
        sim.run();
        sim.server().state_digest()
    };
    let mut repl_ms = f64::INFINITY;
    let mut repl_kept = None;
    for _ in 0..reps {
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), table2_sched(None));
        sim.enable_journal(64);
        sim.load(&journal_wl);
        let mut rs = dynbatch_sim::ReplicatedSim::new(
            sim,
            repl_followers,
            dynbatch_server::replication::HubConfig {
                digest_every: 0,
                ack_every: 64,
                ..Default::default()
            },
        );
        rs.set_pump_stride(16);
        let t_run = Instant::now();
        rs.run();
        repl_ms = repl_ms.min(t_run.elapsed().as_secs_f64() * 1e3);
        rs.converge()
            .expect("followers converge to the leader digest");
        if let Some(prev) = repl_kept.replace(rs) {
            dynbatch_sim::ReplicatedSim::shutdown(prev);
        }
    }
    let mut repl_rs = repl_kept.expect("at least one rep ran");
    let repl_stats = repl_rs.stats();
    assert_eq!(
        repl_rs.sim().server().state_digest(),
        journal_digest,
        "streaming must not perturb the leader (replication-off byte-identity)"
    );
    let repl_overhead_pct = (repl_ms - journal_ms) / journal_ms * 100.0;
    let repl_parallel = cores > repl_followers as usize;
    let repl_gate = if repl_parallel {
        "parallel"
    } else {
        "serialized"
    };
    let repl_budget_ms = if repl_parallel {
        journal_ms * 1.15 + 2.0
    } else {
        journal_ms * (1.0 + repl_followers as f64) * 1.15 + 2.0
    };
    eprintln!(
        "  journal-only {journal_ms:.2} ms  replicated {repl_ms:.2} ms \
         ({repl_overhead_pct:+.1}%, max lag {} records, {repl_gate} gate \
         on {cores} cores: budget {repl_budget_ms:.2} ms)",
        repl_stats.max_lag
    );
    assert!(
        repl_ms <= repl_budget_ms,
        "journal+streaming overhead regressed past the 15% {repl_gate} bound: \
         {repl_ms:.2} ms vs budget {repl_budget_ms:.2} ms \
         (journal-only {journal_ms:.2} ms)"
    );

    // Follower-read throughput: client threads hammer the replicas
    // directly (the daemon's qstat offload path) while the leader idles.
    let read_threads = 4usize;
    let reads_per_thread: usize = if quick { 2_000 } else { 20_000 };
    let repl_jobs = repl_rs.sim().server().accounting().outcomes().len() as u64;
    let readers: Vec<_> = (0..read_threads)
        .map(|i| {
            repl_rs
                .hub()
                .reader(i % repl_followers as usize)
                .expect("live follower")
        })
        .collect();
    let t0 = Instant::now();
    thread::scope(|scope| {
        for (i, reader) in readers.into_iter().enumerate() {
            scope.spawn(move || {
                for k in 0..reads_per_thread {
                    let id = JobId(
                        1 + (k as u64)
                            .wrapping_mul(2_654_435_761)
                            .wrapping_add(i as u64)
                            % repl_jobs.max(1),
                    );
                    let read = reader.read(id).expect("follower answers reads");
                    assert!(read.watermark > 0, "replica reads echo their watermark");
                }
            });
        }
    });
    let follower_reads_per_sec =
        (read_threads * reads_per_thread) as f64 / t0.elapsed().as_secs_f64();
    eprintln!(
        "  follower reads {follower_reads_per_sec:>9.0}/s ({read_threads} threads x {reads_per_thread})"
    );

    // Failover-to-first-decision: kill the (converged) leader, promote,
    // re-journal, and run one scheduling cycle on the promoted state.
    let repl_appended = repl_stats.leader_appended;
    let repl_now = repl_rs.sim().now();
    let t0 = Instant::now();
    let (mut promoted, failover_report) = repl_rs
        .hub()
        .fail_over(repl_appended, repl_appended)
        .expect("a converged follower promotes");
    promoted.enable_journal(64);
    let mut promoted_maui = Maui::new(table2_sched(None));
    let outcome = promoted_maui.iterate(&promoted.snapshot(repl_now));
    promoted.apply(&outcome, repl_now);
    let failover_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        failover_report.lost_records, 0,
        "a converged ensemble loses nothing at failover"
    );
    eprintln!(
        "  failover-to-first-decision {failover_ms:.2} ms (promoted {})",
        failover_report.promoted
    );
    repl_rs.shutdown();

    // 7. Command reactor: sustained submissions/sec through the reactor
    // front-end, group-commit acks (replies flushed once per admission
    // batch, after every record of the batch is journaled) vs per-command
    // acks. The journal append precedes the reply in both modes — the
    // ack-on-append contract — so the contrast isolates ack batching.
    let reactor_clients = 8usize;
    let reactor_subs: usize = if quick { 2_000 } else { 20_000 };
    eprintln!(
        "perf_smoke: command reactor ({reactor_clients} clients, {reactor_subs} submissions)"
    );
    let reactor_run = |group_commit: bool| -> (f64, u64) {
        let mut reactor = Reactor::new();
        reactor.set_ack_each(!group_commit);
        // Clients pipeline their whole share before reading replies;
        // size the reply channels so the slow-reader path never engages.
        reactor.set_reply_capacity(reactor_subs / reactor_clients + 2);
        let clients: Vec<_> = (0..reactor_clients).map(|_| reactor.connect()).collect();
        let mut server = PbsServer::new(Cluster::homogeneous(150, 8), AllocPolicy::Pack);
        server.enable_journal(4096);
        let lines: Vec<String> = (0..reactor_subs)
            .map(|i| {
                format!(
                    "qsub name=s{i} user={} group=0 cores=1 wall_ms=60000",
                    i % 32
                )
            })
            .collect();
        let t0 = Instant::now();
        thread::scope(|scope| {
            for (c, client) in clients.into_iter().enumerate() {
                let lines = &lines;
                scope.spawn(move || {
                    let mine: Vec<&String> =
                        lines.iter().skip(c).step_by(reactor_clients).collect();
                    for l in &mine {
                        client.send(l);
                    }
                    for _ in &mine {
                        client.recv().expect("reactor dropped before acking");
                    }
                });
            }
            let mut applied = 0usize;
            while applied < reactor_subs {
                let n =
                    reactor.poll_with(|_, cmd| apply_to_server(&mut server, cmd, SimTime::ZERO));
                applied += n;
                if n == 0 {
                    thread::yield_now();
                }
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let stats = reactor.stats();
        assert_eq!(stats.applied as usize, reactor_subs);
        assert_eq!(stats.denied_parse, 0, "generated qsub lines must all parse");
        assert!(
            server.journal().map_or(0, |j| j.total_appended()) >= reactor_subs as u64,
            "every acked submission must have a journal record"
        );
        (secs, stats.batches)
    };
    let (gc_secs, gc_batches) = reactor_run(true);
    let (ae_secs, ae_batches) = reactor_run(false);
    let gc_rate = reactor_subs as f64 / gc_secs;
    let ae_rate = reactor_subs as f64 / ae_secs;
    eprintln!(
        "  group-commit {gc_rate:>9.0} subs/s ({gc_batches} batches)  \
         ack-each {ae_rate:>9.0} subs/s ({ae_batches} batches)"
    );

    // 9. Streaming ingestion: a month-scale synthetic SWF trace replayed
    // streamed vs materialized under the counting allocator. The trace is
    // written to disk streaming too — it never exists in memory here.
    let ingest_days: usize = if quick { 2 } else { 30 };
    let ingest_jobs = ingest_days * 86_400 / 25; // 25 s mean interarrival
    eprintln!("perf_smoke: streaming ingestion ({ingest_days}-day trace, {ingest_jobs} jobs)");
    let swf_path = std::env::temp_dir().join(format!("dynbatch-ingest-{}.swf", std::process::id()));
    {
        let mut reg = CredRegistry::new();
        let src = dynbatch_workload::stream_synthetic(
            &dynbatch_workload::SyntheticConfig {
                seed: 20_140_808,
                jobs: ingest_jobs,
                users: 32,
                total_cores: 120,
                mean_interarrival: SimDuration::from_secs(25),
                runtime_secs: (60, 1800),
                cores: (1, 8),
                evolving_fraction: 0.0, // the evolving conversion happens at parse time
                extra_cores: 4,
                det_factor: 0.7,
            },
            &mut reg,
        );
        let file = std::fs::File::create(&swf_path).expect("create trace file");
        let mut out = std::io::BufWriter::new(file);
        let written = dynbatch_workload::write_swf_to(&mut out, src, 8).expect("write trace");
        std::io::Write::flush(&mut out).expect("flush trace");
        assert_eq!(written, ingest_jobs);
    }
    let swf_cfg = dynbatch_workload::SwfConfig {
        evolving_fraction: 0.1,
        seed: 77,
        ..Default::default()
    };
    let ingest_cfg = ExperimentConfig::paper_cluster("ingest", table2_sched(None));
    let ingest_window_hours = 6u64;
    let ingest_opts = dynbatch_sim::IngestOptions {
        window: SimDuration::from_hours(ingest_window_hours),
        low_memory: true,
        fingerprint: true,
    };

    // Streamed replay: file → BufRead → lazy admission. Peak allocation
    // above the entry level is the number under test.
    let t0 = Instant::now();
    let stream_base = alloc_meter::reset_peak();
    let (stream_result, stream_peak) = {
        let file = std::fs::File::open(&swf_path).expect("open trace");
        let reader = std::io::BufReader::new(file);
        let mut src = dynbatch_workload::SwfSource::with_own_registry(reader, swf_cfg.clone());
        let result = dynbatch_sim::run_experiment_streamed(&ingest_cfg, &mut src, &ingest_opts);
        assert!(src.error().is_none(), "generated trace parses cleanly");
        assert_eq!(src.emitted(), ingest_jobs);
        let peak = alloc_meter::peak_bytes().saturating_sub(stream_base);
        (result, peak)
    };
    let stream_secs = t0.elapsed().as_secs_f64();

    // Materialized replay: slurp + parse + eager load, identical
    // retention mode so the comparison isolates the ingestion pipeline.
    let t0 = Instant::now();
    let mat_base = alloc_meter::reset_peak();
    let (mat_result, mat_peak) = {
        let text = std::fs::read_to_string(&swf_path).expect("read trace");
        let mut reg = CredRegistry::new();
        let items = dynbatch_workload::parse_swf(&text, &swf_cfg, &mut reg).expect("trace parses");
        assert_eq!(items.len(), ingest_jobs);
        let result = dynbatch_sim::run_experiment_materialized(&ingest_cfg, &items, &ingest_opts);
        let peak = alloc_meter::peak_bytes().saturating_sub(mat_base);
        (result, peak)
    };
    let mat_secs = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&swf_path);

    assert_eq!(
        stream_result.fingerprint, mat_result.fingerprint,
        "streamed vs materialized ingestion diverged in end state"
    );
    assert_eq!(stream_result.summary, mat_result.summary);
    assert_eq!(stream_result.stats, mat_result.stats);
    let ingest_ratio = mat_peak as f64 / stream_peak.max(1) as f64;
    eprintln!(
        "  streamed {:>7.1} MiB peak  materialized {:>7.1} MiB peak  ({ingest_ratio:.1}x less, \
         {} jobs completed)",
        stream_peak as f64 / (1u64 << 20) as f64,
        mat_peak as f64 / (1u64 << 20) as f64,
        stream_result.summary.jobs_completed
    );
    if !quick {
        assert!(
            ingest_ratio >= 10.0,
            "streaming ingestion peak-memory advantage regressed below 10x: {ingest_ratio:.2}x"
        );
    }

    // 8. Fairness ensemble: the same skewed synthetic campaign under the
    // classic windowed fairshare (Static) and the decayed resource-hour
    // mode (TimeAware), per-seed per-user p95 wait spread + Jain's index
    // over user mean waits, aggregated across the seed ensemble.
    let fair_seed_count: usize = if quick { 8 } else { 256 };
    let fair_seeds: Vec<u64> = (0..fair_seed_count).map(|i| 7_000 + i as u64).collect();
    eprintln!(
        "perf_smoke: fairness ensemble ({} seeds x static/time-aware)",
        fair_seeds.len()
    );
    let fair_cfgs = vec![
        ExperimentConfig::paper_cluster("static", fairness_sched(FairshareMode::Static)),
        ExperimentConfig::paper_cluster("time-aware", fairness_sched(FairshareMode::TimeAware)),
    ];
    let fair_cells = run_sweep(&fair_cfgs, &fair_seeds, 0, fairness_workload);
    let fairness_modes: Vec<Json> = fair_cfgs
        .iter()
        .enumerate()
        .map(|(ci, cfg)| {
            let mut spreads = Vec::new();
            let mut jains = Vec::new();
            for cell in fair_cells.iter().filter(|c| c.config == ci) {
                spreads.push(p95_wait_spread_s(&cell.result.outcomes));
                jains.push(user_wait_fairness(&cell.result.outcomes));
            }
            let spread = dynbatch_metrics::aggregate(&spreads);
            let jain = dynbatch_metrics::aggregate(&jains);
            eprintln!(
                "  {:<11} p95-wait spread mean {:>7.1} s  jain mean {:.4}",
                cfg.label, spread.mean, jain.mean
            );
            Json::obj(vec![
                ("mode", Json::Str(cfg.label.clone())),
                ("p95_wait_spread_s", aggregate_json(&spread)),
                ("jain_user_mean_wait", aggregate_json(&jain)),
            ])
        })
        .collect();
    let fairness_json = Json::obj(vec![
        ("seeds", Json::UInt(fair_seeds.len() as u64)),
        (
            "workload",
            Json::Str("synthetic 80 jobs / 6 users / 120 cores".into()),
        ),
        (
            "headline",
            Json::Str("per-user p95 wait spread, seconds".into()),
        ),
        ("modes", Json::Arr(fairness_modes)),
    ]);

    let report = Json::obj(vec![
        ("version", Json::UInt(1)),
        ("quick", Json::Bool(quick)),
        (
            "scaled_kernel",
            Json::obj(vec![
                ("nodes", Json::UInt(nodes as u64)),
                ("cores", Json::UInt(nodes as u64 * 8)),
                ("jobs", Json::UInt(jobs as u64)),
                ("reps", Json::UInt(reps as u64)),
                ("naive_ms", Json::Float(naive_ms)),
                ("optimized_ms", Json::Float(opt_ms)),
                ("speedup", Json::Float(kernel_speedup)),
                ("identical_decisions", Json::Bool(true)),
            ]),
        ),
        (
            "scaled_iteration",
            Json::obj(vec![
                ("uncached_ms", Json::Float(uncached_ms)),
                ("cached_ms", Json::Float(cached_ms)),
                ("speedup", Json::Float(uncached_ms / cached_ms)),
                ("identical_decisions", Json::Bool(true)),
            ]),
        ),
        (
            "incremental_timeline",
            Json::obj(vec![
                ("ticks", Json::UInt(ticks as u64)),
                ("profile_rebuild_ms", Json::Float(reb_profile_ms)),
                ("profile_incremental_ms", Json::Float(inc_profile_ms)),
                ("maintenance_speedup", Json::Float(maintenance_speedup)),
                ("iterate_rebuild_ms", Json::Float(it_reb_ms)),
                ("iterate_incremental_ms", Json::Float(it_inc_ms)),
                ("iterate_speedup", Json::Float(it_reb_ms / it_inc_ms)),
                ("identical_decisions", Json::Bool(true)),
            ]),
        ),
        (
            "sharded_kernel",
            Json::obj(vec![
                ("nodes", Json::UInt(nodes as u64)),
                ("jobs", Json::UInt(jobs as u64)),
                ("ticks", Json::UInt(ticks as u64)),
                ("available_parallelism", Json::UInt(cores as u64)),
                ("identical_decisions", Json::Bool(true)),
                ("per_shard_count", Json::Arr(shard_rows)),
                ("speedup_at_4_shards", Json::Float(sharded_speedup_4)),
                ("gate_2x_at_4_shards", Json::Str(shard_gate.clone())),
            ]),
        ),
        ("esp_table2", Json::Arr(esp)),
        (
            "reactor",
            Json::obj(vec![
                ("clients", Json::UInt(reactor_clients as u64)),
                ("submissions", Json::UInt(reactor_subs as u64)),
                (
                    "group_commit",
                    Json::obj(vec![
                        ("wall_secs", Json::Float(gc_secs)),
                        ("subs_per_sec", Json::Float(gc_rate)),
                        ("batches", Json::UInt(gc_batches)),
                    ]),
                ),
                (
                    "ack_each",
                    Json::obj(vec![
                        ("wall_secs", Json::Float(ae_secs)),
                        ("subs_per_sec", Json::Float(ae_rate)),
                        ("batches", Json::UInt(ae_batches)),
                    ]),
                ),
                ("group_commit_speedup", Json::Float(ae_secs / gc_secs)),
            ]),
        ),
        (
            "journal",
            Json::obj(vec![
                ("jobs", Json::UInt(base_jobs as u64)),
                ("records", Json::UInt(journal_records)),
                ("snapshot_every", Json::UInt(64)),
                ("baseline_ms", Json::Float(base_ms)),
                ("journaled_ms", Json::Float(journal_ms)),
                ("overhead_pct", Json::Float(journal_overhead_pct)),
                ("append_us_per_job", Json::Float(append_us_per_job)),
            ]),
        ),
        (
            "replication",
            Json::obj(vec![
                ("followers", Json::UInt(u64::from(repl_followers))),
                ("journal_only_ms", Json::Float(journal_ms)),
                ("replicated_ms", Json::Float(repl_ms)),
                ("overhead_pct", Json::Float(repl_overhead_pct)),
                ("gate", Json::Str(repl_gate.to_owned())),
                ("gate_budget_ms", Json::Float(repl_budget_ms)),
                (
                    "max_append_apply_lag_records",
                    Json::UInt(repl_stats.max_lag),
                ),
                ("leader_records", Json::UInt(repl_stats.leader_appended)),
                (
                    "follower_reads_per_sec",
                    Json::Float(follower_reads_per_sec),
                ),
                ("failover_to_first_decision_ms", Json::Float(failover_ms)),
                // Set only after the digest asserts above — false is
                // unrepresentable in an emitted report.
                ("leader_digest_identical", Json::Bool(true)),
            ]),
        ),
        (
            "ingest",
            Json::obj(vec![
                ("trace_days", Json::UInt(ingest_days as u64)),
                ("trace_jobs", Json::UInt(ingest_jobs as u64)),
                ("lookahead_hours", Json::UInt(ingest_window_hours)),
                (
                    "streamed",
                    Json::obj(vec![
                        ("peak_alloc_bytes", Json::UInt(stream_peak as u64)),
                        ("wall_secs", Json::Float(stream_secs)),
                    ]),
                ),
                (
                    "materialized",
                    Json::obj(vec![
                        ("peak_alloc_bytes", Json::UInt(mat_peak as u64)),
                        ("wall_secs", Json::Float(mat_secs)),
                    ]),
                ),
                ("peak_reduction", Json::Float(ingest_ratio)),
                // Set only after the fingerprint/summary/stats asserts
                // above — false is unrepresentable in an emitted report.
                ("identical_results", Json::Bool(true)),
            ]),
        ),
        ("fairness", fairness_json),
    ]);
    std::fs::write(&out_path, report.to_string_pretty()).expect("write report");
    eprintln!("perf_smoke: wrote {out_path}");

    // 6. Sweep engine: the same (config × seed) ESP campaign serially and
    // in parallel at two worker counts, per-seed summaries asserted equal.
    let (sweep_seed_count, sweep_configs) = if quick { (8, 2) } else { (256, 4) };
    let seeds: Vec<u64> = (0..sweep_seed_count).map(|i| 2014 + i as u64).collect();
    let sweep_cfgs: Vec<ExperimentConfig> = all_configs[..sweep_configs]
        .iter()
        .map(|&(label, cap, _)| ExperimentConfig {
            label: label.to_owned(),
            nodes: 15,
            cores_per_node: 8,
            sched: table2_sched(cap),
        })
        .collect();
    let total_runs = sweep_cfgs.len() * seeds.len();
    eprintln!(
        "perf_smoke: sweep engine ({} configs x {} seeds = {total_runs} runs)",
        sweep_cfgs.len(),
        seeds.len()
    );

    // Serial baseline: a fresh simulator per run, in task-id order —
    // exactly what the engine must reproduce bit for bit.
    let t0 = Instant::now();
    let mut serial: Vec<RunSummary> = Vec::with_capacity(total_runs);
    for cfg in &sweep_cfgs {
        for &seed in &seeds {
            let wl: Vec<WorkloadItem> = sweep_workload(cfg, seed).collect();
            serial.push(run_experiment(cfg, &wl).summary);
        }
    }
    let serial_secs = t0.elapsed().as_secs_f64();

    // The two worker counts: `--workers N` pins the first and is recorded
    // as the requested value; absent, both derive from the host's core
    // count and the request is recorded as null. The per-seed summaries
    // are asserted identical to serial either way, so only the clearly
    // labeled effective/timing fields may vary across hosts.
    let workers_requested: Option<usize> = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1);
    let w_a = workers_requested.unwrap_or_else(|| worker_count(0)).max(2);
    let w_b = if w_a > 2 { w_a / 2 } else { w_a + 1 };
    let mut parallel_rows = Vec::new();
    let mut best_speedup = 0.0f64;
    for workers in [w_a, w_b] {
        let t0 = Instant::now();
        let cells = run_sweep(&sweep_cfgs, &seeds, workers, sweep_workload);
        let par_secs = t0.elapsed().as_secs_f64();
        assert_eq!(cells.len(), total_runs);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(
                cell.result.summary, serial[i],
                "sweep[{workers} workers] task {i} ({} seed {}) diverged from serial",
                sweep_cfgs[cell.config].label, cell.seed
            );
        }
        let speedup = serial_secs / par_secs;
        best_speedup = best_speedup.max(speedup);
        eprintln!(
            "  {workers:>2} workers  {par_secs:>6.2} s  ({:.0} runs/s, {speedup:.2}x vs serial)",
            total_runs as f64 / par_secs
        );
        parallel_rows.push(Json::obj(vec![
            ("workers_effective", Json::UInt(workers as u64)),
            ("wall_secs", Json::Float(par_secs)),
            ("runs_per_sec", Json::Float(total_runs as f64 / par_secs)),
            ("speedup_vs_serial", Json::Float(speedup)),
            ("summaries_match_serial", Json::Bool(true)),
        ]));
    }

    // Per-config ensemble statistics over the (identical) summaries.
    let ensembles: Vec<Json> = sweep_cfgs
        .iter()
        .enumerate()
        .map(|(ci, cfg)| {
            let runs = &serial[ci * seeds.len()..(ci + 1) * seeds.len()];
            let e = summarize_ensemble(&cfg.label, runs);
            Json::obj(vec![
                ("config", Json::Str(e.label.clone())),
                ("runs", Json::UInt(e.runs as u64)),
                ("makespan_mins", aggregate_json(&e.makespan_mins)),
                ("utilization", aggregate_json(&e.utilization)),
                ("mean_wait_secs", aggregate_json(&e.mean_wait_secs)),
                (
                    "throughput_jobs_per_min",
                    aggregate_json(&e.throughput_jobs_per_min),
                ),
                ("satisfied_dyn_jobs", aggregate_json(&e.satisfied_dyn_jobs)),
            ])
        })
        .collect();

    let sweep_report = Json::obj(vec![
        ("version", Json::UInt(1)),
        ("quick", Json::Bool(quick)),
        ("configs", Json::UInt(sweep_cfgs.len() as u64)),
        ("seeds", Json::UInt(seeds.len() as u64)),
        ("total_runs", Json::UInt(total_runs as u64)),
        (
            "workers_requested",
            workers_requested.map_or(Json::Null, |n| Json::UInt(n as u64)),
        ),
        ("available_parallelism", Json::UInt(worker_count(0) as u64)),
        (
            "serial",
            Json::obj(vec![
                ("wall_secs", Json::Float(serial_secs)),
                ("runs_per_sec", Json::Float(total_runs as f64 / serial_secs)),
            ]),
        ),
        ("parallel", Json::Arr(parallel_rows)),
        ("best_speedup", Json::Float(best_speedup)),
        ("per_config_ensemble", Json::Arr(ensembles)),
    ]);
    std::fs::write(&out_sweep_path, sweep_report.to_string_pretty()).expect("write sweep report");
    eprintln!("perf_smoke: wrote {out_sweep_path}");

    if !quick {
        assert!(
            kernel_speedup >= 5.0,
            "scaled kernel speedup regressed below 5x: {kernel_speedup:.2}x"
        );
        assert!(
            maintenance_speedup >= 2.0,
            "incremental profile maintenance regressed below 2x: {maintenance_speedup:.2}x"
        );
        // The parallel-efficiency bar only applies where there are cores
        // to scale onto; the determinism asserts above always run.
        if worker_count(0) >= 4 {
            assert!(
                best_speedup >= 3.0,
                "sweep engine speedup regressed below 3x on a {}-core host: {best_speedup:.2}x",
                worker_count(0)
            );
        }
    }
    if shard_gate_enforced {
        assert!(
            sharded_speedup_4 >= 2.0,
            "sharded iterate speedup at 4 shards regressed below 2x on a \
             {cores}-core host: {sharded_speedup_4:.2}x"
        );
    }
    println!("kernel_speedup_x {kernel_speedup:.2}");
    println!("sharded_speedup_4x {sharded_speedup_4:.2}");
    println!("sweep_speedup_x {best_speedup:.2}");
}
