//! Regenerates the paper's **Table II**: performance of the four
//! evaluation configurations of the dynamic ESP workload.
//!
//! | paper config | here |
//! |---|---|
//! | Static (F–J never grow)          | `Static`  |
//! | Dynamic highest-priority         | `Dyn-HP`  |
//! | 500 s cumulative delay cap / 1 h | `Dyn-500` |
//! | 600 s cumulative delay cap / 1 h | `Dyn-600` |
//!
//! Because our substrate packs cores with zero fragmentation, measured
//! delays are smaller than on the authors' Torque/Maui testbed and the
//! nominal 500/600 s caps bind only weakly; the scale-adjusted `Dyn-100` /
//! `Dyn-200` rows show the same fairness trade-off at this repository's
//! delay scale (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p dynbatch-bench --bin table2_configs [-- --seeds N]
//! ```
//!
//! With `--seeds N` every configuration is averaged over N submission
//! orders (the paper reports a single run of ESP's fixed order; averaging
//! removes that arbitrary choice).

use dynbatch_core::{CredRegistry, DfsConfig, SchedulerConfig, SimDuration};
use dynbatch_metrics::render_table2;
use dynbatch_sim::{run_experiment, ExperimentConfig};
use dynbatch_workload::{generate_esp, static_core_seconds, EspConfig};

struct Row {
    label: &'static str,
    cap_secs: Option<u64>,
    dynamic_workload: bool,
}

const ROWS: [Row; 6] = [
    Row {
        label: "Static",
        cap_secs: None,
        dynamic_workload: false,
    },
    Row {
        label: "Dyn-HP",
        cap_secs: None,
        dynamic_workload: true,
    },
    Row {
        label: "Dyn-500",
        cap_secs: Some(500),
        dynamic_workload: true,
    },
    Row {
        label: "Dyn-600",
        cap_secs: Some(600),
        dynamic_workload: true,
    },
    Row {
        label: "Dyn-100",
        cap_secs: Some(100),
        dynamic_workload: true,
    },
    Row {
        label: "Dyn-200",
        cap_secs: Some(200),
        dynamic_workload: true,
    },
];

fn sched_for(cap_secs: Option<u64>) -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = match cap_secs {
        None => DfsConfig::highest_priority(),
        Some(c) => DfsConfig::uniform_target(c, SimDuration::from_hours(1)),
    };
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: Vec<u64> = match args.iter().position(|a| a == "--seeds") {
        Some(i) => {
            let n: u64 = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(1);
            (1..=n).collect()
        }
        None => vec![EspConfig::default().seed],
    };

    println!(
        "Table II — dynamic ESP on 15 × 8 cores, ReservationDepth = ReservationDelayDepth = 5"
    );
    println!("(averaged over {} submission-order seed(s))\n", seeds.len());

    let mut summaries = Vec::new();
    let mut extras = Vec::new();
    for row in &ROWS {
        let mut acc: Option<dynbatch_metrics::RunSummary> = None;
        let (mut fair, mut nores) = (0u64, 0u64);
        for &seed in &seeds {
            let mut reg = CredRegistry::new();
            let mut wl_cfg = if row.dynamic_workload {
                EspConfig::paper_dynamic()
            } else {
                EspConfig::paper_static()
            };
            wl_cfg.seed = seed;
            let wl = generate_esp(&wl_cfg, &mut reg);
            let cfg = ExperimentConfig::paper_cluster(row.label, sched_for(row.cap_secs));
            let r = run_experiment(&cfg, &wl);
            fair += r.stats.dyn_rejected_fairness;
            nores += r.stats.dyn_rejected - r.stats.dyn_rejected_fairness;
            acc = Some(match acc {
                None => r.summary,
                Some(mut a) => {
                    // Accumulate for averaging.
                    a.makespan += r.summary.makespan;
                    a.utilization += r.summary.utilization;
                    a.throughput_jobs_per_min += r.summary.throughput_jobs_per_min;
                    a.satisfied_dyn_jobs += r.summary.satisfied_dyn_jobs;
                    a.backfilled_jobs += r.summary.backfilled_jobs;
                    a.mean_wait += r.summary.mean_wait;
                    a.mean_turnaround += r.summary.mean_turnaround;
                    a
                }
            });
        }
        let n = seeds.len() as u64;
        let mut s = acc.expect("at least one seed");
        s.makespan = s.makespan / n;
        s.utilization /= n as f64;
        s.throughput_jobs_per_min /= n as f64;
        s.satisfied_dyn_jobs /= n as usize;
        s.backfilled_jobs /= n as usize;
        s.mean_wait = s.mean_wait / n;
        s.mean_turnaround = s.mean_turnaround / n;
        extras.push((
            row.label,
            fair / n,
            nores / n,
            s.backfilled_jobs,
            s.mean_wait,
        ));
        summaries.push(s);
    }

    print!("{}", render_table2(&summaries));

    // The original ESP metric: efficiency = ideal packing time / makespan.
    let ideal_mins = static_core_seconds(&EspConfig::default()) / 120.0 / 60.0;
    println!("\nESP efficiency (ideal {ideal_mins:.1} min / measured makespan):");
    for s in &summaries {
        println!(
            "  {:<10} {:.3}",
            s.label,
            ideal_mins / s.makespan.as_mins_f64()
        );
    }

    println!("\nDetail (per run averages):");
    println!(
        "{:<10} {:>14} {:>16} {:>12} {:>12}",
        "Config", "fairness-rej", "no-resource-rej", "backfilled", "mean wait"
    );
    for (label, fair, nores, bf, wait) in extras {
        println!("{label:<10} {fair:>14} {nores:>16} {bf:>12} {wait:>12}");
    }

    println!("\nPaper reference (Table II): Static 265.78 min / 77.45 % / 0.86 jobs/min;");
    println!("Dyn-HP 238.78 / 43 sat / 85.02 % / 0.96 (+11.3 %); Dyn-500 248.85 / 20 sat /");
    println!("82.26 % / 0.92 (+6.8 %); Dyn-600 241.06 / 27 sat / 83.57 % / 0.95 (+10.2 %).");
}
