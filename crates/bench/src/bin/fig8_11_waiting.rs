//! Regenerates the paper's **Figs 8–11**: per-job waiting times of the
//! dynamic ESP workload, by submission order.
//!
//! * Fig 8 — Static vs Dynamic-HP (all jobs);
//! * Fig 9 — type-L jobs in all four configurations;
//! * Fig 10 — Static vs Dyn-HP vs Dyn-500;
//! * Fig 11 — Static vs Dyn-HP vs Dyn-600.
//!
//! Prints ASCII plots for a terminal eyeball plus CSV blocks for real
//! plotting. Pass `--csv-only` to suppress the plots.
//!
//! ```text
//! cargo run --release -p dynbatch-bench --bin fig8_11_waiting
//! ```

use dynbatch_core::{CredRegistry, DfsConfig, JobOutcome, SchedulerConfig, SimDuration};
use dynbatch_metrics::{
    ascii_plot, per_user_excess, render_csv, user_wait_fairness, waits_by_submission, waits_of_type,
};
use dynbatch_sim::{run_sweep, ExperimentConfig};
use dynbatch_workload::{stream_esp, EspConfig};

fn config(label: &str, cap: Option<u64>) -> ExperimentConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = match cap {
        None => DfsConfig::highest_priority(),
        Some(c) => DfsConfig::uniform_target(c, SimDuration::from_hours(1)),
    };
    ExperimentConfig::paper_cluster(label, s)
}

fn main() {
    let csv_only = std::env::args().any(|a| a == "--csv-only");

    eprintln!("running Static, Dyn-HP, Dyn-500, Dyn-600 ...");
    // All four configurations run concurrently on the sweep engine; the
    // outputs are identical to four serial `run_experiment` calls.
    let configs = [
        config("Static", None),
        config("Dyn-HP", None),
        config("Dyn-500", Some(500)),
        config("Dyn-600", Some(600)),
    ];
    let seeds = [EspConfig::paper_dynamic().seed];
    let mut cells = run_sweep(&configs, &seeds, 0, |cfg, seed| {
        let mut reg = CredRegistry::new();
        let mut wl_cfg = if cfg.label == "Static" {
            EspConfig::paper_static()
        } else {
            EspConfig::paper_dynamic()
        };
        wl_cfg.seed = seed;
        stream_esp(&wl_cfg, &mut reg)
    })
    .into_iter();
    let mut next = || -> Vec<JobOutcome> {
        cells
            .next()
            .expect("one sweep cell per configuration")
            .result
            .outcomes
    };
    let st = next();
    let hp = next();
    let d500 = next();
    let d600 = next();

    let w_st: Vec<f64> = waits_by_submission(&st)
        .into_iter()
        .map(|(_, w)| w)
        .collect();
    let w_hp: Vec<f64> = waits_by_submission(&hp)
        .into_iter()
        .map(|(_, w)| w)
        .collect();
    let w_500: Vec<f64> = waits_by_submission(&d500)
        .into_iter()
        .map(|(_, w)| w)
        .collect();
    let w_600: Vec<f64> = waits_by_submission(&d600)
        .into_iter()
        .map(|(_, w)| w)
        .collect();

    if !csv_only {
        println!(
            "{}",
            ascii_plot(
                "Fig 8 — waiting time [s] vs submission order: Static vs Dyn-HP",
                &[("Static", &w_st), ("Dyn-HP", &w_hp)],
                18,
            )
        );
        println!(
            "{}",
            ascii_plot(
                "Fig 10 — Static vs Dyn-HP vs Dyn-500",
                &[("Static", &w_st), ("Dyn-HP", &w_hp), ("Dyn-500", &w_500)],
                18,
            )
        );
        println!(
            "{}",
            ascii_plot(
                "Fig 11 — Static vs Dyn-HP vs Dyn-600",
                &[("Static", &w_st), ("Dyn-HP", &w_hp), ("Dyn-600", &w_600)],
                18,
            )
        );
        let l_st = waits_of_type(&st, "L");
        let l_hp = waits_of_type(&hp, "L");
        let l_500 = waits_of_type(&d500, "L");
        let l_600 = waits_of_type(&d600, "L");
        println!(
            "{}",
            ascii_plot(
                "Fig 9 — type-L job waiting times [s] in all four configurations",
                &[
                    ("Static", &l_st),
                    ("Dyn-HP", &l_hp),
                    ("Dyn-500", &l_500),
                    ("Dyn-600", &l_600),
                ],
                18,
            )
        );
    }

    // Paper's Fig 8 observation: jobs in the mid range (IDs ~70–125) wait
    // longer under Dyn-HP than Static; quantify it.
    let mid = 70..125.min(w_st.len());
    let delayed = mid.clone().filter(|&i| w_hp[i] > w_st[i]).count();
    println!(
        "jobs {}..{} waiting longer under Dyn-HP than Static: {} of {}",
        mid.start,
        mid.end,
        delayed,
        mid.len()
    );
    let l_hp = waits_of_type(&hp, "L");
    let l_st = waits_of_type(&st, "L");
    let l_affected = l_hp.iter().zip(&l_st).filter(|(h, s)| h > s).count();
    println!(
        "type-L jobs waiting longer under Dyn-HP than Static: {} of {} (paper: about half)",
        l_affected,
        l_hp.len()
    );

    // Quantified fairness (beyond the paper's visual argument): Jain's
    // index over per-user mean waits, and per-user excess vs Static.
    println!("\nJain fairness index over per-user mean waits:");
    for (label, outs) in [
        ("Static", &st),
        ("Dyn-HP", &hp),
        ("Dyn-500", &d500),
        ("Dyn-600", &d600),
    ] {
        println!("  {label:<8} {:.4}", user_wait_fairness(outs));
    }
    println!("\nper-user mean-wait excess vs Static [s] (positive = user pays):");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "user", "Dyn-HP", "Dyn-500", "Dyn-600"
    );
    let e_hp = per_user_excess(&hp, &st);
    let e_500 = per_user_excess(&d500, &st);
    let e_600 = per_user_excess(&d600, &st);
    for (i, (user, hp_excess)) in e_hp.iter().enumerate() {
        println!(
            "{:<8} {:>10.0} {:>10.0} {:>10.0}",
            format!("{user}"),
            hp_excess,
            e_500.get(i).map_or(f64::NAN, |x| x.1),
            e_600.get(i).map_or(f64::NAN, |x| x.1)
        );
    }

    println!("\n--- CSV: all jobs (submission order) ---");
    let rows: Vec<Vec<f64>> = (0..w_st.len())
        .map(|i| {
            vec![
                (i + 1) as f64,
                w_st[i],
                w_hp.get(i).copied().unwrap_or(f64::NAN),
                w_500.get(i).copied().unwrap_or(f64::NAN),
                w_600.get(i).copied().unwrap_or(f64::NAN),
            ]
        })
        .collect();
    print!(
        "{}",
        render_csv(
            &[
                "job",
                "static_wait_s",
                "dyn_hp_wait_s",
                "dyn500_wait_s",
                "dyn600_wait_s"
            ],
            &rows
        )
    );

    println!("\n--- CSV: type-L jobs ---");
    let l_500 = waits_of_type(&d500, "L");
    let l_600 = waits_of_type(&d600, "L");
    let rows: Vec<Vec<f64>> = (0..l_st.len())
        .map(|i| {
            vec![
                (i + 1) as f64,
                l_st[i],
                l_hp.get(i).copied().unwrap_or(f64::NAN),
                l_500.get(i).copied().unwrap_or(f64::NAN),
                l_600.get(i).copied().unwrap_or(f64::NAN),
            ]
        })
        .collect();
    print!(
        "{}",
        render_csv(
            &[
                "l_job",
                "static_wait_s",
                "dyn_hp_wait_s",
                "dyn500_wait_s",
                "dyn600_wait_s"
            ],
            &rows
        )
    );
}
