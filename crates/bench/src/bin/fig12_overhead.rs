//! Regenerates the paper's **Fig 12**: the overhead of a dynamic
//! allocation of 1–10 nodes, measured on the *threaded* deployment
//! (real daemons, real channels, wall-clock time).
//!
//! Two scenarios, as in the paper:
//!
//! 1. no other workload at the batch system;
//! 2. a queue of rigid jobs with `ReservationDelayDepth = 5`, so every
//!    grant decision performs the full delay-measurement pass.
//!
//! The measured round trip covers: application → mother-superior mom →
//! server → scheduler iteration (with DFS delay what-ifs) → allocation →
//! dyn_join fan-out (ping/ack per newly allocated node) → hostlist back to
//! the application. The paper reports sub-second values on real hardware;
//! in-process channels land in the microsecond range — the *shape*
//! (growth with node count; loaded slower than idle) is the reproduction
//! target.
//!
//! ```text
//! cargo run --release -p dynbatch-bench --bin fig12_overhead [-- --reps N]
//! ```

use dynbatch_cluster::Allocation;
use dynbatch_core::{
    DfsConfig, ExecutionModel, GroupId, JobClass, JobSpec, JobState, SchedulerConfig, SimDuration,
    UserId,
};
use dynbatch_daemon::{DaemonConfig, DaemonHandle};
use dynbatch_server::TmResponse;
use std::time::Duration;

const CORES_PER_NODE: u32 = 8;

fn spec(name: &str, user: u32, cores: u32, millis: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        user: UserId(user),
        group: GroupId(0),
        class: JobClass::Rigid,
        cores,
        walltime: SimDuration::from_millis(millis),
        exec: ExecutionModel::Fixed {
            duration: SimDuration::from_millis(millis),
        },
        priority_boost: 0,
        suppress_backfill_while_queued: false,
        malleable: None,
        moldable: None,
        dyn_timeout: None,
        queue: None,
    }
}

/// Measures the dynamic allocation of `nodes` whole nodes, `reps` times,
/// returning mean microseconds.
fn measure(nodes: u32, with_workload: bool, reps: u32) -> f64 {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::highest_priority();
    // 12 compute nodes: 1 for the requesting job + up to 10 to grab + 1
    // spare, as in the paper's 1-node job growing by up to 10 nodes.
    let daemon = DaemonHandle::start(DaemonConfig {
        nodes: 12,
        cores_per_node: CORES_PER_NODE,
        sched,
        faults: None,
        replication: None,
    });

    // The evolving job: one statically allocated node.
    let job = daemon
        .qsub(spec("grower", 0, CORES_PER_NODE, 120_000))
        .expect("qsub grower");
    assert!(daemon.wait_for_state(job, JobState::Running, Duration::from_secs(5)));

    if with_workload {
        // A rigid backlog that keeps the queue non-empty (each job wants
        // the whole machine, so none can start) — the scheduler's delay
        // pass has ReservationDelayDepth = 5 jobs to re-plan per grant.
        for i in 0..8 {
            daemon
                .qsub(spec(
                    &format!("queued{i}"),
                    1 + i,
                    12 * CORES_PER_NODE,
                    60_000,
                ))
                .expect("qsub backlog");
        }
    }

    let mut total_us = 0.0;
    for _ in 0..reps {
        let (resp, latency) = daemon.tm_dynget_timed(job, nodes * CORES_PER_NODE);
        let TmResponse::DynGranted { added } = resp else {
            panic!("expected grant of {nodes} nodes");
        };
        assert_eq!(added.total_cores(), nodes * CORES_PER_NODE);
        total_us += latency.as_secs_f64() * 1e6;
        // Release what we took so the next rep starts from one node.
        let resp = daemon.tm_dynfree(job, added);
        assert!(matches!(resp, TmResponse::Freed));
    }

    let _ = daemon.qdel(job);
    daemon.shutdown();
    total_us / reps as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps: u32 = match args.iter().position(|a| a == "--reps") {
        Some(i) => args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(20),
        None => 20,
    };

    println!("Fig 12 — time for a dynamic allocation of 1–10 nodes ({reps} reps each)\n");
    println!(
        "{:<8} {:>18} {:>22}",
        "Nodes", "no workload [µs]", "with workload [µs]"
    );
    println!("{}", "-".repeat(50));
    let mut idle_series = Vec::new();
    let mut loaded_series = Vec::new();
    for nodes in 1..=10 {
        let idle = measure(nodes, false, reps);
        let loaded = measure(nodes, true, reps);
        idle_series.push(idle);
        loaded_series.push(loaded);
        println!("{nodes:<8} {idle:>18.1} {loaded:>22.1}");
    }

    let grow_idle = idle_series.last().unwrap() / idle_series.first().unwrap();
    println!("\n10-node vs 1-node allocation cost: {grow_idle:.2}× (paper: rising, sub-second);");
    println!(
        "loaded vs idle at 10 nodes: {:.2}×",
        loaded_series.last().unwrap() / idle_series.last().unwrap()
    );
    let _ = Allocation::empty(); // keep the hostlist type linked for docs
}
