//! Regenerates the paper's **Fig 7**: execution times of the Quadflow
//! FlatPlate and Cylinder test cases, broken down by grid-adaptation
//! phase, for three scenarios — static 16 cores, static 32 cores, and
//! dynamic (start on 16, `tm_dynget()` +16 when a phase exceeds the
//! cells-per-process threshold).
//!
//! Two layers of reproduction:
//!
//! 1. the calibrated phase *model* (the bars of Fig 7);
//! 2. an end-to-end run of the dynamic scenario through the full batch
//!    system (server + scheduler + TM protocol) on an idle and on a busy
//!    cluster, confirming the request is granted (or denied) exactly as
//!    the protocol dictates.
//!
//! ```text
//! cargo run --release -p dynbatch-bench --bin fig7_quadflow
//! ```

use dynbatch_cluster::Cluster;
use dynbatch_core::{CredRegistry, DfsConfig, JobSpec, SchedulerConfig, SimDuration, SimTime};
use dynbatch_sim::BatchSim;
use dynbatch_workload::{
    dynamic_breakdown, static_breakdown, PhaseBreakdown, QuadflowCase, WorkloadItem,
};

fn print_breakdown(b: &PhaseBreakdown) {
    print!("  {:<22} |", b.label);
    for (secs, cores) in b.phase_secs.iter().zip(&b.phase_cores) {
        print!(" {:>7.2} h ({cores:>2}c) |", secs / 3600.0);
    }
    println!("  total {:>6.2} h", b.total_secs() / 3600.0);
}

fn hp_sched() -> SchedulerConfig {
    let mut s = SchedulerConfig::paper_eval();
    s.dfs = DfsConfig::highest_priority();
    s
}

/// Runs the dynamic scenario through the full batch system and returns
/// (runtime, dynamic grants).
fn sim_dynamic_run(case: QuadflowCase, busy_cores: u32) -> (SimDuration, u32) {
    let mut reg = CredRegistry::new();
    let user = reg.user("cfd");
    let group = reg.group_of(user);
    let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), hp_sched());

    let mut items = vec![WorkloadItem {
        at: SimTime::ZERO,
        spec: JobSpec::evolving(
            case.name(),
            user,
            group,
            case.base_cores(),
            case.execution_model(),
        ),
    }];
    if busy_cores > 0 {
        // A rigid space-filler that outlives the CFD job, so the dynamic
        // request finds no idle cores.
        let filler = reg.user("filler");
        let fgroup = reg.group_of(filler);
        items.push(WorkloadItem {
            at: SimTime::ZERO,
            spec: JobSpec::rigid(
                "filler",
                filler,
                fgroup,
                busy_cores,
                SimDuration::from_hours(200),
            ),
        });
    }
    sim.load(&items);
    sim.run();
    let outcome = sim
        .server()
        .accounting()
        .outcomes()
        .iter()
        .find(|o| o.name == case.name())
        .expect("CFD job completed")
        .clone();
    (outcome.runtime(), outcome.dyn_grants)
}

fn main() {
    println!("Fig 7 — Quadflow execution times by adaptation phase\n");
    for case in [QuadflowCase::FlatPlate, QuadflowCase::Cylinder] {
        let s16 = static_breakdown(case, 16);
        let s32 = static_breakdown(case, 32);
        let dynamic = dynamic_breakdown(case);
        println!(
            "{} (threshold {} cells/proc, {} adaptations):",
            case.name(),
            case.model().threshold_cells_per_proc,
            case.model().phases.len() - 1
        );
        print_breakdown(&s16);
        print_breakdown(&s32);
        print_breakdown(&dynamic);
        let saving = s16.total_secs() - dynamic.total_secs();
        println!(
            "  dynamic vs static-16: {:.0} % faster, saving {:.1} h (paper: {} % / {} h)\n",
            100.0 * saving / s16.total_secs(),
            saving / 3600.0,
            match case {
                QuadflowCase::FlatPlate => "17",
                QuadflowCase::Cylinder => "33",
            },
            match case {
                QuadflowCase::FlatPlate => "3",
                QuadflowCase::Cylinder => "10",
            },
        );
    }

    println!("End-to-end through the batch system (server + Maui + TM protocol):");
    for case in [QuadflowCase::FlatPlate, QuadflowCase::Cylinder] {
        let (rt_idle, grants_idle) = sim_dynamic_run(case, 0);
        // 15×8 = 120 cores; 16 for the job leaves 104: fill them all so
        // the dynamic request must be denied.
        let (rt_busy, grants_busy) = sim_dynamic_run(case, 104);
        let model_dyn = dynamic_breakdown(case).total_secs();
        let model_static = static_breakdown(case, 16).total_secs();
        println!(
            "  {:<10} idle cluster: {:>7.2} h, {} grant(s)  (model dynamic {:>6.2} h)",
            case.name(),
            rt_idle.as_secs_f64() / 3600.0,
            grants_idle,
            model_dyn / 3600.0
        );
        println!(
            "  {:<10} busy cluster: {:>7.2} h, {} grant(s)  (model static  {:>6.2} h)",
            "",
            rt_busy.as_secs_f64() / 3600.0,
            grants_busy,
            model_static / 3600.0
        );
    }
}
