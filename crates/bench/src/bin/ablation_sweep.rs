//! Ablation studies over the design knobs the paper discusses:
//!
//! * `ReservationDelayDepth` — how many planned jobs each dynamic request
//!   is delay-checked against (paper Fig 5: "a proper choice for a site
//!   depends on its workload characteristics");
//! * `DFSDecay` — how much charged delay carries across intervals
//!   (paper §III-D's worked example);
//! * walltime padding — the paper's §III-D observation that measured
//!   delays over-estimate actual delays when users over-request;
//! * the evolving-job fraction — the paper fixes 30 %; sweep it;
//! * a malleable admixture — the future-work extension quantified.
//!
//! Each row is a full dynamic-ESP (or modified) run, averaged over seeds.
//! The per-seed runs of a row are sharded over all cores by the
//! deterministic sweep engine (`sim::sweep`) — row values are identical
//! to the serial loop at any worker count. Both `--workers` (sweep-engine
//! pool width) and `--shards` (in-run scheduler shard count) default to
//! `std::thread::available_parallelism()`. The JSON echo before the
//! tables records the *requested* values (null when defaulted) separately
//! from the *effective* ones, so campaign logs from different hosts stay
//! comparable: everything below the echo line is host-independent, and a
//! startup pin re-runs the baseline row single-threaded/unsharded to
//! assert the per-seed summaries are byte-identical to the host-derived
//! settings — both knobs are pure parallelism, enforced, not assumed.
//!
//! ```text
//! cargo run --release -p dynbatch-bench --bin ablation_sweep \
//!     [-- --seeds N] [--workers W] [--shards S]
//! ```

use dynbatch_bench::alloc_meter;
use dynbatch_core::json::Json;
use dynbatch_core::{
    CredRegistry, DfsConfig, FairshareMode, JobClass, JobSpec, SchedulerConfig, SimDuration,
};
use dynbatch_sim::{run_sweep, ExperimentConfig, ExperimentResult};
use dynbatch_workload::{generate_esp, EspConfig};

#[global_allocator]
static ALLOC: alloc_meter::CountingAlloc = alloc_meter::CountingAlloc;

fn seeds_from_args() -> Vec<u64> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--seeds") {
        Some(i) => {
            let n: u64 = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(3);
            (1..=n).collect()
        }
        None => vec![1, 2, 3],
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn flag_value(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
}

/// Sweep-engine pool width as requested on the command line — `None`
/// when `--workers` was absent and the host default applies.
fn workers_requested() -> Option<usize> {
    flag_value("--workers")
}

/// The pool width actually used: the request, or one worker per
/// available core.
fn workers_effective() -> usize {
    workers_requested().unwrap_or_else(available_cores)
}

/// The `--fairness {static,time-aware}` axis: the fairshare mode every
/// table runs under. Static (the default) is the classic windowed
/// tracker; time-aware switches the whole campaign onto the decayed
/// resource-hour accounts (6 h half-life, uniform 0.1 target).
fn fairness_mode() -> FairshareMode {
    let args: Vec<String> = std::env::args().collect();
    let v = args
        .iter()
        .position(|a| a == "--fairness")
        .and_then(|i| args.get(i + 1));
    match v.map(|s| s.as_str()) {
        None | Some("static") => FairshareMode::Static,
        Some("time-aware") => FairshareMode::TimeAware,
        Some(other) => panic!("--fairness must be 'static' or 'time-aware', got '{other}'"),
    }
}

fn apply_fairness(sched: &mut SchedulerConfig, mode: FairshareMode) {
    if mode == FairshareMode::TimeAware {
        sched.fairshare.enabled = true;
        sched.fairshare.mode = mode;
        sched.fairshare.half_life = SimDuration::from_hours(6);
        sched.fairshare.default_target = 0.1;
    }
}

/// In-run scheduler shard count as requested — `None` when `--shards`
/// was absent and the host default applies.
fn shards_requested() -> Option<usize> {
    flag_value("--shards")
}

/// The shard count actually used. Sharding is decision-invariant, so any
/// value reproduces the same rows (see [`determinism_pin`]).
fn shards_effective() -> usize {
    shards_requested().unwrap_or_else(available_cores)
}

struct Avg {
    makespan_min: f64,
    util_pct: f64,
    satisfied: f64,
    fairness_rejects: f64,
    delay_charged_s: f64,
    resizes: f64,
}

fn average(results: &[ExperimentResult]) -> Avg {
    let n = results.len() as f64;
    Avg {
        makespan_min: results
            .iter()
            .map(|r| r.summary.makespan.as_mins_f64())
            .sum::<f64>()
            / n,
        util_pct: results
            .iter()
            .map(|r| r.summary.utilization * 100.0)
            .sum::<f64>()
            / n,
        satisfied: results
            .iter()
            .map(|r| r.summary.satisfied_dyn_jobs as f64)
            .sum::<f64>()
            / n,
        fairness_rejects: results
            .iter()
            .map(|r| r.stats.dyn_rejected_fairness as f64)
            .sum::<f64>()
            / n,
        delay_charged_s: results
            .iter()
            .map(|r| r.stats.delay_charged_ms as f64 / 1000.0)
            .sum::<f64>()
            / n,
        resizes: results
            .iter()
            .map(|r| r.stats.malleable_resizes as f64)
            .sum::<f64>()
            / n,
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<22} {:>10} {:>9} {:>10} {:>10} {:>12} {:>9}",
        "setting", "time[min]", "util[%]", "satisfied", "fair-rej", "delay[s]", "resizes"
    );
}

fn row(label: &str, a: &Avg) {
    println!(
        "{:<22} {:>10.2} {:>9.2} {:>10.1} {:>10.1} {:>12.0} {:>9.1}",
        label,
        a.makespan_min,
        a.util_pct,
        a.satisfied,
        a.fairness_rejects,
        a.delay_charged_s,
        a.resizes
    );
}

fn run_many(
    seeds: &[u64],
    wl_mut: impl Fn(&mut EspConfig) + Sync,
    sched_mut: impl Fn(&mut SchedulerConfig),
    post: impl Fn(&mut Vec<dynbatch_workload::WorkloadItem>, &mut CredRegistry) + Sync,
) -> Avg {
    let mut sched = SchedulerConfig::paper_eval();
    sched.dfs = DfsConfig::uniform_target(200, SimDuration::from_hours(1));
    sched.shards = shards_effective();
    apply_fairness(&mut sched, fairness_mode());
    sched_mut(&mut sched);
    let configs = [ExperimentConfig::paper_cluster("ablation", sched)];
    // One row = one configuration × all seeds, sharded across the worker
    // pool; each cell regenerates its workload from its own seed.
    let results: Vec<ExperimentResult> =
        run_sweep(&configs, seeds, workers_effective(), |_, seed| {
            let mut reg = CredRegistry::new();
            let mut wl_cfg = EspConfig::paper_dynamic();
            wl_cfg.seed = seed;
            wl_mut(&mut wl_cfg);
            let mut wl = generate_esp(&wl_cfg, &mut reg);
            post(&mut wl, &mut reg);
            wl.into_iter()
        })
        .into_iter()
        .map(|cell| cell.result)
        .collect();
    average(&results)
}

/// Host-independence pin: the baseline row re-run single-threaded and
/// unsharded must produce per-seed summaries byte-identical to the
/// effective (possibly host-derived) settings. A host with a different
/// core count changes only the echo line, never a table value.
fn determinism_pin(seeds: &[u64]) {
    let run = |workers: usize, shards: usize| {
        let mut sched = SchedulerConfig::paper_eval();
        sched.dfs = DfsConfig::uniform_target(200, SimDuration::from_hours(1));
        sched.shards = shards;
        apply_fairness(&mut sched, fairness_mode());
        let configs = [ExperimentConfig::paper_cluster("pin", sched)];
        run_sweep(&configs, seeds, workers, |_, seed| {
            let mut reg = CredRegistry::new();
            let mut wl_cfg = EspConfig::paper_dynamic();
            wl_cfg.seed = seed;
            generate_esp(&wl_cfg, &mut reg).into_iter()
        })
        .into_iter()
        .map(|cell| cell.result.summary)
        .collect::<Vec<_>>()
    };
    let reference = run(1, 1);
    let host = run(workers_effective(), shards_effective());
    assert_eq!(
        reference, host,
        "ablation rows depend on host parallelism — workers/shards must be pure mechanism"
    );
}

fn main() {
    let seeds = seeds_from_args();
    // The pin runs first so the header can also echo memory: its second
    // leg replays the baseline row at the host's effective settings, so
    // the allocator high-water mark over it is the real working set of a
    // full sweep round, and peak/workers approximates the per-worker
    // (simulator + in-flight streamed workload) footprint.
    let alloc_base = alloc_meter::reset_peak();
    determinism_pin(&seeds);
    let pin_peak = alloc_meter::peak_bytes().saturating_sub(alloc_base);
    // Echo the parallelism settings as JSON so a campaign log records
    // what was asked for (null = defaulted) and what actually ran; only
    // this line may vary across hosts.
    let requested = |r: Option<usize>| r.map_or(Json::Null, |n| Json::UInt(n as u64));
    println!(
        "{}",
        Json::to_string_compact(&Json::obj(vec![
            ("seeds", Json::UInt(seeds.len() as u64)),
            ("workers_requested", requested(workers_requested())),
            ("workers_effective", Json::UInt(workers_effective() as u64)),
            ("shards_requested", requested(shards_requested())),
            ("shards_effective", Json::UInt(shards_effective() as u64)),
            (
                "available_parallelism",
                Json::UInt(available_cores() as u64)
            ),
            (
                "fairness_mode",
                Json::Str(
                    match fairness_mode() {
                        FairshareMode::Static => "static",
                        FairshareMode::TimeAware => "time-aware",
                    }
                    .into()
                )
            ),
            ("pin_peak_alloc_bytes", Json::UInt(pin_peak as u64)),
            (
                "peak_alloc_per_worker_bytes",
                Json::UInt((pin_peak / workers_effective().max(1)) as u64)
            ),
        ]))
    );
    println!("(parallelism pin: baseline row identical at workers=1/shards=1 and host settings)");
    println!(
        "Ablations on the dynamic ESP workload (DFS target 200 s/h unless varied; {} seeds)",
        seeds.len()
    );

    header("ReservationDelayDepth (delay-measurement window)");
    for depth in [0usize, 1, 5, 20, 60] {
        let a = run_many(
            &seeds,
            |_| {},
            |s| s.reservation_delay_depth = depth,
            |_, _| {},
        );
        row(&format!("depth = {depth}"), &a);
    }
    println!("(depth 0 measures no delays at all — fairness cannot see harm, grants rise)");

    header("DFSDecay (delay memory across 1 h intervals)");
    for decay in [0.0f64, 0.2, 0.5, 0.9, 1.0] {
        let a = run_many(&seeds, |_| {}, |s| s.dfs.decay = decay, |_, _| {});
        row(&format!("decay = {decay}"), &a);
    }
    println!("(decay 1.0 never forgets: the cumulative cap eventually locks grants out)");

    header("Walltime padding (user over-request factor)");
    for wf in [1.0f64, 1.25, 1.5, 2.0] {
        let a = run_many(&seeds, |w| w.walltime_factor = wf, |_| {}, |_, _| {});
        row(&format!("walltime × {wf}"), &a);
    }
    println!(
        "(padding inflates measured delays — §III-D's over-estimation — and throttles backfill)"
    );

    header("Evolving-job share (paper fixes 30 %)");
    for evolving in [false, true] {
        let a = run_many(&seeds, |w| w.evolving = evolving, |_| {}, |_, _| {});
        row(
            if evolving {
                "30 % evolving"
            } else {
                "0 % (static)"
            },
            &a,
        );
    }

    header("Dynamic partition size (§II-B's second source)");
    for part in [0u32, 4, 8, 16] {
        let a = run_many(
            &seeds,
            |_| {},
            |s| s.dyn_partition_cores = part,
            move |wl, _| {
                // A site running a permanent dynamic partition cannot admit
                // full-machine jobs; cap the Z jobs at what static work may
                // use (they keep their highest-priority drain semantics).
                for item in wl.iter_mut().filter(|i| i.spec.name == "Z") {
                    item.spec.cores = 120 - part;
                }
            },
        );
        row(&format!("partition = {part}"), &a);
    }
    println!("(partition grants are delay-free, but the slice is lost to static work — the");
    println!(" paper's §II-B trade-off: availability for evolving jobs vs system capacity)");

    header("Fairness mode (decayed resource-hour axis)");
    for (label, mode, half_hours) in [
        ("static windowed", FairshareMode::Static, 0u64),
        ("time-aware 1 h", FairshareMode::TimeAware, 1),
        ("time-aware 6 h", FairshareMode::TimeAware, 6),
        ("time-aware 24 h", FairshareMode::TimeAware, 24),
    ] {
        let a = run_many(
            &seeds,
            |_| {},
            |s| {
                s.fairshare.enabled = true;
                s.fairshare.mode = mode;
                if mode == FairshareMode::TimeAware {
                    s.fairshare.half_life = SimDuration::from_hours(half_hours);
                    s.fairshare.default_target = 0.1;
                }
            },
            |_, _| {},
        );
        row(label, &a);
    }
    println!("(shorter half-lives forgive past heavy use faster; the static window forgets");
    println!(" in whole-window steps — the time-aware axis trades memory for reactivity)");

    header("Malleable admixture (future-work extension)");
    for (label, enable) in [("no malleability", false), ("shrink+grow", true)] {
        let a = run_many(
            &seeds,
            |_| {},
            |s| {
                s.shrink_malleable_for_dyn = enable;
                s.grow_malleable_on_idle = enable;
            },
            |wl, reg| {
                // Convert the 15 type-M jobs into malleable work pools of
                // the same total work (30 cores × 187 s each).
                let user = reg.user_in_group("user09", "espusers");
                let group = reg.group_of(user);
                for item in wl.iter_mut().filter(|i| i.spec.name == "M") {
                    item.spec = JobSpec::malleable("M", user, group, 30, 15, 60, 30 * 187);
                }
            },
        );
        row(label, &a);
    }
    println!("(malleable M jobs stretch and shrink around the rigid/evolving mix)");

    // Silence the unused-import lint for JobClass used only in docs above.
    let _ = JobClass::Malleable;
}
