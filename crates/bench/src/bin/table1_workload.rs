//! Regenerates the paper's **Table I**: the dynamic ESP job mix.
//!
//! Prints each job type with its user, size fraction, instance count, the
//! concrete core count on the paper's 120-core system, and the static /
//! dynamic execution times, then cross-checks the workload the generator
//! actually emits.
//!
//! ```text
//! cargo run --release -p dynbatch-bench --bin table1_workload
//! ```

use dynbatch_core::{CredRegistry, JobClass};
use dynbatch_workload::{generate_esp, static_core_seconds, EspConfig, ESP_TABLE};

fn main() {
    let cfg = EspConfig::paper_dynamic();
    println!(
        "Table I — dynamic ESP job types (system: {} cores)\n",
        cfg.total_cores
    );
    println!(
        "{:<5} {:<8} {:>8} {:>6} {:>6} {:>10} {:>10}",
        "Type", "User", "Size", "Count", "Cores", "SET [s]", "DET [s]"
    );
    println!("{}", "-".repeat(60));
    for ty in &ESP_TABLE {
        println!(
            "{:<5} {:<8} {:>8.5} {:>6} {:>6} {:>10} {:>10}",
            ty.name,
            ty.user,
            ty.size_frac,
            ty.count,
            ty.cores(cfg.total_cores),
            ty.set_secs,
            ty.det_secs.map_or("-".to_string(), |d| d.to_string()),
        );
    }

    let mut reg = CredRegistry::new();
    let items = generate_esp(&cfg, &mut reg);
    let evolving = items
        .iter()
        .filter(|i| i.spec.class == JobClass::Evolving)
        .count();
    let rigid = items.len() - evolving;
    println!(
        "\nGenerated workload: {} jobs ({rigid} rigid, {evolving} evolving)",
        items.len()
    );
    println!(
        "Evolving fraction: {:.1} % (paper: 30 %)",
        100.0 * evolving as f64 / items.len() as f64
    );
    println!(
        "Total static work: {:.0} core-seconds (perfect packing on {} cores: {:.1} min)",
        static_core_seconds(&cfg),
        cfg.total_cores,
        static_core_seconds(&cfg) / cfg.total_cores as f64 / 60.0
    );
    println!(
        "Submission: first {} instantly, then one per {} s; Z jobs {} min after the last.",
        cfg.initial_burst,
        cfg.submit_interval.as_secs(),
        cfg.z_delay.as_secs() / 60
    );
}
