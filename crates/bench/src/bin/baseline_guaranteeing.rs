//! The **guaranteeing approach** baseline (paper §II-B, CooRMv2-style):
//! evolving jobs pre-reserve their maximum dynamic demand at submission,
//! so every `tm_dynget()` is guaranteed — at the price of reserved cores
//! idling until (unless) they are claimed, and of rigid jobs being unable
//! to use them.
//!
//! The paper argues this "cannot provide good system utilization and may
//! result in users having to pay for unused resources as well" for
//! rigid-dominated workloads, and therefore builds the non-guaranteeing
//! scheduler instead. This binary quantifies that argument on the dynamic
//! ESP workload.
//!
//! ```text
//! cargo run --release -p dynbatch-bench --bin baseline_guaranteeing [-- --seeds N]
//! ```

use dynbatch_core::{CredRegistry, DfsConfig, SchedulerConfig};
use dynbatch_metrics::render_table2;
use dynbatch_sim::{run_experiment, ExperimentConfig};
use dynbatch_workload::{generate_esp, EspConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: Vec<u64> = match args.iter().position(|a| a == "--seeds") {
        Some(i) => {
            let n: u64 = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(1);
            (1..=n).collect()
        }
        None => vec![EspConfig::default().seed],
    };

    println!(
        "Guaranteeing vs non-guaranteeing dynamic allocation (dynamic ESP, {} seed(s))\n",
        seeds.len()
    );

    let mut rows = Vec::new();
    for (label, guarantee) in [("Non-guar", false), ("Guarantee", true)] {
        let mut acc: Option<dynbatch_metrics::RunSummary> = None;
        for &seed in &seeds {
            let mut reg = CredRegistry::new();
            let mut wl_cfg = EspConfig::paper_dynamic();
            wl_cfg.seed = seed;
            let wl = generate_esp(&wl_cfg, &mut reg);
            let mut sched = SchedulerConfig::paper_eval();
            sched.dfs = DfsConfig::highest_priority();
            sched.guarantee_evolving = guarantee;
            let r = run_experiment(&ExperimentConfig::paper_cluster(label, sched), &wl);
            acc = Some(match acc {
                None => r.summary,
                Some(mut a) => {
                    a.makespan += r.summary.makespan;
                    a.utilization += r.summary.utilization;
                    a.throughput_jobs_per_min += r.summary.throughput_jobs_per_min;
                    a.satisfied_dyn_jobs += r.summary.satisfied_dyn_jobs;
                    a.mean_wait += r.summary.mean_wait;
                    a
                }
            });
        }
        let n = seeds.len() as u64;
        let mut s = acc.expect("ran at least one seed");
        s.makespan = s.makespan / n;
        s.utilization /= n as f64;
        s.throughput_jobs_per_min /= n as f64;
        s.satisfied_dyn_jobs /= n as usize;
        s.mean_wait = s.mean_wait / n;
        rows.push(s);
    }

    print!("{}", render_table2(&rows));
    println!();
    println!("The guaranteeing row satisfies every dynamic request (all 69 evolving jobs)");
    println!("but pays for it: reserved cores idle until claimed, rigid jobs queue behind");
    println!("reservations they may never use — the paper's rationale for choosing the");
    println!("non-guaranteeing approach with dynamic fairness (§II-B).");
}
