//! Ablation benchmarks for the design knobs DESIGN.md calls out:
//! `ReservationDelayDepth` (how many planned jobs each dynamic request
//! re-plans), backfill policy, and the DFS evaluation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynbatch_core::{
    BackfillPolicy, DfsConfig, GroupId, JobId, QueueId, SchedulerConfig, SimDuration, SimTime,
    UserId,
};
use dynbatch_sched::{DelayCharge, DfsEngine, DynRequest, Maui, QueuedJob, RunningJob, Snapshot};
use std::hint::black_box;

fn loaded_snapshot() -> Snapshot {
    let mut snap = Snapshot {
        now: SimTime::from_secs(500),
        total_cores: 120,
        running: Vec::new(),
        queued: Vec::new(),
        dyn_requests: Vec::new(),
        usage: None,
        deltas: None,
    };
    for i in 0..12u64 {
        snap.running.push(RunningJob {
            id: JobId(i),
            user: UserId((i % 6) as u32),
            group: GroupId(0),
            cores: 8,
            start_time: SimTime::from_secs(100),
            walltime_end: SimTime::from_secs(600 + 200 * i),
            backfilled: false,
            reserved_extra: 0,
            malleable: None,
        });
    }
    for i in 0..60u64 {
        snap.queued.push(QueuedJob {
            id: JobId(100 + i),
            user: UserId((i % 6) as u32),
            group: GroupId(0),
            queue: QueueId(0),
            cores: 8 + (i % 5) as u32 * 8,
            walltime: SimDuration::from_secs(600),
            submit_time: SimTime::from_secs(i),
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        });
    }
    for i in 0..6u64 {
        snap.dyn_requests.push(DynRequest {
            job: JobId(i),
            user: UserId((i % 6) as u32),
            group: GroupId(0),
            extra_cores: 4,
            remaining_walltime: SimDuration::from_secs(700),
            seq: i,
            deadline: None,
        });
    }
    snap
}

fn bench_delay_depth(c: &mut Criterion) {
    let snap = loaded_snapshot();
    let mut group = c.benchmark_group("ablation/reservation_delay_depth");
    for &depth in &[1usize, 5, 20, 60] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut cfg = SchedulerConfig::paper_eval();
            cfg.reservation_delay_depth = depth;
            cfg.dfs = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
            let mut m = Maui::new(cfg);
            b.iter(|| black_box(m.iterate(&snap)));
        });
    }
    group.finish();
}

fn bench_backfill_policy(c: &mut Criterion) {
    let snap = loaded_snapshot();
    let mut group = c.benchmark_group("ablation/backfill_policy");
    for (name, policy) in [
        ("none", BackfillPolicy::None),
        ("easy", BackfillPolicy::Easy),
        ("conservative", BackfillPolicy::Conservative),
    ] {
        group.bench_function(name, |b| {
            let mut cfg = SchedulerConfig::paper_eval();
            cfg.backfill = policy;
            cfg.dfs = DfsConfig::highest_priority();
            let mut m = Maui::new(cfg);
            b.iter(|| black_box(m.iterate(&snap)));
        });
    }
    group.finish();
}

fn bench_dfs_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/dfs_evaluate");
    for &charges in &[1usize, 5, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(charges), &charges, |b, &n| {
            let cfg = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
            let eng = DfsEngine::new(cfg, SimTime::ZERO);
            let delays: Vec<DelayCharge> = (0..n)
                .map(|i| DelayCharge {
                    job: JobId(i as u64),
                    user: UserId((i % 6) as u32),
                    group: GroupId(0),
                    delay: SimDuration::from_secs(60),
                })
                .collect();
            b.iter(|| black_box(eng.evaluate(UserId(99), &delays)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_delay_depth,
    bench_backfill_policy,
    bench_dfs_evaluate
);
criterion_main!(benches);
