//! Microbenchmarks of the availability timeline — the data structure every
//! scheduling decision reduces to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynbatch_core::{SimDuration, SimTime};
use dynbatch_sched::AvailabilityProfile;
use dynbatch_simtime::SplitMix64;
use std::hint::black_box;

/// A profile resembling a busy cluster: `n` running jobs with staggered
/// ends.
fn busy_profile(n: u64, capacity: u32) -> AvailabilityProfile {
    let mut p = AvailabilityProfile::new(SimTime::ZERO, capacity);
    let mut rng = SplitMix64::new(42);
    for _ in 0..n {
        let end = 60 + rng.next_below(7200);
        let cores = 1 + rng.next_below(8) as u32;
        if p.min_idle(SimTime::ZERO, SimTime::from_secs(end)) >= cores {
            p.hold(SimTime::ZERO, SimTime::from_secs(end), cores);
        }
    }
    p
}

fn bench_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline/hold");
    for &jobs in &[10u64, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let base = busy_profile(jobs, 1024);
            b.iter(|| {
                let mut p = base.clone();
                p.hold(
                    SimTime::from_secs(10),
                    SimTime::from_secs(500),
                    black_box(4),
                );
                black_box(p)
            });
        });
    }
    group.finish();
}

fn bench_earliest_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline/earliest_fit");
    for &jobs in &[10u64, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let p = busy_profile(jobs, 1024);
            b.iter(|| p.earliest_fit(black_box(64), SimDuration::from_secs(600), SimTime::ZERO));
        });
    }
    group.finish();
}

fn bench_min_idle(c: &mut Criterion) {
    let p = busy_profile(200, 1024);
    c.bench_function("timeline/min_idle_200_jobs", |b| {
        b.iter(|| p.min_idle(SimTime::ZERO, black_box(SimTime::from_secs(3600))))
    });
}

criterion_group!(benches, bench_hold, bench_earliest_fit, bench_min_idle);
criterion_main!(benches);
