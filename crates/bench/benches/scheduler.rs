//! Microbenchmarks of one extended Maui iteration (paper Algorithm 2):
//! ranking, planning, delay measurement, DFS checks, backfill.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynbatch_core::{
    DfsConfig, GroupId, JobId, QueueId, SchedulerConfig, SimDuration, SimTime, UserId,
};
use dynbatch_sched::{DynRequest, Maui, QueuedJob, RunningJob, Snapshot};
use dynbatch_simtime::SplitMix64;
use std::hint::black_box;

/// A saturated 120-core snapshot: `running` jobs hold most cores, `queued`
/// jobs wait, `dyn_reqs` evolving jobs ask for more.
fn snapshot(running: usize, queued: usize, dyn_reqs: usize) -> Snapshot {
    let mut rng = SplitMix64::new(7);
    let mut snap = Snapshot {
        now: SimTime::from_secs(1000),
        total_cores: 120,
        running: Vec::new(),
        queued: Vec::new(),
        dyn_requests: Vec::new(),
        usage: None,
        deltas: None,
    };
    let mut used = 0u32;
    for i in 0..running {
        let cores = (1 + rng.next_below(8) as u32)
            .min(110u32.saturating_sub(used))
            .max(1);
        used += cores;
        snap.running.push(RunningJob {
            id: JobId(i as u64),
            user: UserId((i % 10) as u32),
            group: GroupId(0),
            cores,
            start_time: SimTime::from_secs(rng.next_below(900)),
            walltime_end: SimTime::from_secs(1100 + rng.next_below(3600)),
            backfilled: i % 3 == 0,
            reserved_extra: 0,
            malleable: None,
        });
    }
    for i in 0..queued {
        snap.queued.push(QueuedJob {
            id: JobId((1000 + i) as u64),
            user: UserId((i % 10) as u32),
            group: GroupId(0),
            queue: QueueId(0),
            cores: 4 + rng.next_below(40) as u32,
            walltime: SimDuration::from_secs(300 + rng.next_below(1500)),
            submit_time: SimTime::from_secs(rng.next_below(1000)),
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        });
    }
    for i in 0..dyn_reqs.min(running) {
        snap.dyn_requests.push(DynRequest {
            job: JobId(i as u64),
            user: UserId((i % 10) as u32),
            group: GroupId(0),
            extra_cores: 4,
            remaining_walltime: SimDuration::from_secs(600),
            seq: i as u64,
            deadline: None,
        });
    }
    snap
}

fn maui(dfs: DfsConfig) -> Maui {
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.dfs = dfs;
    Maui::new(cfg)
}

fn bench_static_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("maui/static_iteration");
    for &queued in &[10usize, 50, 200] {
        let snap = snapshot(20, queued, 0);
        group.bench_with_input(BenchmarkId::from_parameter(queued), &snap, |b, snap| {
            let mut m = maui(DfsConfig::highest_priority());
            b.iter(|| black_box(m.iterate(snap)));
        });
    }
    group.finish();
}

fn bench_dynamic_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("maui/dynamic_iteration");
    for &reqs in &[1usize, 5, 15] {
        let snap = snapshot(20, 50, reqs);
        group.bench_with_input(BenchmarkId::from_parameter(reqs), &snap, |b, snap| {
            let mut m = maui(DfsConfig::uniform_target(500, SimDuration::from_hours(1)));
            b.iter(|| black_box(m.iterate(snap)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static_iteration, bench_dynamic_iteration);
criterion_main!(benches);
