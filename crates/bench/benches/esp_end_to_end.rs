//! End-to-end cost of simulating the full 230-job dynamic ESP workload —
//! the engine behind every Table II / Fig 8–11 regeneration. The paper's
//! physical run took ~4 hours of wall time per configuration; this
//! measures how fast the simulator replays it.

use criterion::{criterion_group, criterion_main, Criterion};
use dynbatch_core::{CredRegistry, DfsConfig, SchedulerConfig, SimDuration};
use dynbatch_sim::{run_experiment, ExperimentConfig};
use dynbatch_workload::{generate_esp, EspConfig};
use std::hint::black_box;

fn bench_esp(c: &mut Criterion) {
    let mut group = c.benchmark_group("esp_end_to_end");
    group.sample_size(10);

    let mut reg = CredRegistry::new();
    let static_wl = generate_esp(&EspConfig::paper_static(), &mut reg);
    let dyn_wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);

    group.bench_function("static_230_jobs", |b| {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        let exp = ExperimentConfig::paper_cluster("Static", cfg);
        b.iter(|| black_box(run_experiment(&exp, &static_wl)));
    });

    group.bench_function("dynamic_hp_230_jobs", |b| {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        let exp = ExperimentConfig::paper_cluster("Dyn-HP", cfg);
        b.iter(|| black_box(run_experiment(&exp, &dyn_wl)));
    });

    group.bench_function("dynamic_dfs500_230_jobs", |b| {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::uniform_target(500, SimDuration::from_hours(1));
        let exp = ExperimentConfig::paper_cluster("Dyn-500", cfg);
        b.iter(|| black_box(run_experiment(&exp, &dyn_wl)));
    });

    group.finish();
}

criterion_group!(benches, bench_esp);
criterion_main!(benches);
