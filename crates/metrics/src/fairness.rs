//! Fairness metrics over per-job outcomes.
//!
//! The paper's Figs 8–11 argue fairness visually (waiting-time curves);
//! this module quantifies the same story: per-user waiting-time summaries,
//! Jain's fairness index over user mean waits, and per-user *excess* wait
//! against a baseline run (how much each user paid for other users'
//! dynamic allocations).

use crate::stats;
use dynbatch_core::{JobOutcome, UserId};
use std::collections::BTreeMap;

/// One user's waiting-time summary.
#[derive(Debug, Clone, PartialEq)]
pub struct UserWaitSummary {
    /// The user.
    pub user: UserId,
    /// Completed jobs.
    pub jobs: usize,
    /// Mean wait, seconds.
    pub mean_wait_s: f64,
    /// Maximum wait, seconds.
    pub max_wait_s: f64,
}

/// Per-user waiting-time summaries, ordered by user id.
pub fn per_user_waits(outcomes: &[JobOutcome]) -> Vec<UserWaitSummary> {
    let mut by_user: BTreeMap<UserId, Vec<f64>> = BTreeMap::new();
    for o in outcomes {
        by_user
            .entry(o.user)
            .or_default()
            .push(o.wait().as_secs_f64());
    }
    by_user
        .into_iter()
        .map(|(user, waits)| UserWaitSummary {
            user,
            jobs: waits.len(),
            mean_wait_s: stats::mean(&waits),
            max_wait_s: stats::max(&waits),
        })
        .collect()
}

/// Jain's fairness index over a set of non-negative values:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]`; 1 = perfectly even. Returns 1 for an
/// empty or all-zero input (nobody waits ⇒ perfectly fair).
pub fn jain_index(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if n == 0.0 || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

/// Jain's index over per-user *mean waits* — the fairness headline for one
/// run.
pub fn user_wait_fairness(outcomes: &[JobOutcome]) -> f64 {
    let means: Vec<f64> = per_user_waits(outcomes)
        .iter()
        .map(|u| u.mean_wait_s)
        .collect();
    jain_index(&means)
}

/// Per-user excess wait of `run` over `baseline` (positive = this user's
/// jobs waited longer here), matched by user id; users missing from either
/// side are skipped.
pub fn per_user_excess(run: &[JobOutcome], baseline: &[JobOutcome]) -> Vec<(UserId, f64)> {
    let base: BTreeMap<UserId, f64> = per_user_waits(baseline)
        .into_iter()
        .map(|u| (u.user, u.mean_wait_s))
        .collect();
    per_user_waits(run)
        .into_iter()
        .filter_map(|u| base.get(&u.user).map(|b| (u.user, u.mean_wait_s - b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{JobClass, JobId, SimTime};

    fn outcome(id: u64, user: u32, submit: u64, start: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            name: "j".into(),
            user: UserId(user),
            class: JobClass::Rigid,
            cores_requested: 4,
            cores_final: 4,
            submit_time: SimTime::from_secs(submit),
            start_time: SimTime::from_secs(start),
            end_time: SimTime::from_secs(start + 100),
            dyn_requests: 0,
            dyn_grants: 0,
            backfilled: false,
        }
    }

    #[test]
    fn per_user_aggregation() {
        let outs = vec![
            outcome(1, 0, 0, 10),
            outcome(2, 0, 0, 30),
            outcome(3, 1, 0, 100),
        ];
        let sums = per_user_waits(&outs);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].jobs, 2);
        assert!((sums[0].mean_wait_s - 20.0).abs() < 1e-9);
        assert!((sums[0].max_wait_s - 30.0).abs() < 1e-9);
        assert!((sums[1].mean_wait_s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!(
            (jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12,
            "even = 1"
        );
        // One user takes everything: index = 1/n.
        let skew = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12, "{skew}");
    }

    #[test]
    fn excess_against_baseline() {
        let base = vec![outcome(1, 0, 0, 10), outcome(2, 1, 0, 10)];
        let run = vec![outcome(1, 0, 0, 40), outcome(2, 1, 0, 5)];
        let excess = per_user_excess(&run, &base);
        assert_eq!(excess.len(), 2);
        assert!((excess[0].1 - 30.0).abs() < 1e-9, "user 0 paid 30 s");
        assert!((excess[1].1 + 5.0).abs() < 1e-9, "user 1 gained 5 s");
    }

    #[test]
    fn fairness_headline() {
        let even = vec![outcome(1, 0, 0, 10), outcome(2, 1, 0, 10)];
        assert!((user_wait_fairness(&even) - 1.0).abs() < 1e-12);
    }
}
