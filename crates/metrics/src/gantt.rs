//! Schedule export: per-job Gantt rows and the busy-core time series —
//! the raw material for external plotting of a run.

use dynbatch_core::{JobOutcome, SimTime};
use std::fmt::Write as _;

/// One Gantt row.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttRow {
    /// Job name.
    pub name: String,
    /// Submission, start and end in seconds since the run origin.
    pub submit_s: f64,
    /// Start, seconds.
    pub start_s: f64,
    /// End, seconds.
    pub end_s: f64,
    /// Final core count.
    pub cores: u32,
    /// Started by backfill?
    pub backfilled: bool,
}

/// Extracts Gantt rows in start order.
pub fn gantt_rows(outcomes: &[JobOutcome]) -> Vec<GanttRow> {
    let mut rows: Vec<GanttRow> = outcomes
        .iter()
        .map(|o| GanttRow {
            name: o.name.clone(),
            submit_s: o.submit_time.as_secs_f64(),
            start_s: o.start_time.as_secs_f64(),
            end_s: o.end_time.as_secs_f64(),
            cores: o.cores_final,
            backfilled: o.backfilled,
        })
        .collect();
    rows.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).expect("finite times"));
    rows
}

/// Renders Gantt rows as CSV (`name,submit_s,start_s,end_s,cores,backfilled`).
pub fn gantt_csv(outcomes: &[JobOutcome]) -> String {
    let mut out = String::from("name,submit_s,start_s,end_s,cores,backfilled\n");
    for r in gantt_rows(outcomes) {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.name, r.submit_s, r.start_s, r.end_s, r.cores, r.backfilled
        );
    }
    out
}

/// Renders a `(time, busy_cores)` step series as CSV.
pub fn occupancy_csv(samples: &[(SimTime, u32)]) -> String {
    let mut out = String::from("time_s,busy_cores\n");
    for &(t, busy) in samples {
        let _ = writeln!(out, "{},{}", t.as_secs_f64(), busy);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{JobClass, JobId, UserId};

    fn outcome(name: &str, submit: u64, start: u64, end: u64, cores: u32) -> JobOutcome {
        JobOutcome {
            id: JobId(1),
            name: name.into(),
            user: UserId(0),
            class: JobClass::Rigid,
            cores_requested: cores,
            cores_final: cores,
            submit_time: SimTime::from_secs(submit),
            start_time: SimTime::from_secs(start),
            end_time: SimTime::from_secs(end),
            dyn_requests: 0,
            dyn_grants: 0,
            backfilled: false,
        }
    }

    #[test]
    fn rows_sorted_by_start() {
        let outs = vec![outcome("b", 0, 50, 60, 4), outcome("a", 0, 10, 20, 8)];
        let rows = gantt_rows(&outs);
        assert_eq!(rows[0].name, "a");
        assert_eq!(rows[1].name, "b");
        assert_eq!(rows[0].cores, 8);
    }

    #[test]
    fn csv_shapes() {
        let outs = vec![outcome("a", 0, 10, 20, 8)];
        let csv = gantt_csv(&outs);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("name,submit_s,start_s,end_s,cores,backfilled")
        );
        assert_eq!(lines.next(), Some("a,0,10,20,8,false"));

        let occ = occupancy_csv(&[(SimTime::ZERO, 0), (SimTime::from_secs(10), 8)]);
        assert!(occ.contains("10,8"));
    }
}
