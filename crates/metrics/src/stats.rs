//! Small statistics helpers.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// sample; 0 for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Maximum; 0 for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn max_handles_empty() {
        assert_eq!(max(&[]), 0.0);
        assert_eq!(max(&[1.0, 9.0, 3.0]), 9.0);
    }
}
