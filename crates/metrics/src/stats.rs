//! Small statistics helpers and ensemble aggregation.
//!
//! The sweep engine turns one experiment into hundreds of per-seed
//! [`RunSummary`]s; [`summarize_ensemble`] collapses such an ensemble
//! into per-metric [`Aggregate`]s (mean, stddev, p50/p95/p99) for the
//! sweep reports.

use crate::summary::RunSummary;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// sample; 0 for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    sorted_quantile(&sorted, q)
}

/// [`quantile`] on an already ascending-sorted sample.
fn sorted_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Distribution aggregate of one metric across an ensemble of runs.
/// All fields are 0 for an empty sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregate {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (interpolated).
    pub p50: f64,
    /// 95th percentile (interpolated).
    pub p95: f64,
    /// 99th percentile (interpolated).
    pub p99: f64,
}

/// Aggregates a sample into mean/stddev plus the p50/p95/p99 percentiles
/// the sweep reports quote. One sort serves all three percentiles.
pub fn aggregate(values: &[f64]) -> Aggregate {
    if values.is_empty() {
        return Aggregate::default();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    Aggregate {
        n: sorted.len(),
        mean: mean(&sorted),
        stddev: stddev(&sorted),
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        p50: sorted_quantile(&sorted, 0.50),
        p95: sorted_quantile(&sorted, 0.95),
        p99: sorted_quantile(&sorted, 0.99),
    }
}

/// Per-metric [`Aggregate`]s across an ensemble of [`RunSummary`]s —
/// what a multi-seed sweep reports per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleStats {
    /// Configuration label (taken from the caller, not the summaries).
    pub label: String,
    /// Number of runs aggregated.
    pub runs: usize,
    /// Makespan in minutes.
    pub makespan_mins: Aggregate,
    /// System utilization in `[0, 1]`.
    pub utilization: Aggregate,
    /// Mean job waiting time in seconds.
    pub mean_wait_secs: Aggregate,
    /// Throughput in jobs per minute.
    pub throughput_jobs_per_min: Aggregate,
    /// Evolving jobs whose dynamic request succeeded at least once.
    pub satisfied_dyn_jobs: Aggregate,
}

/// Aggregates an ensemble of per-seed [`RunSummary`]s into per-metric
/// distributions.
pub fn summarize_ensemble(label: impl Into<String>, summaries: &[RunSummary]) -> EnsembleStats {
    fn collect(summaries: &[RunSummary], f: impl Fn(&RunSummary) -> f64) -> Aggregate {
        let values: Vec<f64> = summaries.iter().map(f).collect();
        aggregate(&values)
    }
    EnsembleStats {
        label: label.into(),
        runs: summaries.len(),
        makespan_mins: collect(summaries, |s| s.makespan.as_mins_f64()),
        utilization: collect(summaries, |s| s.utilization),
        mean_wait_secs: collect(summaries, |s| s.mean_wait.as_secs_f64()),
        throughput_jobs_per_min: collect(summaries, |s| s.throughput_jobs_per_min),
        satisfied_dyn_jobs: collect(summaries, |s| s.satisfied_dyn_jobs as f64),
    }
}

/// Maximum; 0 for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn max_handles_empty() {
        assert_eq!(max(&[]), 0.0);
        assert_eq!(max(&[1.0, 9.0, 3.0]), 9.0);
    }

    #[test]
    fn aggregate_on_known_uniform_distribution() {
        // 1..=99 in shuffled order: every statistic is known exactly.
        let mut v: Vec<f64> = (1..=99).map(|i| ((i * 37) % 99 + 1) as f64).collect();
        v.dedup();
        let a = aggregate(&v);
        assert_eq!(a.n, 99);
        assert!((a.mean - 50.0).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 99.0);
        assert_eq!(a.p50, 50.0);
        assert!((a.p95 - 94.1).abs() < 1e-9, "p95 {}", a.p95);
        assert!((a.p99 - 98.02).abs() < 1e-9, "p99 {}", a.p99);
        // Population stddev of 1..=99: sqrt((99^2 - 1) / 12).
        let expected = ((99.0f64 * 99.0 - 1.0) / 12.0).sqrt();
        assert!((a.stddev - expected).abs() < 1e-9);
    }

    #[test]
    fn aggregate_degenerate_samples() {
        assert_eq!(aggregate(&[]), Aggregate::default());
        let a = aggregate(&[7.0, 7.0, 7.0]);
        assert_eq!(
            (a.mean, a.stddev, a.p50, a.p95, a.p99),
            (7.0, 0.0, 7.0, 7.0, 7.0)
        );
        let single = aggregate(&[3.5]);
        assert_eq!(
            (single.n, single.min, single.max, single.p99),
            (1, 3.5, 3.5, 3.5)
        );
    }

    #[test]
    fn ensemble_stats_aggregate_each_metric() {
        use dynbatch_core::{SimDuration, SimTime};
        let mk = |mins: u64, util: f64, satisfied: usize| {
            let mut s = RunSummary::from_outcomes("x", &[], SimTime::ZERO, SimTime::ZERO, util);
            s.makespan = SimDuration::from_secs(mins * 60);
            s.mean_wait = SimDuration::from_secs(mins);
            s.throughput_jobs_per_min = mins as f64;
            s.satisfied_dyn_jobs = satisfied;
            s
        };
        let e = summarize_ensemble("Dyn-HP", &[mk(10, 0.5, 3), mk(20, 0.7, 5)]);
        assert_eq!(e.label, "Dyn-HP");
        assert_eq!(e.runs, 2);
        assert!((e.makespan_mins.mean - 15.0).abs() < 1e-12);
        assert!((e.makespan_mins.p50 - 15.0).abs() < 1e-12);
        assert!((e.utilization.max - 0.7).abs() < 1e-12);
        assert!((e.mean_wait_secs.min - 10.0).abs() < 1e-12);
        assert!((e.satisfied_dyn_jobs.mean - 4.0).abs() < 1e-12);
        let empty = summarize_ensemble("none", &[]);
        assert_eq!(empty.runs, 0);
        assert_eq!(empty.makespan_mins, Aggregate::default());
    }
}
