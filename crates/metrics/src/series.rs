//! Per-job time series — the raw material of the paper's Figs 8–11.
//!
//! The figures plot *waiting time against job submission order*, for all
//! jobs (Figs 8, 10, 11) or for one job type (Fig 9, type L). This module
//! extracts those series from completed-job outcomes.

use dynbatch_core::JobOutcome;

/// Waiting times ordered by submission (ties broken by job id, i.e.
/// submission sequence).
pub fn waits_by_submission(outcomes: &[JobOutcome]) -> Vec<(u64, f64)> {
    let mut sorted: Vec<&JobOutcome> = outcomes.iter().collect();
    sorted.sort_by_key(|o| (o.submit_time, o.id));
    sorted
        .iter()
        .enumerate()
        .map(|(i, o)| (i as u64 + 1, o.wait().as_secs_f64()))
        .collect()
}

/// Waiting times of jobs named `name`, in submission order (Fig 9:
/// `name = "L"`).
pub fn waits_of_type(outcomes: &[JobOutcome], name: &str) -> Vec<f64> {
    let mut typed: Vec<&JobOutcome> = outcomes.iter().filter(|o| o.name == name).collect();
    typed.sort_by_key(|o| (o.submit_time, o.id));
    typed.iter().map(|o| o.wait().as_secs_f64()).collect()
}

/// Pairs two runs' waiting-time series by submission rank for side-by-side
/// comparison; shorter series are truncated to the common length.
pub fn paired_waits(a: &[JobOutcome], b: &[JobOutcome]) -> Vec<(u64, f64, f64)> {
    let wa = waits_by_submission(a);
    let wb = waits_by_submission(b);
    wa.iter()
        .zip(wb.iter())
        .map(|(&(i, x), &(_, y))| (i, x, y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{JobClass, JobId, SimTime, UserId};

    fn outcome(id: u64, name: &str, submit: u64, start: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            name: name.into(),
            user: UserId(0),
            class: JobClass::Rigid,
            cores_requested: 4,
            cores_final: 4,
            submit_time: SimTime::from_secs(submit),
            start_time: SimTime::from_secs(start),
            end_time: SimTime::from_secs(start + 10),
            dyn_requests: 0,
            dyn_grants: 0,
            backfilled: false,
        }
    }

    #[test]
    fn orders_by_submission() {
        let outs = vec![
            outcome(3, "B", 20, 50), // wait 30
            outcome(1, "A", 0, 5),   // wait 5
            outcome(2, "A", 10, 12), // wait 2
        ];
        let w = waits_by_submission(&outs);
        assert_eq!(w, vec![(1, 5.0), (2, 2.0), (3, 30.0)]);
    }

    #[test]
    fn filters_by_type() {
        let outs = vec![
            outcome(1, "L", 0, 100),
            outcome(2, "A", 1, 2),
            outcome(3, "L", 2, 42),
        ];
        assert_eq!(waits_of_type(&outs, "L"), vec![100.0, 40.0]);
        assert!(waits_of_type(&outs, "Z").is_empty());
    }

    #[test]
    fn pairing_truncates() {
        let a = vec![outcome(1, "A", 0, 1), outcome(2, "A", 1, 3)];
        let b = vec![outcome(1, "A", 0, 2)];
        let p = paired_waits(&a, &b);
        assert_eq!(p, vec![(1, 1.0, 2.0)]);
    }
}
