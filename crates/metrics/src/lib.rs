//! # dynbatch-metrics
//!
//! Accounting, statistics and reporting for batch-system runs: exact
//! busy-core utilization integration, Table-II-style run summaries,
//! waiting-time series (the paper's Figs 8–11), and terminal/CSV
//! rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fairness;
pub mod gantt;
pub mod recorder;
pub mod report;
pub mod series;
pub mod stats;
pub mod summary;

pub use fairness::{
    jain_index, per_user_excess, per_user_waits, user_wait_fairness, UserWaitSummary,
};
pub use gantt::{gantt_csv, gantt_rows, occupancy_csv, GanttRow};
pub use recorder::{throughput_jobs_per_min, UtilizationRecorder};
pub use report::{ascii_plot, render_csv, render_table2};
pub use series::{paired_waits, waits_by_submission, waits_of_type};
pub use stats::{aggregate, summarize_ensemble, Aggregate, EnsembleStats};
pub use summary::RunSummary;
