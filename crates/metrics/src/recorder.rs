//! Utilization recording.
//!
//! Integrates busy core-time over a run: the simulator (or daemon) reports
//! every change in the number of busy cores, and the recorder accumulates
//! exact core-seconds between changes. System utilization — the paper's
//! "Util [%]" column — is busy core-time divided by capacity × makespan.

use dynbatch_core::{SimDuration, SimTime};

/// Exact busy-core-time integrator.
#[derive(Debug, Clone)]
pub struct UtilizationRecorder {
    capacity: u32,
    start: SimTime,
    last_change: SimTime,
    busy_now: u32,
    core_millis: u128,
    /// (time, busy) samples at every change, for time-series plots.
    samples: Vec<(SimTime, u32)>,
    /// When false, the time series is not retained (low-memory streamed
    /// replays); the core-millis integral is exact either way.
    samples_enabled: bool,
}

impl UtilizationRecorder {
    /// A recorder for a system of `capacity` cores, starting at `start`.
    pub fn new(capacity: u32, start: SimTime) -> Self {
        UtilizationRecorder {
            capacity,
            start,
            last_change: start,
            busy_now: 0,
            core_millis: 0,
            samples: vec![(start, 0)],
            samples_enabled: true,
        }
    }

    /// Rewinds to a just-constructed recorder for `capacity` cores at
    /// `start`, retaining the sample buffer's storage (run recycling).
    /// Sample retention is re-enabled: it is a per-run choice.
    pub fn reset(&mut self, capacity: u32, start: SimTime) {
        self.capacity = capacity;
        self.start = start;
        self.last_change = start;
        self.busy_now = 0;
        self.core_millis = 0;
        self.samples.clear();
        self.samples.push((start, 0));
        self.samples_enabled = true;
    }

    /// Enables or disables time-series sample retention. With samples off
    /// the recorder runs in O(1) memory; `core_seconds`/`utilization`
    /// stay exact (they read the integral, not the series). Disabling
    /// drops any samples already buffered.
    pub fn set_samples_enabled(&mut self, enabled: bool) {
        self.samples_enabled = enabled;
        if !enabled {
            self.samples.clear();
        }
    }

    /// Reports that the busy-core count is `busy` as of `now`.
    pub fn record(&mut self, now: SimTime, busy: u32) {
        assert!(
            busy <= self.capacity,
            "busy {busy} exceeds capacity {}",
            self.capacity
        );
        assert!(now >= self.last_change, "time went backwards");
        self.core_millis +=
            self.busy_now as u128 * now.duration_since(self.last_change).as_millis() as u128;
        self.last_change = now;
        if busy != self.busy_now {
            self.busy_now = busy;
            if self.samples_enabled {
                self.samples.push((now, busy));
            }
        }
    }

    /// Busy core-seconds accumulated up to `end`.
    pub fn core_seconds(&self, end: SimTime) -> f64 {
        let tail = self.busy_now as u128 * end.duration_since(self.last_change).as_millis() as u128;
        (self.core_millis + tail) as f64 / 1000.0
    }

    /// Utilization over `[start, end]` as a fraction in `[0, 1]`.
    pub fn utilization(&self, end: SimTime) -> f64 {
        let span = end.duration_since(self.start).as_secs_f64();
        if span <= 0.0 || self.capacity == 0 {
            return 0.0;
        }
        self.core_seconds(end) / (self.capacity as f64 * span)
    }

    /// The busy-core time series (time, busy cores).
    pub fn samples(&self) -> &[(SimTime, u32)] {
        &self.samples
    }

    /// System capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

/// Computes makespan-derived throughput in jobs per minute.
pub fn throughput_jobs_per_min(jobs: usize, makespan: SimDuration) -> f64 {
    let mins = makespan.as_mins_f64();
    if mins <= 0.0 {
        0.0
    } else {
        jobs as f64 / mins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn integrates_exactly() {
        let mut r = UtilizationRecorder::new(10, t(0));
        r.record(t(0), 5);
        r.record(t(10), 10); // 5 cores × 10 s = 50 cs
        r.record(t(20), 0); // 10 × 10 = 100 cs
        assert!((r.core_seconds(t(30)) - 150.0).abs() < 1e-9);
        // Utilization over 30 s of a 10-core system: 150/300 = 0.5.
        assert!((r.utilization(t(30)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tail_usage_counts() {
        let mut r = UtilizationRecorder::new(4, t(0));
        r.record(t(0), 4);
        assert!((r.core_seconds(t(100)) - 400.0).abs() < 1e-9);
        assert!((r.utilization(t(100)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_span_is_zero() {
        let r = UtilizationRecorder::new(4, t(0));
        assert_eq!(r.utilization(t(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn overcapacity_panics() {
        let mut r = UtilizationRecorder::new(4, t(0));
        r.record(t(0), 5);
    }

    #[test]
    fn samples_dedupe_unchanged() {
        let mut r = UtilizationRecorder::new(4, t(0));
        r.record(t(1), 2);
        r.record(t(2), 2);
        r.record(t(3), 3);
        assert_eq!(r.samples().len(), 3); // initial, t=1, t=3
    }

    #[test]
    fn throughput() {
        assert!(
            (throughput_jobs_per_min(230, SimDuration::from_mins(265)) - 230.0 / 265.0).abs()
                < 1e-12
        );
        assert_eq!(throughput_jobs_per_min(10, SimDuration::ZERO), 0.0);
    }
}
