//! Rendering: ASCII tables, CSV export, terminal line plots.
//!
//! The benchmark harness prints the paper's tables and figures to stdout;
//! this module holds the shared formatting.

use crate::summary::RunSummary;
use std::fmt::Write as _;

/// Renders run summaries as the paper's Table II, using the first row as
/// the throughput baseline.
pub fn render_table2(rows: &[RunSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>11} {:>10} {:>8} {:>12} {:>12}",
        "Config", "Time [mins]", "Satisfied", "Util [%]", "TP [Jobs/min]", "TP [% Incr]"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    for (i, r) in rows.iter().enumerate() {
        let incr = if i == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", r.throughput_increase_pct(&rows[0]))
        };
        let _ = writeln!(
            out,
            "{:<10} {:>11.2} {:>10} {:>8.2} {:>12.2} {:>12}",
            r.label,
            r.makespan.as_mins_f64(),
            r.satisfied_dyn_jobs,
            r.utilization * 100.0,
            r.throughput_jobs_per_min,
            incr
        );
    }
    out
}

/// Renders `(x, series...)` rows as CSV with a header.
pub fn render_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// A crude fixed-height ASCII line plot of one or more series sharing an
/// x axis — enough to eyeball the shape of the paper's waiting-time
/// figures in a terminal. Series are drawn with distinct glyphs.
pub fn ascii_plot(title: &str, series: &[(&str, &[f64])], height: usize) -> String {
    const GLYPHS: [char; 5] = ['*', 'o', '+', 'x', '#'];
    let width = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if width == 0 || height == 0 {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let max = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, &v) in s.iter().enumerate() {
            let row = ((v / max) * (height - 1) as f64).round() as usize;
            let y = height - 1 - row.min(height - 1);
            grid[y][x] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let axis_val = max * (height - 1 - i) as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{axis_val:>10.0} |{line}");
    }
    let _ = writeln!(out, "{:>10} +{}", "", "-".repeat(width));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} = {name}", GLYPHS[i % GLYPHS.len()]))
        .collect();
    let _ = writeln!(out, "{:>12}{}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{SimDuration, SimTime};

    fn summary(label: &str, mins: u64, tp: f64) -> RunSummary {
        RunSummary {
            label: label.into(),
            makespan: SimDuration::from_mins(mins),
            jobs_completed: 230,
            satisfied_dyn_jobs: 43,
            utilization: 0.85,
            throughput_jobs_per_min: tp,
            mean_wait: SimDuration::from_secs(100),
            mean_turnaround: SimDuration::from_secs(500),
            backfilled_jobs: 10,
        }
    }

    #[test]
    fn table2_shape() {
        let rows = vec![summary("Static", 265, 0.86), summary("Dyn-HP", 238, 0.96)];
        let t = render_table2(&rows);
        assert!(t.contains("Static"));
        assert!(t.contains("Dyn-HP"));
        assert!(t.contains("11.6") || t.contains("11.")); // ~11.6% increase
        let first_data_line = t.lines().nth(2).unwrap();
        assert!(
            first_data_line.trim_end().ends_with('-'),
            "baseline has no incr"
        );
        let _ = SimTime::ZERO; // silence unused import lint paths in some cfgs
    }

    #[test]
    fn csv_rendering() {
        let csv = render_csv(&["id", "wait"], &[vec![1.0, 5.5], vec![2.0, 3.0]]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("id,wait"));
        assert_eq!(lines.next(), Some("1,5.5"));
        assert_eq!(lines.next(), Some("2,3"));
    }

    #[test]
    fn ascii_plot_renders() {
        let a = [0.0, 5.0, 10.0, 5.0];
        let b = [10.0, 10.0, 0.0, 0.0];
        let plot = ascii_plot("waits", &[("static", &a), ("dyn", &b)], 5);
        assert!(plot.contains("waits"));
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("static"));
    }

    #[test]
    fn ascii_plot_empty() {
        let plot = ascii_plot("empty", &[("s", &[])], 5);
        assert!(plot.contains("(no data)"));
    }
}
