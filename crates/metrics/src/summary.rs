//! Run summaries — the paper's Table II row.

use dynbatch_core::{JobOutcome, OutcomeTotals, SimDuration, SimTime};

use crate::recorder::throughput_jobs_per_min;

/// Aggregate results of one workload run, matching the columns of the
/// paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Configuration label ("Static", "Dyn-HP", "Dyn-500", ...).
    pub label: String,
    /// Total workload execution time (first submission → last completion).
    pub makespan: SimDuration,
    /// Jobs completed.
    pub jobs_completed: usize,
    /// Evolving jobs whose dynamic request succeeded at least once.
    pub satisfied_dyn_jobs: usize,
    /// System utilization in `[0, 1]`.
    pub utilization: f64,
    /// Throughput in jobs per minute.
    pub throughput_jobs_per_min: f64,
    /// Mean job waiting time.
    pub mean_wait: SimDuration,
    /// Mean job turnaround time.
    pub mean_turnaround: SimDuration,
    /// Jobs started by backfill.
    pub backfilled_jobs: usize,
}

impl RunSummary {
    /// Builds a summary from per-job outcomes plus the independently
    /// integrated utilization.
    pub fn from_outcomes(
        label: impl Into<String>,
        outcomes: &[JobOutcome],
        first_submit: SimTime,
        last_completion: SimTime,
        utilization: f64,
    ) -> Self {
        let mut totals = OutcomeTotals::default();
        for o in outcomes {
            totals.add(o);
        }
        Self::from_totals(label, &totals, first_submit, last_completion, utilization)
    }

    /// Builds a summary from incrementally-maintained [`OutcomeTotals`] —
    /// the O(1)-memory path for streamed replays that never retain the
    /// per-job outcome log. Integer math is identical to
    /// [`RunSummary::from_outcomes`], so both paths yield byte-equal
    /// summaries for the same run.
    pub fn from_totals(
        label: impl Into<String>,
        totals: &OutcomeTotals,
        first_submit: SimTime,
        last_completion: SimTime,
        utilization: f64,
    ) -> Self {
        let makespan = last_completion.duration_since(first_submit);
        let n = totals.jobs.max(1);
        RunSummary {
            label: label.into(),
            makespan,
            jobs_completed: totals.jobs as usize,
            satisfied_dyn_jobs: totals.satisfied_dyn as usize,
            utilization,
            throughput_jobs_per_min: throughput_jobs_per_min(totals.jobs as usize, makespan),
            mean_wait: SimDuration::from_millis(totals.sum_wait_ms / n),
            mean_turnaround: SimDuration::from_millis(totals.sum_turnaround_ms / n),
            backfilled_jobs: totals.backfilled as usize,
        }
    }

    /// Throughput increase relative to a baseline, in percent
    /// (the paper's last Table II column).
    pub fn throughput_increase_pct(&self, baseline: &RunSummary) -> f64 {
        if baseline.throughput_jobs_per_min <= 0.0 {
            return 0.0;
        }
        (self.throughput_jobs_per_min / baseline.throughput_jobs_per_min - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{JobClass, JobId, UserId};

    fn outcome(submit: u64, start: u64, end: u64, grants: u32, backfilled: bool) -> JobOutcome {
        JobOutcome {
            id: JobId(1),
            name: "A".into(),
            user: UserId(0),
            class: JobClass::Rigid,
            cores_requested: 4,
            cores_final: 4,
            submit_time: SimTime::from_secs(submit),
            start_time: SimTime::from_secs(start),
            end_time: SimTime::from_secs(end),
            dyn_requests: grants,
            dyn_grants: grants,
            backfilled,
        }
    }

    #[test]
    fn summary_aggregates() {
        let outs = vec![outcome(0, 10, 110, 0, false), outcome(0, 30, 100, 1, true)];
        let s =
            RunSummary::from_outcomes("Test", &outs, SimTime::ZERO, SimTime::from_secs(120), 0.8);
        assert_eq!(s.makespan, SimDuration::from_secs(120));
        assert_eq!(s.jobs_completed, 2);
        assert_eq!(s.satisfied_dyn_jobs, 1);
        assert_eq!(s.backfilled_jobs, 1);
        assert_eq!(s.mean_wait, SimDuration::from_secs(20));
        assert_eq!(s.mean_turnaround, SimDuration::from_secs(105));
        assert!((s.throughput_jobs_per_min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_increase() {
        let base = RunSummary::from_outcomes(
            "base",
            &[outcome(0, 0, 60, 0, false)],
            SimTime::ZERO,
            SimTime::from_secs(60),
            0.5,
        );
        let mut faster = base.clone();
        faster.throughput_jobs_per_min = base.throughput_jobs_per_min * 1.113;
        assert!((faster.throughput_increase_pct(&base) - 11.3).abs() < 1e-9);
    }

    #[test]
    fn empty_outcomes_are_safe() {
        let s = RunSummary::from_outcomes("empty", &[], SimTime::ZERO, SimTime::ZERO, 0.0);
        assert_eq!(s.jobs_completed, 0);
        assert_eq!(s.mean_wait, SimDuration::ZERO);
        assert_eq!(s.throughput_jobs_per_min, 0.0);
    }
}
