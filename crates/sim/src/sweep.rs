//! The deterministic parallel sweep engine.
//!
//! The paper's results are all *ensembles* — four Table-II
//! configurations, per-seed waiting-time distributions, multi-seed
//! ablations. This module shards a `(configuration × seed)` task matrix
//! across a scoped-thread worker pool so a campaign saturates every core,
//! while guaranteeing results **bit-identical to the serial path and
//! independent of worker count and scheduling order**:
//!
//! * **Task-indexed results.** Every task has a fixed id (`config_index ×
//!   seeds.len() + seed_index`); its result lands in a pre-sized slot
//!   vector at that id. Which worker ran it, and in what order, is
//!   unobservable in the output.
//! * **Per-task RNG streams.** A task derives all of its randomness from
//!   its `(config, seed)` coordinates — the workload generator receives
//!   the seed, and [`task_rng`] hands custom sweeps a decorrelated
//!   `SplitMix64` for the same coordinates. Nothing is drawn from a
//!   shared stream, so no task can perturb another.
//! * **Shared atomic cursor.** Workers pull the next task id from one
//!   `AtomicUsize`; the *assignment* of tasks to workers is racy and
//!   irrelevant, the *computation* of each task is pure.
//! * **Per-worker allocation recycling.** Each worker owns one
//!   [`BatchSim`] and rewinds it with [`BatchSim::reset`] between runs,
//!   reusing the event-queue, utilization-sample and accounting buffers
//!   instead of reallocating them hundreds of times per sweep.
//!
//! Plain `std::thread::scope` threads — no external runtime — keep the
//! workspace fully offline-buildable.

use crate::batch_sim::BatchSim;
use crate::experiment::{
    run_experiment_streamed_on, ExperimentConfig, ExperimentResult, IngestOptions,
};
use dynbatch_simtime::SplitMix64;
use dynbatch_workload::WorkloadItem;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested worker count: `0` means "one per available core".
/// The result is always at least 1.
pub fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `tasks` independent closures on `workers` threads and returns
/// their results **indexed by task id** — element `i` is `run(i)`,
/// regardless of which worker computed it or when.
///
/// `run` must derive everything from its task index (it is called exactly
/// once per index). A panic in any task propagates to the caller after
/// the scope unwinds.
pub fn parallel_tasks<T, F>(tasks: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_tasks_with(tasks, workers, || (), |(), idx| run(idx))
}

/// [`parallel_tasks`] with per-worker mutable state: `init` runs once on
/// each worker thread and the resulting state is threaded through every
/// task that worker executes — the hook that lets a sweep recycle one
/// simulator per worker. Determinism contract: `run`'s *result* must
/// depend only on the task index, never on the state's history (state is
/// a cache, not an input).
pub fn parallel_tasks_with<S, T, I, F>(tasks: usize, workers: usize, init: I, run: F) -> Vec<T>
where
    S: Send,
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = worker_count(workers).min(tasks.max(1));
    let cursor = AtomicUsize::new(0);
    let worker_loop = || {
        let mut state = init();
        let mut out: Vec<(usize, T)> = Vec::new();
        loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= tasks {
                break;
            }
            out.push((idx, run(&mut state, idx)));
        }
        out
    };

    let produced: Vec<Vec<(usize, T)>> = if workers <= 1 {
        vec![worker_loop()]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker_loop)).collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    };

    // Land every result in its task-id slot: the output order is a pure
    // function of the task matrix, not of thread scheduling.
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    for (idx, value) in produced.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "task {idx} computed twice");
        slots[idx] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task id was claimed exactly once"))
        .collect()
}

/// A decorrelated per-task RNG stream for custom sweep bodies: two
/// distinct `(config_index, seed)` coordinates never share a stream, and
/// the stream is independent of worker count by construction.
pub fn task_rng(config_index: usize, seed: u64) -> SplitMix64 {
    // One SplitMix64 step over the mixed coordinates decorrelates
    // neighbouring seeds (seed, seed+1, ...) into unrelated streams.
    let mixed = seed ^ (config_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SplitMix64::new(SplitMix64::new(mixed).next_u64())
}

/// One cell of the sweep matrix with its result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Index into the `configs` slice passed to [`run_sweep`].
    pub config: usize,
    /// The seed this run used.
    pub seed: u64,
    /// Everything the run produced.
    pub result: ExperimentResult,
}

/// Runs the full `(config × seed)` matrix and returns results in
/// row-major task order (`config` major, `seed` minor) — exactly the
/// order two nested serial loops would produce, whatever `workers` is.
///
/// `generate` builds the workload **stream** for one cell from its
/// configuration and seed; it must be a pure function of those two
/// values. The stream is admitted lazily through the default lookahead
/// window, so per-worker peak memory is O(window) rather than O(trace) —
/// a materialized `Vec` still works via `.into_iter()`. `workers = 0`
/// uses one worker per available core; `workers = 1` degrades to the
/// serial loop (same code path, same results).
pub fn run_sweep<G, S>(
    configs: &[ExperimentConfig],
    seeds: &[u64],
    workers: usize,
    generate: G,
) -> Vec<SweepResult>
where
    G: Fn(&ExperimentConfig, u64) -> S + Sync,
    S: Iterator<Item = WorkloadItem>,
{
    if configs.is_empty() || seeds.is_empty() {
        return Vec::new();
    }
    let tasks = configs.len() * seeds.len();
    let opts = IngestOptions::default();
    parallel_tasks_with(
        tasks,
        workers,
        || None::<BatchSim>,
        |sim_slot, idx| {
            let config = idx / seeds.len();
            let seed = seeds[idx % seeds.len()];
            let cfg = &configs[config];
            let workload = generate(cfg, seed);
            // Recycled path: rewind the worker's simulator in place. The
            // first task on a worker builds the simulator the recycled
            // path will reuse; routing both arms through the runner's
            // `reset` keeps them on the identical code path.
            let sim = sim_slot.get_or_insert_with(|| {
                let cluster = dynbatch_cluster::Cluster::homogeneous(cfg.nodes, cfg.cores_per_node);
                BatchSim::new(cluster, cfg.sched.clone())
            });
            let result = run_experiment_streamed_on(sim, cfg, workload, &opts);
            SweepResult {
                config,
                seed,
                result,
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{CredRegistry, DfsConfig, SchedulerConfig};
    use dynbatch_workload::{generate_synthetic, SyntheticConfig};

    fn small_config(label: &str, dfs: DfsConfig) -> ExperimentConfig {
        let mut sched = SchedulerConfig::paper_eval();
        sched.dfs = dfs;
        ExperimentConfig {
            label: label.into(),
            nodes: 4,
            cores_per_node: 8,
            sched,
        }
    }

    fn gen(_cfg: &ExperimentConfig, seed: u64) -> Vec<WorkloadItem> {
        let mut reg = CredRegistry::new();
        generate_synthetic(
            &SyntheticConfig {
                jobs: 12,
                seed,
                total_cores: 32,
                cores: (1, 16),
                ..Default::default()
            },
            &mut reg,
        )
    }

    #[test]
    fn parallel_tasks_results_are_task_indexed() {
        for workers in [1, 2, 3, 7] {
            let out = parallel_tasks(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_tasks_handles_edge_sizes() {
        assert!(parallel_tasks(0, 4, |i| i).is_empty());
        assert_eq!(parallel_tasks(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn task_rng_streams_are_decorrelated() {
        let a: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(task_rng(0, 1), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(task_rng(0, 2), |r, _| Some(r.next_u64()))
            .collect();
        let c: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(task_rng(1, 1), |r, _| Some(r.next_u64()))
            .collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Same coordinates → same stream, wherever/whenever it runs.
        let a2: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(task_rng(0, 1), |r, _| Some(r.next_u64()))
            .collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn sweep_is_worker_count_independent() {
        let configs = vec![
            small_config("hp", DfsConfig::highest_priority()),
            small_config(
                "capped",
                DfsConfig::uniform_target(200, dynbatch_core::SimDuration::from_hours(1)),
            ),
        ];
        let seeds = vec![1, 2, 3];
        let serial = run_sweep(&configs, &seeds, 1, |c, s| gen(c, s).into_iter());
        for workers in [2, 3, 5] {
            let parallel = run_sweep(&configs, &seeds, workers, |c, s| gen(c, s).into_iter());
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.config, p.config);
                assert_eq!(s.seed, p.seed);
                assert_eq!(s.result.summary, p.result.summary);
                assert_eq!(s.result.outcomes, p.result.outcomes);
                assert_eq!(s.result.stats, p.result.stats);
            }
        }
    }

    #[test]
    fn sweep_matches_fresh_serial_experiments() {
        let configs = vec![small_config("hp", DfsConfig::highest_priority())];
        let seeds = vec![7, 8];
        let swept = run_sweep(&configs, &seeds, 2, |c, s| gen(c, s).into_iter());
        for cell in &swept {
            let fresh =
                crate::experiment::run_experiment(&configs[0], &gen(&configs[0], cell.seed));
            assert_eq!(cell.result.summary, fresh.summary);
            assert_eq!(cell.result.outcomes, fresh.outcomes);
            assert_eq!(cell.result.stats, fresh.stats);
        }
    }

    #[test]
    fn empty_axes_yield_empty_sweeps() {
        let configs = vec![small_config("hp", DfsConfig::highest_priority())];
        assert!(run_sweep(&configs, &[], 4, |c, s| gen(c, s).into_iter()).is_empty());
        assert!(run_sweep(&[], &[1], 4, |c, s| gen(c, s).into_iter()).is_empty());
    }
}
