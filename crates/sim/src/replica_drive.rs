//! Replicated-ensemble driver: a [`BatchSim`] leader streaming its
//! journal to hot-standby followers after every event step.
//!
//! [`ReplicatedSim`] wraps an already-journaled [`BatchSim`] and a
//! [`ReplicationHub`], pumping the stream at every `step()` so follower
//! lag is bounded by one event's worth of records (plus whatever the
//! fault plan withholds). It tracks the worst observed append→apply lag
//! and can force convergence ([`ReplicatedSim::converge`]) to check the
//! replica-equivalence invariant: once a follower's watermark reaches
//! the leader's `total_appended`, its state digest must be byte-equal to
//! the leader's — same contract the server-side chaos suite pins, here
//! exercised against month-scale workload replay.

use crate::batch_sim::BatchSim;
use dynbatch_server::replication::{HubConfig, ReplicationHub};

/// Summary counters of a replicated run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaStats {
    /// Event steps driven.
    pub steps: u64,
    /// Worst observed `total_appended - min(follower watermark)` right
    /// after a pump (0 when every follower was fully caught up at every
    /// step).
    pub max_lag: u64,
    /// Journal records appended by the leader over the run.
    pub leader_appended: u64,
}

/// A [`BatchSim`] leader plus a follower ensemble fed from its journal.
pub struct ReplicatedSim {
    sim: BatchSim,
    hub: ReplicationHub,
    stats: ReplicaStats,
    pump_stride: u64,
}

impl ReplicatedSim {
    /// Wraps `sim` (which must already have its journal enabled — the
    /// stream is the journal) with `followers` hot standbys.
    ///
    /// # Panics
    ///
    /// Panics if `sim` has no journal.
    pub fn new(sim: BatchSim, followers: u32, cfg: HubConfig) -> Self {
        assert!(
            sim.server().journal().is_some(),
            "ReplicatedSim requires an enabled journal (call enable_journal first)"
        );
        let mut hub = ReplicationHub::new(cfg);
        for i in 0..followers {
            hub.add_follower(&format!("simrep{i}"));
        }
        let mut rs = ReplicatedSim {
            sim,
            hub,
            stats: ReplicaStats::default(),
            pump_stride: 1,
        };
        rs.pump();
        rs
    }

    /// Pumps the stream every `n` event steps instead of every step
    /// (minimum 1, the default). A batched cadence trades follower lag —
    /// still bounded, still measured in `max_lag` — for a cheaper leader
    /// hot path; the perf harness uses it to mirror a group-commit
    /// streaming interval.
    pub fn set_pump_stride(&mut self, n: u64) {
        self.pump_stride = n.max(1);
    }

    /// One leader event step followed by a stream pump; returns `false`
    /// once the event queue is exhausted.
    pub fn step(&mut self) -> bool {
        let more = self.sim.step();
        self.stats.steps += 1;
        if self.stats.steps.is_multiple_of(self.pump_stride) || !more {
            self.pump();
        }
        more
    }

    /// Drives the simulation to completion.
    pub fn run(&mut self) {
        while self.step() {}
    }

    fn pump(&mut self) {
        // Pin compaction behind the replicated watermark: records the
        // followers have not confirmed stay streamable as plain records,
        // so a hot follower crosses compaction via a Mark frame instead
        // of a full snapshot transfer.
        if let Some(w) = self.hub.replicated_watermark() {
            self.sim.journal_retain_from(w + 1);
        }
        self.hub.pump(self.sim.server());
        let appended = self.appended();
        self.stats.leader_appended = appended;
        if let Some(w) = self.hub.replicated_watermark() {
            self.stats.max_lag = self.stats.max_lag.max(appended.saturating_sub(w));
        }
    }

    fn appended(&self) -> u64 {
        self.sim
            .server()
            .journal()
            .map(|j| j.total_appended())
            .unwrap_or(0)
    }

    /// Pumps until every live follower has applied the full journal, then
    /// verifies each follower's state digest is byte-identical to the
    /// leader's. Errors on divergence, a dead ensemble, or a wedged
    /// stream.
    pub fn converge(&mut self) -> Result<(), String> {
        let target = self.appended();
        for round in 0.. {
            if round > 100_000 {
                return Err(format!(
                    "stream wedged: watermark {:?} never reached {target}",
                    self.hub.replicated_watermark()
                ));
            }
            let report = self.hub.pump(self.sim.server());
            if !report.errors.is_empty() {
                return Err(report.errors.join("; "));
            }
            // Batched-ack configs poll watermarks only every few pumps;
            // convergence needs fresh visibility each round.
            self.hub.refresh_acks();
            match self.hub.replicated_watermark() {
                None => return Err("no live followers".into()),
                Some(w) if w >= target => break,
                Some(_) => {}
            }
        }
        let leader = self.sim.server().state_digest();
        for (idx, name) in self.hub.follower_names().iter().enumerate() {
            match self.hub.follower_digest(idx) {
                Some(d) if d == leader => {}
                Some(_) => return Err(format!("follower {name} diverged from leader")),
                None => {} // dead or crashed by the fault plan — not a divergence
            }
        }
        Ok(())
    }

    /// Run counters (steps, worst lag, leader appended).
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// The leader simulation.
    pub fn sim(&self) -> &BatchSim {
        &self.sim
    }

    /// Mutable leader access (for workload loading before the run).
    pub fn sim_mut(&mut self) -> &mut BatchSim {
        &mut self.sim
    }

    /// The follower hub (watermarks, reads, failover).
    pub fn hub(&mut self) -> &mut ReplicationHub {
        &mut self.hub
    }

    /// Stops the follower threads and returns the leader simulation.
    pub fn shutdown(mut self) -> BatchSim {
        self.hub.shutdown();
        self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_cluster::Cluster;
    use dynbatch_core::{CredRegistry, SchedulerConfig};
    use dynbatch_server::replication::ReplFaultPlan;
    use dynbatch_workload::{generate_synthetic, SyntheticConfig};

    fn seeded_sim(jobs: usize) -> BatchSim {
        let cfg = SyntheticConfig {
            jobs,
            ..SyntheticConfig::default()
        };
        let mut reg = CredRegistry::default();
        let items = generate_synthetic(&cfg, &mut reg);
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), SchedulerConfig::paper_eval());
        sim.enable_journal(0);
        sim.load(&items);
        sim
    }

    #[test]
    fn replicated_run_converges_clean() {
        let mut rs = ReplicatedSim::new(seeded_sim(40), 2, HubConfig::default());
        rs.run();
        rs.converge().expect("followers converge to leader digest");
        let stats = rs.stats();
        assert!(stats.leader_appended > 40, "journal grew past submissions");
        rs.shutdown();
    }

    #[test]
    fn replicated_run_converges_under_faults() {
        let cfg = HubConfig {
            faults: ReplFaultPlan::from_seed(0xFACE, 2, 0),
            ..HubConfig::default()
        };
        let mut rs = ReplicatedSim::new(seeded_sim(40), 2, cfg);
        rs.run();
        rs.converge().expect("faulty stream still converges");
        rs.shutdown();
    }

    /// The group-commit perf posture all at once — compacting journal,
    /// batched watermark polls, strided pumps — with a compaction
    /// interval small enough that the stream crosses many snapshot
    /// boundaries. Regression guard for the seeding livelock: a fresh
    /// (stateless) follower must be seeded with an installable snapshot
    /// image, never a Mark frame it cannot cross.
    #[test]
    fn replicated_run_converges_batched_over_compactions() {
        let cfg = SyntheticConfig {
            jobs: 200,
            ..SyntheticConfig::default()
        };
        let mut reg = CredRegistry::default();
        let items = generate_synthetic(&cfg, &mut reg);
        let mut sim = BatchSim::new(Cluster::homogeneous(15, 8), SchedulerConfig::paper_eval());
        sim.enable_journal(64);
        sim.load(&items);
        let mut rs = ReplicatedSim::new(
            sim,
            2,
            HubConfig {
                digest_every: 0,
                ack_every: 64,
                ..HubConfig::default()
            },
        );
        rs.set_pump_stride(16);
        rs.run();
        rs.converge()
            .expect("batched cadence converges over compactions");
        rs.shutdown();
    }
}
