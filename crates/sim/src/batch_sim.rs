//! The discrete-event batch-system simulator.
//!
//! [`BatchSim`] couples the Torque-like server, the extended Maui scheduler
//! and the cluster substrate over a deterministic event queue. It stands in
//! for the paper's physical 15-node testbed: the decision code (scheduler,
//! server state machine, DFS accounting) is the same code the threaded
//! daemon runs; only the passage of time is virtual.
//!
//! Scheduling cadence follows Maui's triggers: an iteration runs after
//! every batch of simultaneous events that changes job or resource state
//! (submission, completion, dynamic request, failure) — the paper's
//! "Maui will instantly start a new iteration when a job or resource state
//! change occurs".

use crate::event::Event;
use dynbatch_cluster::Cluster;
use dynbatch_core::{
    ExecutionModel, FairshareMode, JobId, JobState, PhasedModel, SchedulerConfig, SimDuration,
    SimTime,
};
use dynbatch_metrics::UtilizationRecorder;
use dynbatch_sched::Maui;
use dynbatch_server::{Applied, PbsServer};
use dynbatch_simtime::{EventQueue, ScheduledEvent, Token};
use dynbatch_workload::WorkloadItem;
use std::collections::{HashMap, VecDeque};

/// Default lookahead window for streamed ingestion: submissions are
/// admitted into the event queue no further than this far beyond the
/// earliest pending event. One hour comfortably covers scheduler
/// reservation horizons while keeping resident admissions O(window).
pub const DEFAULT_LOOKAHEAD: SimDuration = SimDuration::from_hours(1);

/// Per-execution runtime bookkeeping for an active job.
#[derive(Debug)]
struct RunState {
    gen: u64,
    start: SimTime,
    finish_token: Option<Token>,
    kind: RunKind,
}

#[derive(Debug)]
enum RunKind {
    Fixed,
    Evolving {
        granted: bool,
    },
    Phased {
        model: Box<PhasedModel>,
        phase: usize,
        phase_start: SimTime,
        phase_token: Option<Token>,
    },
    /// A malleable work pool: remaining work drains at `cores` per
    /// millisecond; resizes rebase the drain rate.
    WorkPool {
        remaining_core_millis: u64,
        rate_cores: u32,
        last_update: SimTime,
    },
}

/// Counters the experiments report beyond per-job outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Scheduler iterations executed.
    pub cycles: u64,
    /// Dynamic requests granted.
    pub dyn_granted: u64,
    /// Dynamic requests rejected (any reason).
    pub dyn_rejected: u64,
    /// Dynamic rejections specifically due to the fairness policy (not
    /// resource shortage).
    pub dyn_rejected_fairness: u64,
    /// Jobs preempted for dynamic requests.
    pub preemptions: u64,
    /// Jobs killed at their walltime limit.
    pub walltime_kills: u64,
    /// Total delay charged to queued jobs by granted dynamic allocations,
    /// in milliseconds (the DFS ledger's raw material).
    pub delay_charged_ms: u64,
    /// Negotiated requests deferred (kept queued) at least once.
    pub dyn_deferred: u64,
    /// Negotiated requests that timed out without a grant.
    pub dyn_expired: u64,
    /// Malleable resizes applied (shrinks + grows).
    pub malleable_resizes: u64,
    /// Workload-item deletions applied (`qdel` by submission index),
    /// whether the item was running, queued, admitted-but-unsubmitted or
    /// not yet streamed in.
    pub qdels: u64,
}

/// Lifecycle of a `qdel` targeting a workload item by submission index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QdelPhase {
    /// Deletion requested; the item has not been submitted yet.
    Armed,
    /// The item submitted as this job before the deletion fired.
    Submitted(JobId),
    /// The deletion fired before the item was submitted; if the item has
    /// not even been admitted yet (streamed ingestion), admission must
    /// drop it rather than resurrect it.
    Cancelled,
}

/// Admission window over the workload: the specs of items whose Submit
/// events are in flight, indexed by workload position. A ring buffer —
/// `slots[i]` holds item `base + i`; consumed and cancelled slots at the
/// front are compacted away, so residency tracks the lookahead window
/// rather than the trace. The eager `load` path uses the same structure
/// (every item resident at once, shrinking as the run consumes them).
#[derive(Debug, Default)]
struct ItemWindow {
    base: u32,
    slots: VecDeque<Option<(dynbatch_core::JobSpec, Token)>>,
    resident: usize,
    peak_resident: usize,
}

impl ItemWindow {
    /// The workload index the next pushed item will get.
    fn next_index(&self) -> u32 {
        self.base + self.slots.len() as u32
    }

    fn push(&mut self, spec: dynbatch_core::JobSpec, token: Token) {
        self.slots.push_back(Some((spec, token)));
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
    }

    /// Records an item that was qdel'd before admission: it occupies its
    /// index (keeping later indices stable) but holds nothing.
    fn push_cancelled(&mut self) {
        self.slots.push_back(None);
        self.compact();
    }

    fn take(&mut self, idx: u32) -> Option<dynbatch_core::JobSpec> {
        let off = idx.checked_sub(self.base)? as usize;
        let slot = self.slots.get_mut(off)?.take()?;
        self.resident -= 1;
        self.compact();
        Some(slot.0)
    }

    /// Empties the slot, returning the pending Submit's token so the
    /// caller can cancel it.
    fn cancel_slot(&mut self, idx: u32) -> Option<Token> {
        let off = idx.checked_sub(self.base)? as usize;
        let slot = self.slots.get_mut(off)?.take()?;
        self.resident -= 1;
        self.compact();
        Some(slot.1)
    }

    fn compact(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    fn clear(&mut self) {
        self.base = 0;
        self.slots.clear();
        self.resident = 0;
        self.peak_resident = 0;
    }
}

/// The simulator.
pub struct BatchSim {
    queue: EventQueue<Event>,
    server: PbsServer,
    maui: Maui,
    util: UtilizationRecorder,
    window: ItemWindow,
    qdel_targets: HashMap<u32, QdelPhase>,
    stream_last_at: Option<SimTime>,
    runs: HashMap<JobId, RunState>,
    gens: HashMap<JobId, u64>,
    stats: SimStats,
    first_submit: Option<SimTime>,
    last_completion: SimTime,
    dyn_log: Vec<(SimTime, dynbatch_sched::DynDecision)>,
    dyn_log_enabled: bool,
    /// Reusable buffer for [`EventQueue::pop_group_into`]: one timestamp
    /// group of simultaneous events per [`BatchSim::step`].
    batch: Vec<ScheduledEvent<Event>>,
}

impl BatchSim {
    /// A simulator over `cluster` with scheduler configuration `config`.
    pub fn new(cluster: Cluster, config: SchedulerConfig) -> Self {
        let capacity = cluster.total_cores();
        let alloc = config.alloc;
        let guarantee = config.guarantee_evolving;
        let mut server = PbsServer::new(cluster, alloc);
        server.set_guarantee_evolving(guarantee);
        server.set_usage_half_life(config.fairshare.half_life);
        server.set_publish_usage(config.fairshare.mode == FairshareMode::TimeAware);
        BatchSim {
            queue: EventQueue::new(),
            server,
            maui: Maui::new(config),
            util: UtilizationRecorder::new(capacity, SimTime::ZERO),
            window: ItemWindow::default(),
            qdel_targets: HashMap::new(),
            stream_last_at: None,
            runs: HashMap::new(),
            gens: HashMap::new(),
            stats: SimStats::default(),
            first_submit: None,
            last_completion: SimTime::ZERO,
            dyn_log: Vec::new(),
            dyn_log_enabled: true,
            batch: Vec::new(),
        }
    }

    /// Rewinds this simulator to the state [`BatchSim::new`]`(cluster,
    /// config)` would construct, **reusing** the event-queue storage, the
    /// utilization sample buffer, the accounting ledger, the run/
    /// generation maps and the event-batch scratch. Behaviour after a
    /// reset is bit-identical to a fresh simulator (the sweep engine's
    /// equality tests pin this); only the allocator traffic differs —
    /// which is the point: a sweep worker recycles one `BatchSim` across
    /// hundreds of runs.
    pub fn reset(&mut self, cluster: Cluster, config: SchedulerConfig) {
        let capacity = cluster.total_cores();
        let alloc = config.alloc;
        let guarantee = config.guarantee_evolving;
        self.queue.reset();
        self.server.reset(cluster, alloc);
        self.server.set_guarantee_evolving(guarantee);
        self.server.set_usage_half_life(config.fairshare.half_life);
        self.server
            .set_publish_usage(config.fairshare.mode == FairshareMode::TimeAware);
        self.maui = Maui::new(config);
        self.util.reset(capacity, SimTime::ZERO);
        self.window.clear();
        self.qdel_targets.clear();
        self.stream_last_at = None;
        self.runs.clear();
        self.gens.clear();
        self.stats = SimStats::default();
        self.first_submit = None;
        self.last_completion = SimTime::ZERO;
        self.dyn_log.clear();
        self.dyn_log_enabled = true;
    }

    /// Loads a workload eagerly; every submission becomes an event at
    /// once. Equivalent to streamed ingestion with an unbounded lookahead
    /// window — [`BatchSim::run_streamed`] replays the same workload in
    /// O(window) resident items instead.
    pub fn load(&mut self, items: &[WorkloadItem]) {
        for item in items {
            self.admit(item.clone());
        }
    }

    /// Admits one workload item: its Submit event enters the queue and
    /// its spec parks in the admission window until the event fires —
    /// unless a qdel already cancelled this index, in which case the item
    /// is dropped on the floor (and still occupies its index).
    fn admit(&mut self, item: WorkloadItem) {
        self.first_submit = Some(
            self.first_submit
                .map_or(item.at, |f: SimTime| f.min(item.at)),
        );
        let idx = self.window.next_index();
        if self.qdel_targets.get(&idx) == Some(&QdelPhase::Cancelled) {
            self.window.push_cancelled();
            return;
        }
        let token = self.queue.schedule(item.at, Event::Submit(idx));
        self.window.push(item.spec, token);
    }

    /// Runs a streamed workload to completion: items are admitted lazily,
    /// no further than `window` beyond the earliest pending event, so
    /// resident admissions stay O(window) regardless of trace length.
    /// The stream must yield items in non-decreasing submit-time order
    /// (every `stream_*` generator and `SwfSource` does); results are
    /// identical to [`BatchSim::load`] + [`BatchSim::run`] on the
    /// materialized stream, for any window — the equality is pinned by
    /// the streaming-ingest test suite.
    pub fn run_streamed<S>(&mut self, mut stream: S, window: SimDuration)
    where
        S: Iterator<Item = WorkloadItem>,
    {
        let mut pending: Option<WorkloadItem> = None;
        loop {
            self.feed(&mut stream, &mut pending, window);
            if !self.step() {
                break;
            }
        }
    }

    /// Admits items from `stream` while they fall within `window` of the
    /// earliest pending event. With the queue empty the next item itself
    /// sets the horizon, so progress is guaranteed. Causality: any item
    /// left unadmitted lies strictly beyond every queued event, so the
    /// simulation clock can never pass an unadmitted submission time.
    fn feed<S>(&mut self, stream: &mut S, pending: &mut Option<WorkloadItem>, window: SimDuration)
    where
        S: Iterator<Item = WorkloadItem>,
    {
        loop {
            if pending.is_none() {
                *pending = stream.next();
            }
            let Some(item) = pending.as_ref() else {
                return;
            };
            let horizon = self.queue.peek_time().unwrap_or(item.at);
            if item.at > horizon.saturating_add(window) {
                return;
            }
            let item = pending.take().expect("checked above");
            if let Some(last) = self.stream_last_at {
                assert!(
                    item.at >= last,
                    "workload stream must yield submissions in non-decreasing time order"
                );
            }
            self.stream_last_at = Some(item.at);
            self.admit(item);
        }
    }

    /// Injects a node failure at `at`.
    pub fn inject_failure(&mut self, at: SimTime, node: dynbatch_core::NodeId) {
        self.queue.schedule(at, Event::FailNode(node));
    }

    /// Injects a node repair at `at`.
    pub fn inject_repair(&mut self, at: SimTime, node: dynbatch_core::NodeId) {
        self.queue.schedule(at, Event::RepairNode(node));
    }

    /// Turns on the server's write-ahead journal (a prerequisite for
    /// [`BatchSim::inject_server_crash`]). Cleared by [`BatchSim::reset`],
    /// like the rest of the server state.
    pub fn enable_journal(&mut self, snapshot_every: usize) {
        self.server.enable_journal(snapshot_every);
    }

    /// Raises the journal's compaction retain floor (see
    /// [`dynbatch_server::PbsServer::journal_retain_from`]) — replication
    /// drivers keep it at their replicated watermark so compaction never
    /// truncates the stream out from under a follower.
    pub fn journal_retain_from(&mut self, pos: u64) {
        self.server.journal_retain_from(pos);
    }

    /// Schedules a server crash + journal recovery at `at`. The server is
    /// rebuilt by snapshot-load + replay and the scheduler restarts with
    /// empty soft state; applications (their finish/phase/request events)
    /// are unaffected, exactly as in the threaded daemon's crash model.
    pub fn inject_server_crash(&mut self, at: SimTime) {
        self.queue.schedule(at, Event::ServerCrash);
    }

    /// Schedules an operator `qdel` of workload item `item` (0-based
    /// submission index) at `at`. Works in both ingestion modes: if the
    /// item is running or queued it is killed like a walltime kill; if it
    /// is admitted but not yet submitted its pending Submit is cancelled;
    /// if it has not even been streamed in yet (lazy ingestion) the index
    /// is marked so admission drops it instead of resurrecting it.
    pub fn inject_qdel(&mut self, at: SimTime, item: u32) {
        self.qdel_targets.entry(item).or_insert(QdelPhase::Armed);
        self.queue.schedule(at, Event::QDelItem(item));
    }

    /// Runs to completion (event queue drained).
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Processes one timestamp group (all simultaneous events plus the
    /// scheduler iteration that follows). Returns `false` when drained.
    pub fn step(&mut self) -> bool {
        // Batched pop: take the whole timestamp group in one call instead
        // of a pop-then-`peek_time` per event (`peek_time` is a linear
        // scan once cancelled finish/phase timers are buried in the
        // heap). Events scheduled *at* `now` while the group is applied —
        // zero-delay wakes, immediate expiries — join the same timestamp
        // group, exactly as the serial pop loop processed them.
        let mut batch = std::mem::take(&mut self.batch);
        let Some(now) = self.queue.pop_group_into(&mut batch) else {
            self.batch = batch;
            return false;
        };
        loop {
            // Submissions first within a timestamp group. Eager loading
            // hands Submits the lowest sequence numbers (everything else
            // is scheduled later), so the queue already yields them
            // first; lazy admission interleaves sequence numbers, so the
            // order is restored here. The sort is stable: relative order
            // among Submits and among non-Submits is untouched, making
            // this a no-op for eager runs.
            batch.sort_by_key(|ev| !matches!(ev.payload, Event::Submit(_)));
            for ev in batch.drain(..) {
                self.apply_event(ev.payload, now);
            }
            if self.queue.peek_time() != Some(now) {
                break;
            }
            self.queue.pop_group_into(&mut batch);
        }
        self.batch = batch;
        self.run_cycle(now);
        self.util.record(now, self.server.cluster().busy_cores());
        true
    }

    /// The server (for inspection).
    pub fn server(&self) -> &PbsServer {
        &self.server
    }

    /// The scheduler (for inspection).
    pub fn maui(&self) -> &Maui {
        &self.maui
    }

    /// Mutable access to the scheduler (for test/debug knobs such as
    /// [`Maui::set_plan_cache_enabled`]).
    pub fn maui_mut(&mut self) -> &mut Maui {
        &mut self.maui
    }

    /// Every dynamic decision taken over the run, in iteration order with
    /// the instant it was taken. Grants carry their exact
    /// [`dynbatch_sched::DelayCharge`]s, so two runs can be compared
    /// decision-by-decision.
    pub fn dyn_decision_log(&self) -> &[(SimTime, dynbatch_sched::DynDecision)] {
        &self.dyn_log
    }

    /// Simulation statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Whether dynamic decisions are appended to the decision log
    /// (default: yes). Disabled by long replays that only need the
    /// accounting digest; the counters in [`SimStats`] accumulate either
    /// way. Restored by [`BatchSim::reset`].
    pub fn set_dyn_log_enabled(&mut self, enabled: bool) {
        self.dyn_log_enabled = enabled;
        if !enabled {
            self.dyn_log.clear();
        }
    }

    /// Puts every O(trace)-growth side buffer into bounded-memory mode
    /// (or back): per-job accounting outcomes, utilization samples and
    /// the dynamic-decision log stop retaining history. All O(1)
    /// derivatives — accounting totals and digest, utilization integral,
    /// [`SimStats`] — keep accumulating identically. Restored to full
    /// retention by [`BatchSim::reset`].
    pub fn set_low_memory(&mut self, on: bool) {
        self.server.set_accounting_retention(!on);
        self.server.set_job_retention(!on);
        self.util.set_samples_enabled(!on);
        self.set_dyn_log_enabled(!on);
    }

    /// Peak number of simultaneously resident admitted-but-unsubmitted
    /// items over the run so far: O(trace) under [`BatchSim::load`],
    /// O(lookahead window) under [`BatchSim::run_streamed`].
    pub fn admission_peak(&self) -> usize {
        self.window.peak_resident
    }

    /// The utilization recorder.
    pub fn utilization(&self) -> &UtilizationRecorder {
        &self.util
    }

    /// First submission instant (once a workload is loaded).
    pub fn first_submit(&self) -> SimTime {
        self.first_submit.unwrap_or(SimTime::ZERO)
    }

    /// Last completion instant seen so far.
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    fn gen_of(&self, job: JobId) -> u64 {
        self.gens.get(&job).copied().unwrap_or(0)
    }

    fn is_current(&self, job: JobId, gen: u64) -> bool {
        self.gen_of(job) == gen && self.runs.contains_key(&job)
    }

    fn apply_event(&mut self, ev: Event, now: SimTime) {
        match ev {
            Event::Submit(idx) => {
                let spec = self
                    .window
                    .take(idx)
                    .expect("admitted item is submitted exactly once");
                let job = self.server.qsub(spec, now).expect("workload spec is valid");
                if let Some(phase) = self.qdel_targets.get_mut(&idx) {
                    if *phase == QdelPhase::Armed {
                        *phase = QdelPhase::Submitted(job);
                    }
                }
            }
            Event::QDelItem(idx) => {
                match self.qdel_targets.get(&idx).copied() {
                    Some(QdelPhase::Submitted(job)) => {
                        // The item became a job before the deletion fired:
                        // kill it like a walltime kill if still alive.
                        if self
                            .server
                            .job(job)
                            .map(|j| !j.state.is_terminal())
                            .unwrap_or(false)
                        {
                            self.cancel_run_events(job);
                            self.runs.remove(&job);
                            // Charge before the qdel, as in the WallKill
                            // arm: retention-off drops the record there.
                            self.charge_fairshare(job, now);
                            self.server.qdel(job, now).expect("live job deletable");
                            self.stats.qdels += 1;
                        }
                    }
                    Some(QdelPhase::Armed) | None => {
                        // Not yet submitted. If admitted, cancel the
                        // pending Submit; either way mark the index so a
                        // later lazy admission drops the item instead of
                        // resurrecting it.
                        if let Some(token) = self.window.cancel_slot(idx) {
                            self.queue.cancel(token);
                        }
                        self.qdel_targets.insert(idx, QdelPhase::Cancelled);
                        self.stats.qdels += 1;
                    }
                    Some(QdelPhase::Cancelled) => {}
                }
            }
            Event::Finish { job, gen } => {
                if !self.is_current(job, gen) {
                    return;
                }
                self.finish_job(job, now);
            }
            Event::WallKill { job, gen } => {
                if !self.is_current(job, gen) {
                    return;
                }
                // Still active at the walltime limit: the server kills it.
                if self
                    .server
                    .job(job)
                    .map(|j| j.state.is_active())
                    .unwrap_or(false)
                {
                    self.cancel_run_events(job);
                    self.runs.remove(&job);
                    // Fairshare is charged *before* the qdel: with job
                    // retention off the record is dropped at the qdel,
                    // and the charge reads nothing the qdel mutates, so
                    // the order is behaviour-neutral under retention.
                    self.charge_fairshare(job, now);
                    self.server.qdel(job, now).expect("active job killable");
                    self.stats.walltime_kills += 1;
                }
            }
            Event::RequestPoint { job, gen, attempt } => {
                if !self.is_current(job, gen) {
                    return;
                }
                let granted = match &self.runs[&job].kind {
                    RunKind::Evolving { granted } => *granted,
                    _ => return,
                };
                if granted {
                    return; // already expanded; later points are moot
                }
                let (extra, timeout) = {
                    let spec = &self.server.job(job).expect("running job exists").spec;
                    (spec.exec.extra_cores(), spec.dyn_timeout)
                };
                let _ = attempt;
                match timeout {
                    None => {
                        // A pending request (unlikely here) is a no-op.
                        let _ = self.server.tm_dynget(job, extra, now);
                    }
                    Some(t) => {
                        // Negotiation: the request may outlive this cycle;
                        // an expiry event times it out.
                        let deadline = now + t;
                        if self
                            .server
                            .tm_dynget_negotiated(job, extra, Some(deadline), now)
                            .is_ok()
                        {
                            self.queue.schedule(deadline, Event::DynExpire { job, gen });
                        }
                    }
                }
            }
            Event::DynExpire { job, gen } => {
                if !self.is_current(job, gen) {
                    return;
                }
                let expired = self.server.expire_dyn_requests(now);
                self.stats.dyn_expired += expired.len() as u64;
            }
            Event::PhaseEnd { job, gen, phase } => {
                if !self.is_current(job, gen) {
                    return;
                }
                self.phase_end(job, phase as usize, now);
            }
            Event::Wake => {}
            Event::FailNode(node) => {
                let victims = self.server.node_failed(node, now).expect("known node");
                for v in victims {
                    self.cancel_run_events(v);
                    self.runs.remove(&v);
                    // The job requeued; its next execution is a new
                    // generation.
                    *self.gens.entry(v).or_insert(0) += 1;
                }
            }
            Event::RepairNode(node) => {
                self.server.node_repaired(node).expect("known node");
            }
            Event::ServerCrash => {
                let journal = self
                    .server
                    .take_journal()
                    .expect("server crash events require enable_journal");
                self.server = PbsServer::recover(journal).expect("journal replays cleanly");
                // Recovery rebuilds journalled state only; per-process
                // flags are re-armed from the live config.
                let fs = &self.maui.config().fairshare;
                self.server
                    .set_publish_usage(fs.mode == FairshareMode::TimeAware);
                // The scheduler process dies with the server: reservation
                // history, fairshare charges and negotiation-delay
                // bookkeeping restart empty, as on a real restart.
                self.maui = Maui::new(self.maui.config().clone());
            }
        }
        self.util.record(now, self.server.cluster().busy_cores());
    }

    /// One scheduler iteration plus application of its outcome.
    fn run_cycle(&mut self, now: SimTime) {
        self.stats.cycles += 1;
        let snapshot = self.server.snapshot_incremental(now);
        let outcome = self.maui.iterate(&snapshot);
        for d in &outcome.dyn_decisions {
            if let dynbatch_sched::DynDecision::Granted { delays, .. } = d {
                self.stats.delay_charged_ms +=
                    delays.iter().map(|c| c.delay.as_millis()).sum::<u64>();
            }
            if self.dyn_log_enabled {
                self.dyn_log.push((now, d.clone()));
            }
        }
        let applied = self.server.apply(&outcome, now);
        let mut wake = false;
        for action in applied {
            match action {
                Applied::Started { job, .. } => {
                    // A malleable job that starts this instant is not in the
                    // snapshot's running set yet; wake the scheduler again so
                    // grow-on-idle can consider it immediately.
                    if self.maui.config().grow_malleable_on_idle
                        && self
                            .server
                            .job(job)
                            .map(|j| j.spec.malleable.is_some())
                            .unwrap_or(false)
                    {
                        wake = true;
                    }
                    self.on_started(job, now);
                }
                Applied::DynGranted { job, .. } => {
                    self.stats.dyn_granted += 1;
                    self.on_granted(job, now);
                }
                Applied::DynRejected { job: _, reason } => {
                    self.stats.dyn_rejected += 1;
                    if reason != dynbatch_sched::DfsReject::NoResources {
                        self.stats.dyn_rejected_fairness += 1;
                    }
                    // ESP-style jobs retry at their pre-scheduled points;
                    // phased jobs retry at the next adaptation.
                }
                Applied::DynDeferred { .. } => {
                    self.stats.dyn_deferred += 1;
                }
                Applied::Resized { job, to_cores, .. } => {
                    self.stats.malleable_resizes += 1;
                    self.on_resized(job, to_cores, now);
                }
                Applied::Preempted { job } => {
                    self.stats.preemptions += 1;
                    self.cancel_run_events(job);
                    self.runs.remove(&job);
                    *self.gens.entry(job).or_insert(0) += 1;
                }
            }
        }
        if wake {
            self.queue.schedule(now, Event::Wake);
        }
    }

    fn on_started(&mut self, job: JobId, now: SimTime) {
        let j = self.server.job(job).expect("started job exists");
        let exec = j.spec.exec.clone();
        let cores = j.cores_allocated;
        let walltime = j.spec.walltime;
        let gen = self.gen_of(job);

        let mut run = RunState {
            gen,
            start: now,
            finish_token: None,
            kind: RunKind::Fixed,
        };
        match &exec {
            ExecutionModel::Fixed { duration } => {
                run.finish_token = Some(
                    self.queue
                        .schedule(now + *duration, Event::Finish { job, gen }),
                );
            }
            ExecutionModel::Evolving { set, .. } => {
                run.kind = RunKind::Evolving { granted: false };
                run.finish_token =
                    Some(self.queue.schedule(now + *set, Event::Finish { job, gen }));
                for (i, offset) in exec.request_offsets().into_iter().enumerate() {
                    self.queue.schedule(
                        now + offset,
                        Event::RequestPoint {
                            job,
                            gen,
                            attempt: i as u32,
                        },
                    );
                }
            }
            ExecutionModel::WorkPool { work_core_millis } => {
                let dur = exec.static_duration(cores);
                run.kind = RunKind::WorkPool {
                    remaining_core_millis: *work_core_millis,
                    rate_cores: cores,
                    last_update: now,
                };
                run.finish_token = Some(self.queue.schedule(now + dur, Event::Finish { job, gen }));
            }
            ExecutionModel::Phased(model) => {
                // Growth wanted already for phase 0 would mean the user
                // under-sized the base allocation; request before computing
                // the phase would race the start — model it as a request at
                // the first boundary instead (finite phases guarantee one).
                let dur = model.phase_duration(0, cores);
                let token = self
                    .queue
                    .schedule(now + dur, Event::PhaseEnd { job, gen, phase: 0 });
                run.kind = RunKind::Phased {
                    model: Box::new(model.clone()),
                    phase: 0,
                    phase_start: now,
                    phase_token: Some(token),
                };
            }
        }
        // The walltime kill guard (a no-op for well-behaved jobs). One
        // grace millisecond lets a job whose runtime equals its walltime
        // exactly — every job with an unpadded walltime — complete before
        // the reaper looks at it, mirroring a real RMS's kill latency.
        self.queue.schedule(
            now + walltime + SimDuration::from_millis(1),
            Event::WallKill { job, gen },
        );
        self.runs.insert(job, run);
    }

    /// Rebases a malleable job's work-pool drain after a resize and
    /// reschedules its completion.
    fn on_resized(&mut self, job: JobId, new_cores: u32, now: SimTime) {
        let Some(run) = self.runs.get_mut(&job) else {
            return;
        };
        let gen = run.gen;
        let RunKind::WorkPool {
            remaining_core_millis,
            rate_cores,
            last_update,
        } = &mut run.kind
        else {
            return;
        };
        let drained =
            (*rate_cores as u64).saturating_mul(now.duration_since(*last_update).as_millis());
        *remaining_core_millis = remaining_core_millis.saturating_sub(drained);
        *rate_cores = new_cores;
        *last_update = now;
        let finish_in =
            SimDuration::from_millis(remaining_core_millis.div_ceil(new_cores.max(1) as u64));
        let remaining = *remaining_core_millis;
        if let Some(tok) = run.finish_token.take() {
            self.queue.cancel(tok);
        }
        let token = self
            .queue
            .schedule(now + finish_in, Event::Finish { job, gen });
        if let Some(run) = self.runs.get_mut(&job) {
            run.finish_token = Some(token);
        }
        debug_assert!(remaining > 0 || finish_in.is_zero());
    }

    fn on_granted(&mut self, job: JobId, now: SimTime) {
        if !self.runs.contains_key(&job) {
            return;
        }
        let (start, gen) = {
            let run = &self.runs[&job];
            (run.start, run.gen)
        };
        let server_job = self.server.job(job).expect("granted job exists");
        let exec = server_job.spec.exec.clone();
        let cores = server_job.cores_allocated;

        enum Plan {
            None,
            RescheduleFinish(SimTime),
            ReschedulePhase { at: SimTime, phase: u32 },
        }
        let plan = match &self.runs[&job].kind {
            RunKind::Fixed | RunKind::WorkPool { .. } => Plan::None,
            RunKind::Evolving { .. } => {
                let elapsed = now.duration_since(start);
                let total = exec
                    .evolved_total(elapsed)
                    .expect("evolving job has an evolution model");
                Plan::RescheduleFinish(start + total)
            }
            RunKind::Phased {
                model,
                phase,
                phase_start,
                ..
            } => {
                // Redistribute the remaining work of the current phase onto
                // the expanded allocation.
                let old_cores = cores - exec.extra_cores();
                let old_dur = model.phase_duration(*phase, old_cores);
                let elapsed = now.duration_since(*phase_start);
                let remaining_frac = if old_dur.is_zero() {
                    0.0
                } else {
                    1.0 - (elapsed.as_secs_f64() / old_dur.as_secs_f64()).min(1.0)
                };
                let new_remaining = model.phase_duration(*phase, cores).mul_f64(remaining_frac);
                Plan::ReschedulePhase {
                    at: now + new_remaining,
                    phase: *phase as u32,
                }
            }
        };

        match plan {
            Plan::None => {}
            Plan::RescheduleFinish(at) => {
                let run = self.runs.get_mut(&job).expect("run exists");
                if let Some(tok) = run.finish_token.take() {
                    self.queue.cancel(tok);
                }
                let token = self.queue.schedule(at, Event::Finish { job, gen });
                let run = self.runs.get_mut(&job).expect("run exists");
                run.finish_token = Some(token);
                if let RunKind::Evolving { granted } = &mut run.kind {
                    *granted = true;
                }
            }
            Plan::ReschedulePhase { at, phase } => {
                if let Some(run) = self.runs.get_mut(&job) {
                    if let RunKind::Phased { phase_token, .. } = &mut run.kind {
                        if let Some(tok) = phase_token.take() {
                            self.queue.cancel(tok);
                        }
                    }
                }
                let token = self.queue.schedule(at, Event::PhaseEnd { job, gen, phase });
                if let Some(run) = self.runs.get_mut(&job) {
                    if let RunKind::Phased { phase_token, .. } = &mut run.kind {
                        *phase_token = Some(token);
                    }
                }
            }
        }
    }

    fn phase_end(&mut self, job: JobId, phase: usize, now: SimTime) {
        let (gen, model) = {
            let Some(run) = self.runs.get_mut(&job) else {
                return;
            };
            let gen = run.gen;
            let RunKind::Phased {
                model,
                phase: cur,
                phase_token,
                ..
            } = &mut run.kind
            else {
                return;
            };
            debug_assert_eq!(*cur, phase);
            *phase_token = None;
            (gen, model.clone())
        };
        let next = phase + 1;
        if next >= model.phases.len() {
            self.finish_job(job, now);
            return;
        }
        if let Some(run) = self.runs.get_mut(&job) {
            if let RunKind::Phased {
                phase: cur,
                phase_start,
                ..
            } = &mut run.kind
            {
                *cur = next;
                *phase_start = now;
            }
        }
        let cores = self
            .server
            .job(job)
            .expect("running job exists")
            .cores_allocated;
        // Grid adaptation: if the next phase bursts the per-process
        // threshold, ask for more resources (tm_dynget through the mother
        // superior). The answer lands in this timestamp group's scheduler
        // cycle; on grant the phase is rescheduled from its very start.
        if model.wants_growth(next, cores)
            && self
                .server
                .job(job)
                .map(|j| j.state == JobState::Running)
                .unwrap_or(false)
        {
            let _ = self.server.tm_dynget(job, model.extra_cores, now);
        }
        let dur = model.phase_duration(next, cores);
        let token = self.queue.schedule(
            now + dur,
            Event::PhaseEnd {
                job,
                gen,
                phase: next as u32,
            },
        );
        if let Some(run) = self.runs.get_mut(&job) {
            if let RunKind::Phased { phase_token, .. } = &mut run.kind {
                *phase_token = Some(token);
            }
        }
    }

    fn finish_job(&mut self, job: JobId, now: SimTime) {
        self.cancel_run_events(job);
        self.runs.remove(&job);
        self.charge_fairshare(job, now);
        self.server
            .job_finished(job, now)
            .expect("active job finishes");
        self.maui.dfs_mut().job_left_queue(job);
        self.last_completion = self.last_completion.max(now);
    }

    fn charge_fairshare(&mut self, job: JobId, now: SimTime) {
        if let Ok(j) = self.server.job(job) {
            if let Some(start) = j.start_time {
                let span = now.duration_since(start);
                self.maui.fairshare_mut().charge_span(
                    j.spec.user,
                    j.cores_allocated.max(j.spec.cores),
                    span,
                );
            }
        }
    }

    fn cancel_run_events(&mut self, job: JobId) {
        if let Some(run) = self.runs.get_mut(&job) {
            if let Some(tok) = run.finish_token.take() {
                self.queue.cancel(tok);
            }
            if let RunKind::Phased { phase_token, .. } = &mut run.kind {
                if let Some(tok) = phase_token.take() {
                    self.queue.cancel(tok);
                }
            }
        }
    }
}

/// Convenience: elapsed runtime helper for tests.
pub fn runtime_of(start: SimTime, end: SimTime) -> SimDuration {
    end.duration_since(start)
}
