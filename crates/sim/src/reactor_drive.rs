//! Driving replayed command streams through the [`Reactor`] — the
//! equivalence harness behind the reactor's determinism gate.
//!
//! A [`CommandScript`] is a timestamped list of textual commands (built
//! from an SWF-style workload plus seeded dynamic/cancel/malformed ops).
//! [`drive_serial`] applies it directly to a `PbsServer` — the reference
//! semantics. [`drive_reactor`] delivers the same stream through N real
//! client threads racing into a [`Reactor`], tickets pre-assigned to the
//! stream order, while the host loop interleaves the identical
//! world-advance rule between admissions. The gate: state digest,
//! accounting log and every reply byte-identical to serial, at any client
//! count, with or without a mid-stream server crash (recovery from the
//! journal, fresh scheduler) — acked commands always survive.
//!
//! The world-advance rule between steps at time `now`: finish every
//! active job whose planned end (`start + walltime`) has passed, oldest
//! end first, cycling the scheduler at each finish instant; then expire
//! overdue negotiation windows; then apply the command and cycle. Both
//! paths run this exact loop, so any divergence is the reactor's fault.

use dynbatch_cluster::Cluster;
use dynbatch_core::{json, AllocPolicy, JobId, SchedulerConfig, SimTime};
use dynbatch_sched::Maui;
use dynbatch_server::reactor::{apply_to_server, parse_command, Reply};
use dynbatch_server::{PbsServer, Reactor, ReactorClient};
use dynbatch_simtime::SplitMix64;
use dynbatch_workload::WorkloadItem;
use std::thread;

/// One timestamped command line.
#[derive(Debug, Clone)]
pub struct ScriptStep {
    /// World time at which the command is applied.
    pub at: SimTime,
    /// The command text (possibly malformed — denials are part of the
    /// contract under test).
    pub line: String,
}

/// A deterministic command stream. Step index == reactor ticket.
#[derive(Debug, Clone)]
pub struct CommandScript {
    /// The steps, non-decreasing in `at`.
    pub steps: Vec<ScriptStep>,
}

/// [`script_from_workload`] over a workload stream. Script derivation is
/// inherently whole-trace (follow-up traffic draws on the total item
/// count), so the stream is materialized first; the bytes are identical
/// to calling [`script_from_workload`] on the materialized items.
pub fn script_from_stream<S>(stream: S, seed: u64) -> CommandScript
where
    S: Iterator<Item = WorkloadItem>,
{
    let items: Vec<WorkloadItem> = stream.collect();
    script_from_workload(&items, seed)
}

/// Builds a command script from a workload: one `qsub` per item at its
/// submit time, plus seeded follow-up traffic — `dynget` for evolving
/// jobs, `qstat` probes, `qdel` of a sprinkle of jobs (some unknown, so
/// denials are exercised) and deterministic malformed lines. Everything
/// derives from `seed`; the same seed always yields the same bytes.
pub fn script_from_workload(items: &[WorkloadItem], seed: u64) -> CommandScript {
    use dynbatch_server::reactor::format_qsub;
    let mut rng = SplitMix64::new(seed).derive(0x5C71);
    // (at, tiebreak, line): tiebreak preserves insertion order among
    // same-instant commands after the sort.
    let mut raw: Vec<(SimTime, usize, String)> = Vec::new();
    let mut n = 0usize;
    let mut push = |raw: &mut Vec<(SimTime, usize, String)>, at: SimTime, line: String| {
        raw.push((at, n, line));
        n += 1;
    };
    for (i, item) in items.iter().enumerate() {
        push(&mut raw, item.at, format_qsub(&item.spec));
        // Valid submissions get sequential ids starting at 1; every qsub
        // the generator emits is valid, so the id is known statically.
        let id = i as u64 + 1;
        if item.spec.exec.extra_cores() > 0 {
            let delay = 30 + rng.next_below(120);
            let extra = 1 + rng.next_below(item.spec.exec.extra_cores() as u64 + 2);
            let line = if rng.chance_permille(500) {
                format!("dynget {id} {extra} {}", 30_000 + rng.next_below(90) * 1000)
            } else {
                format!("dynget {id} {extra}")
            };
            push(
                &mut raw,
                item.at + dynbatch_core::SimDuration::from_secs(delay),
                line,
            );
        }
        if rng.chance_permille(250) {
            let probe = 1 + rng.next_below(items.len() as u64 + 4); // may be unknown
            push(
                &mut raw,
                item.at + dynbatch_core::SimDuration::from_secs(5),
                format!("qstat {probe}"),
            );
        }
        if rng.chance_permille(150) {
            let victim = 1 + rng.next_below(id + 3); // may be unknown/terminal
            push(
                &mut raw,
                item.at + dynbatch_core::SimDuration::from_secs(10 + rng.next_below(200)),
                format!("qdel {victim}"),
            );
        }
        if rng.chance_permille(120) {
            let bad = match rng.next_below(4) {
                0 => "qsub name=broken cores=banana".to_owned(),
                1 => format!("dynget {id}"),
                2 => "frobnicate 7".to_owned(),
                _ => format!("dynfree {id} 0"),
            };
            push(
                &mut raw,
                item.at + dynbatch_core::SimDuration::from_secs(1),
                bad,
            );
        }
    }
    raw.sort_by_key(|(at, tie, _)| (*at, *tie));
    CommandScript {
        steps: raw
            .into_iter()
            .map(|(at, _, line)| ScriptStep { at, line })
            .collect(),
    }
}

/// What a drive run produces; every field must be byte-identical between
/// serial and reactor paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveResult {
    /// Reply per step, indexed by ticket.
    pub replies: Vec<Reply>,
    /// Final `PbsServer::state_digest`.
    pub digest: String,
    /// Final accounting log, compact-JSON lines.
    pub accounting: String,
}

/// The shared world: server (journal on) + scheduler, advanced under the
/// module-documented rule.
struct World {
    server: PbsServer,
    maui: Maui,
    sched: SchedulerConfig,
}

impl World {
    fn new(cluster: Cluster, sched: SchedulerConfig) -> Self {
        let mut server = PbsServer::new(cluster, AllocPolicy::Pack);
        server.enable_journal(64);
        World {
            maui: Maui::new(sched.clone()),
            sched,
            server,
        }
    }

    fn cycle(&mut self, now: SimTime) {
        let snap = self.server.snapshot_incremental(now);
        let outcome = self.maui.iterate(&snap);
        self.server.apply(&outcome, now);
    }

    /// Finishes due jobs (oldest planned end first, cycling at each
    /// finish instant) and expires overdue negotiation windows.
    fn advance_to(&mut self, now: SimTime) {
        loop {
            let due = self
                .server
                .jobs()
                .filter(|j| j.state.is_active())
                .filter_map(|j| j.start_time.map(|s| (s + j.spec.walltime, j.id)))
                .filter(|(end, _)| *end <= now)
                .min();
            let Some((end, id)) = due else { break };
            let _ = self.server.job_finished(id, end);
            self.maui.dfs_mut().job_left_queue(id);
            self.cycle(end);
        }
        let _ = self.server.expire_dyn_requests(now);
    }

    /// One step: advance, apply (parse failures deny without touching the
    /// server — same bytes the reactor's parse stage produces), cycle.
    fn apply_line(&mut self, line: &str, now: SimTime) -> Reply {
        let reply = match parse_command(line) {
            Ok(cmd) => apply_to_server(&mut self.server, &cmd, now),
            Err(e) => Reply::Denied(e),
        };
        self.cycle(now);
        reply
    }

    /// The server "process" dies at a step boundary and recovers from its
    /// journal; scheduler soft state is rebuilt fresh. Every job whose
    /// submission was acked must still exist — ack-on-append means an
    /// acked command is in the journal by definition.
    fn crash_recover(&mut self, acked_jobs: &[JobId], now: SimTime) {
        let journal = self.server.take_journal().expect("journal enabled");
        self.server = PbsServer::recover(journal).expect("journal replays");
        self.maui = Maui::new(self.sched.clone());
        for &id in acked_jobs {
            assert!(
                self.server.job(id).is_ok(),
                "acked submission {id:?} lost in the crash"
            );
        }
        self.cycle(now);
    }
}

/// Extracts the jobs whose submission was acked so far (for the
/// acked-commands-survive assertion at a crash point).
fn acked_jobs(replies: &[Reply]) -> Vec<JobId> {
    replies
        .iter()
        .filter_map(|r| match r {
            Reply::Submitted(id) => Some(*id),
            _ => None,
        })
        .collect()
}

/// Serial reference: the script applied directly, one command at a time.
/// `crash_after`: crash + recover at that step boundary (after the step's
/// command applied and was acked).
pub fn drive_serial(
    script: &CommandScript,
    cluster: Cluster,
    sched: SchedulerConfig,
    crash_after: Option<usize>,
) -> DriveResult {
    let mut world = World::new(cluster, sched);
    let mut replies = Vec::with_capacity(script.steps.len());
    for (i, step) in script.steps.iter().enumerate() {
        world.advance_to(step.at);
        replies.push(world.apply_line(&step.line, step.at));
        if crash_after == Some(i) {
            world.crash_recover(&acked_jobs(&replies), step.at);
        }
    }
    DriveResult {
        replies,
        digest: world.server.state_digest(),
        accounting: accounting_text(&world.server),
    }
}

/// The reactor path: the same script, delivered by `n_clients` real
/// threads racing into one [`Reactor`] (step index pre-assigned as the
/// ticket, commands round-robined over connections), the host applying
/// admissible commands between the same world-advances as serial.
pub fn drive_reactor(
    script: &CommandScript,
    cluster: Cluster,
    sched: SchedulerConfig,
    n_clients: usize,
    crash_after: Option<usize>,
) -> DriveResult {
    assert!(n_clients > 0);
    let mut reactor = Reactor::new();
    // Replies must never spill into the slow-reader overflow path here:
    // clients pipeline every command before reading anything back.
    reactor.set_reply_capacity(script.steps.len() + 1);
    let clients: Vec<ReactorClient> = (0..n_clients).map(|_| reactor.connect()).collect();
    let mut world = World::new(cluster, sched);
    let mut replies: Vec<Option<Reply>> = vec![None; script.steps.len()];

    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, client) in clients.into_iter().enumerate() {
            let steps = &script.steps;
            handles.push(scope.spawn(move || {
                // Send this connection's share (true interleaving: all
                // clients race), then collect its replies — FIFO per
                // connection, so they pair with the sent tickets in order.
                let mine: Vec<u64> = (0..steps.len() as u64)
                    .filter(|t| *t as usize % n_clients == c)
                    .collect();
                for &t in &mine {
                    client.send_ticketed(t, &steps[t as usize].line);
                }
                let mut got: Vec<(u64, Reply)> = Vec::with_capacity(mine.len());
                for &t in &mine {
                    let r = client.recv().expect("reactor dropped before replying");
                    got.push((t, r));
                }
                got
            }));
        }

        // Host loop: admit exactly one ticket per step, running the
        // world-advance at the step's timestamp first — identical to the
        // serial loop even though arrival order is a thread race.
        for (i, step) in script.steps.iter().enumerate() {
            world.advance_to(step.at);
            while reactor.next_apply() <= i as u64 {
                let polled = reactor.poll_bounded(i as u64 + 1, |_, cmd| {
                    apply_to_server(&mut world.server, cmd, step.at)
                });
                if polled == 0 {
                    thread::yield_now();
                }
            }
            world.cycle(step.at);
            if crash_after == Some(i) {
                // All tickets ≤ i are applied AND acked (group commit
                // flushed inside poll); the crash must lose none of them.
                let acked: Vec<JobId> = script.steps[..=i]
                    .iter()
                    .enumerate()
                    .filter_map(|(t, s)| match parse_command(&s.line) {
                        Ok(dynbatch_server::reactor::Command::QSub(_)) => {
                            Some(JobId(count_qsubs(&script.steps[..t]) as u64 + 1))
                        }
                        _ => None,
                    })
                    .collect();
                world.crash_recover(&acked, step.at);
            }
        }

        for h in handles {
            for (t, r) in h.join().expect("client thread") {
                replies[t as usize] = Some(r);
            }
        }
    });

    DriveResult {
        replies: replies
            .into_iter()
            .map(|r| r.expect("every ticket must be answered"))
            .collect(),
        digest: world.server.state_digest(),
        accounting: accounting_text(&world.server),
    }
}

/// Well-formed `qsub` lines in a prefix — the count determines the next
/// assigned job id (parse is pure, so this is exact).
fn count_qsubs(steps: &[ScriptStep]) -> usize {
    steps
        .iter()
        .filter(|s| {
            matches!(
                parse_command(&s.line),
                Ok(dynbatch_server::reactor::Command::QSub(_))
            )
        })
        .count()
}

/// Accounting log as compact-JSON lines (shared digest format).
pub fn accounting_text(s: &PbsServer) -> String {
    s.accounting()
        .outcomes()
        .iter()
        .map(|o| json::model::outcome_to_json(o).to_string_compact())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{DfsConfig, ExecutionModel, GroupId, JobSpec, SimDuration, UserId};

    fn hp_sched() -> SchedulerConfig {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        cfg
    }

    fn small_workload(n: usize) -> Vec<WorkloadItem> {
        (0..n)
            .map(|i| {
                let spec = if i % 4 == 2 {
                    JobSpec::evolving(
                        format!("ev{i}"),
                        UserId(i as u32 % 5),
                        GroupId(0),
                        4 + (i as u32 % 3) * 4,
                        ExecutionModel::esp_evolving(600 + 40 * i as u64, 400, 4),
                    )
                } else {
                    JobSpec::rigid(
                        format!("j{i}"),
                        UserId(i as u32 % 5),
                        GroupId(0),
                        1 + (i as u32 * 13) % 48,
                        SimDuration::from_secs(120 + (i as u64 * 37) % 900),
                    )
                };
                WorkloadItem {
                    at: SimTime::from_secs(20 * i as u64),
                    spec,
                }
            })
            .collect()
    }

    #[test]
    fn script_generation_is_deterministic() {
        let items = small_workload(12);
        let a = script_from_workload(&items, 7);
        let b = script_from_workload(&items, 7);
        let lines = |s: &CommandScript| s.steps.iter().map(|x| x.line.clone()).collect::<Vec<_>>();
        assert_eq!(lines(&a), lines(&b));
        assert!(a.steps.len() >= items.len());
        assert!(a.steps.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn script_from_stream_matches_materialized() {
        let items = small_workload(12);
        let streamed = script_from_stream(items.iter().cloned(), 7);
        let eager = script_from_workload(&items, 7);
        let lines = |s: &CommandScript| {
            s.steps
                .iter()
                .map(|x| (x.at, x.line.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(lines(&streamed), lines(&eager));
    }

    #[test]
    fn reactor_path_matches_serial_small() {
        let items = small_workload(10);
        let script = script_from_workload(&items, 3);
        let serial = drive_serial(&script, Cluster::homogeneous(15, 8), hp_sched(), None);
        for n in [1, 3] {
            let r = drive_reactor(&script, Cluster::homogeneous(15, 8), hp_sched(), n, None);
            assert_eq!(r, serial, "reactor path diverged at {n} clients");
        }
    }

    #[test]
    fn crash_mid_stream_matches_serial_crash() {
        let items = small_workload(10);
        let script = script_from_workload(&items, 11);
        let crash = Some(script.steps.len() / 2);
        let serial = drive_serial(&script, Cluster::homogeneous(15, 8), hp_sched(), crash);
        let reactor = drive_reactor(&script, Cluster::homogeneous(15, 8), hp_sched(), 2, crash);
        assert_eq!(reactor, serial);
        // hp scheduling is soft-state-free: the crashed run's final state
        // equals the crash-free run's too.
        let clean = drive_serial(&script, Cluster::homogeneous(15, 8), hp_sched(), None);
        assert_eq!(serial.digest, clean.digest);
        assert_eq!(serial.accounting, clean.accounting);
    }
}
