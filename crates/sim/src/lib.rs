//! # dynbatch-sim
//!
//! The discrete-event batch-system simulator and experiment runner.
//!
//! [`BatchSim`] drives the identical server/scheduler code the threaded
//! daemon runs, but over virtual time — the substitution that lets this
//! repository reproduce the paper's multi-hour cluster experiments in
//! milliseconds, deterministically. [`run_experiment`] wraps a full run
//! into the aggregates the paper reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch_sim;
pub mod event;
pub mod experiment;
pub mod reactor_drive;
pub mod replica_drive;
pub mod sweep;

pub use batch_sim::{BatchSim, SimStats, DEFAULT_LOOKAHEAD};
pub use event::Event;
pub use experiment::{
    run_experiment, run_experiment_materialized, run_experiment_on, run_experiment_streamed,
    run_experiment_streamed_on, ExperimentConfig, ExperimentResult, IngestOptions, RunFingerprint,
};
pub use reactor_drive::{
    drive_reactor, drive_serial, script_from_stream, script_from_workload, CommandScript,
    DriveResult, ScriptStep,
};
pub use replica_drive::{ReplicaStats, ReplicatedSim};
pub use sweep::{parallel_tasks, parallel_tasks_with, run_sweep, task_rng, SweepResult};
