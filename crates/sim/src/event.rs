//! Simulation events.

use dynbatch_core::{JobId, NodeId};

/// Everything that can happen in the simulated batch system.
///
/// Events that concern a specific *execution* of a job carry the job's
/// generation counter: when a job is preempted and restarted, its
/// generation bumps and stale events from the earlier execution are
/// ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Submit workload item `idx`.
    Submit(u32),
    /// Operator `qdel` of workload item `idx` (by submission index).
    /// Kills the job if it already submitted; cancels the pending
    /// submission if the item is admitted but not yet submitted; and —
    /// the streamed-ingestion case — marks a not-yet-admitted item so
    /// lazy admission drops it instead of resurrecting it when the
    /// lookahead window reaches it.
    QDelItem(u32),
    /// The application of `job` exits.
    Finish {
        /// The job.
        job: JobId,
        /// Execution generation.
        gen: u64,
    },
    /// `job`'s walltime expires; kill it if still active.
    WallKill {
        /// The job.
        job: JobId,
        /// Execution generation.
        gen: u64,
    },
    /// An ESP-style evolving job reaches a dynamic-request point
    /// (16 % / 25 % of SET).
    RequestPoint {
        /// The job.
        job: JobId,
        /// Execution generation.
        gen: u64,
        /// Which request point (0 = first).
        attempt: u32,
    },
    /// A negotiated dynamic request's deadline passes; expire it if still
    /// pending.
    DynExpire {
        /// The job.
        job: JobId,
        /// Execution generation.
        gen: u64,
    },
    /// A phased (Quadflow-style) job finishes phase `phase`.
    PhaseEnd {
        /// The job.
        job: JobId,
        /// Execution generation.
        gen: u64,
        /// The phase that just completed.
        phase: u32,
    },
    /// An extra scheduler wake-up (used after a malleable job starts so
    /// the next iteration can grow it; a no-op state-wise).
    Wake,
    /// Node failure injection.
    FailNode(NodeId),
    /// Node repair injection.
    RepairNode(NodeId),
    /// The server crashes and restarts by snapshot-load + replay of its
    /// write-ahead journal. Requires journaling to be enabled on the
    /// simulated server; scheduler soft state is rebuilt from scratch,
    /// modelling a real server-process death (applications keep running —
    /// their events stay in the queue).
    ServerCrash,
}
