//! Experiment runner: workload in, paper-style results out.
//!
//! Wraps a full [`BatchSim`] run into the aggregates the paper reports —
//! a Table-II row ([`RunSummary`]), the per-job outcomes behind the
//! waiting-time figures, and the simulator counters.

use crate::batch_sim::{BatchSim, SimStats, DEFAULT_LOOKAHEAD};
use dynbatch_cluster::Cluster;
use dynbatch_core::{JobOutcome, SchedulerConfig, SimDuration};
use dynbatch_metrics::RunSummary;
use dynbatch_workload::WorkloadItem;

/// Cluster geometry plus scheduler configuration for one run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Display label ("Static", "Dyn-HP", ...).
    pub label: String,
    /// Number of compute nodes (the paper: 15).
    pub nodes: u32,
    /// Cores per node (the paper: 8).
    pub cores_per_node: u32,
    /// The full scheduler configuration.
    pub sched: SchedulerConfig,
}

impl ExperimentConfig {
    /// The paper's testbed (15 × 8 cores) under `sched`.
    pub fn paper_cluster(label: impl Into<String>, sched: SchedulerConfig) -> Self {
        ExperimentConfig {
            label: label.into(),
            nodes: 15,
            cores_per_node: 8,
            sched,
        }
    }
}

/// How a run ingests its workload and what it retains.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Streamed ingestion's lookahead window: submissions enter the event
    /// queue no further than this beyond the earliest pending event.
    pub window: SimDuration,
    /// Disable every O(trace) side buffer (per-job outcomes, utilization
    /// samples, the dynamic-decision log); aggregates and digests still
    /// accumulate. `ExperimentResult::outcomes` comes back empty.
    pub low_memory: bool,
    /// Capture a [`RunFingerprint`] of the end state, for byte-equality
    /// comparisons between ingestion modes.
    pub fingerprint: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            window: DEFAULT_LOOKAHEAD,
            low_memory: false,
            fingerprint: false,
        }
    }
}

/// An end-of-run identity check: two runs over the same workload under
/// the same configuration and retention mode must produce equal
/// fingerprints, whatever their ingestion mode or lookahead window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFingerprint {
    /// The server's full-state digest (jobs, cluster, allocator, plus
    /// retained outcomes when retention is on).
    pub state_digest: String,
    /// The accounting ledger's rolling FNV-1a digest over every recorded
    /// outcome — retention-mode independent by construction.
    pub accounting_digest: u64,
}

/// Everything a run produced.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The Table-II row.
    pub summary: RunSummary,
    /// Per-job outcomes (for the waiting-time figures). Empty when the
    /// run used [`IngestOptions::low_memory`].
    pub outcomes: Vec<JobOutcome>,
    /// Simulator counters.
    pub stats: SimStats,
    /// End-state fingerprint, when [`IngestOptions::fingerprint`] asked
    /// for one.
    pub fingerprint: Option<RunFingerprint>,
}

/// Runs `workload` to completion under `cfg` and aggregates the results.
///
/// # Panics
/// If the workload does not drain (a job neither finishes nor is killed —
/// impossible for well-formed workloads).
pub fn run_experiment(cfg: &ExperimentConfig, workload: &[WorkloadItem]) -> ExperimentResult {
    let cluster = Cluster::homogeneous(cfg.nodes, cfg.cores_per_node);
    let mut sim = BatchSim::new(cluster, cfg.sched.clone());
    run_loaded(&mut sim, cfg, workload)
}

/// Like [`run_experiment`], but recycles an existing simulator via
/// [`BatchSim::reset`] instead of constructing a fresh one — the sweep
/// engine's per-worker fast path. Results are bit-identical to
/// [`run_experiment`] (the `reset_reuse_matches_fresh` test and the
/// `BENCH_sweep` harness both pin it).
pub fn run_experiment_on(
    sim: &mut BatchSim,
    cfg: &ExperimentConfig,
    workload: &[WorkloadItem],
) -> ExperimentResult {
    sim.reset(
        Cluster::homogeneous(cfg.nodes, cfg.cores_per_node),
        cfg.sched.clone(),
    );
    run_loaded(sim, cfg, workload)
}

/// Like [`run_experiment`], but ingests the workload through a stream
/// with a bounded lookahead window: per-run peak memory is O(window),
/// independent of trace length. Results are identical to the eager path
/// for any window (the streaming-ingest test suite pins it).
pub fn run_experiment_streamed<S>(
    cfg: &ExperimentConfig,
    stream: S,
    opts: &IngestOptions,
) -> ExperimentResult
where
    S: Iterator<Item = WorkloadItem>,
{
    let cluster = Cluster::homogeneous(cfg.nodes, cfg.cores_per_node);
    let mut sim = BatchSim::new(cluster, cfg.sched.clone());
    run_experiment_streamed_on(&mut sim, cfg, stream, opts)
}

/// [`run_experiment_streamed`] over a recycled simulator — the sweep
/// engine's per-worker fast path in streaming form.
pub fn run_experiment_streamed_on<S>(
    sim: &mut BatchSim,
    cfg: &ExperimentConfig,
    stream: S,
    opts: &IngestOptions,
) -> ExperimentResult
where
    S: Iterator<Item = WorkloadItem>,
{
    sim.reset(
        Cluster::homogeneous(cfg.nodes, cfg.cores_per_node),
        cfg.sched.clone(),
    );
    sim.set_low_memory(opts.low_memory);
    sim.run_streamed(stream, opts.window);
    finish(sim, cfg, opts)
}

/// The eager counterpart of [`run_experiment_streamed`]: materialized
/// ingestion under the same [`IngestOptions`] (for apples-to-apples
/// memory and fingerprint comparisons).
pub fn run_experiment_materialized(
    cfg: &ExperimentConfig,
    workload: &[WorkloadItem],
    opts: &IngestOptions,
) -> ExperimentResult {
    let cluster = Cluster::homogeneous(cfg.nodes, cfg.cores_per_node);
    let mut sim = BatchSim::new(cluster, cfg.sched.clone());
    sim.set_low_memory(opts.low_memory);
    sim.load(workload);
    sim.run();
    finish(&mut sim, cfg, opts)
}

/// The shared tail of both entry points: `sim` must be in the fresh (or
/// just-reset) state for `cfg`.
fn run_loaded(
    sim: &mut BatchSim,
    cfg: &ExperimentConfig,
    workload: &[WorkloadItem],
) -> ExperimentResult {
    sim.load(workload);
    sim.run();
    finish(sim, cfg, &IngestOptions::default())
}

/// Aggregates a completed run. The summary is computed from the
/// accounting ledger's O(1) running totals — identical arithmetic to
/// [`RunSummary::from_outcomes`], but independent of whether per-job
/// outcomes were retained.
fn finish(sim: &mut BatchSim, cfg: &ExperimentConfig, opts: &IngestOptions) -> ExperimentResult {
    assert!(
        sim.server().is_drained(),
        "{}: workload did not drain ({} jobs stuck)",
        cfg.label,
        sim.server().queued_count() + sim.server().active_count()
    );

    let outcomes: Vec<JobOutcome> = sim.server().accounting().outcomes().to_vec();
    let end = sim.last_completion();
    let utilization = sim.utilization().utilization(end);
    let summary = RunSummary::from_totals(
        cfg.label.clone(),
        sim.server().accounting().totals(),
        sim.first_submit(),
        end,
        utilization,
    );
    let fingerprint = opts.fingerprint.then(|| RunFingerprint {
        state_digest: sim.server().state_digest(),
        accounting_digest: sim.server().accounting().digest(),
    });
    ExperimentResult {
        summary,
        outcomes,
        stats: sim.stats(),
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{CredRegistry, DfsConfig, SimDuration};
    use dynbatch_workload::{generate_esp, EspConfig};

    fn sched(dfs: DfsConfig) -> SchedulerConfig {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = dfs;
        cfg
    }

    #[test]
    fn small_synthetic_run_drains() {
        use dynbatch_workload::{generate_synthetic, SyntheticConfig};
        let mut reg = CredRegistry::new();
        let wl = generate_synthetic(
            &SyntheticConfig {
                jobs: 40,
                ..Default::default()
            },
            &mut reg,
        );
        let cfg = ExperimentConfig::paper_cluster("synth", sched(DfsConfig::highest_priority()));
        let res = run_experiment(&cfg, &wl);
        assert_eq!(res.outcomes.len(), 40);
        assert!(res.summary.utilization > 0.0);
        assert!(res.summary.makespan > SimDuration::ZERO);
    }

    #[test]
    fn esp_static_run_matches_paper_shape() {
        let mut reg = CredRegistry::new();
        let wl = generate_esp(&EspConfig::paper_static(), &mut reg);
        let cfg = ExperimentConfig::paper_cluster("Static", sched(DfsConfig::highest_priority()));
        let res = run_experiment(&cfg, &wl);
        assert_eq!(res.outcomes.len(), 230);
        assert_eq!(res.summary.satisfied_dyn_jobs, 0);
        // Paper: 265.78 min at 77.45 % utilization. Our rounding of job
        // sizes shifts totals a little; assert the ballpark.
        let mins = res.summary.makespan.as_mins_f64();
        assert!((200.0..330.0).contains(&mins), "makespan {mins} min");
        assert!(
            (0.60..0.92).contains(&res.summary.utilization),
            "util {}",
            res.summary.utilization
        );
    }

    #[test]
    fn esp_dynamic_hp_beats_static() {
        let mut reg = CredRegistry::new();
        let static_wl = generate_esp(&EspConfig::paper_static(), &mut reg);
        let dyn_wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);

        let st = run_experiment(
            &ExperimentConfig::paper_cluster("Static", sched(DfsConfig::highest_priority())),
            &static_wl,
        );
        let hp = run_experiment(
            &ExperimentConfig::paper_cluster("Dyn-HP", sched(DfsConfig::highest_priority())),
            &dyn_wl,
        );
        // The paper's headline: dynamic allocation shortens the workload
        // and raises utilization and throughput.
        assert!(hp.summary.satisfied_dyn_jobs > 0);
        assert!(
            hp.summary.makespan < st.summary.makespan,
            "dyn {} vs static {}",
            hp.summary.makespan,
            st.summary.makespan
        );
        assert!(hp.summary.throughput_jobs_per_min > st.summary.throughput_jobs_per_min);
    }

    #[test]
    fn reset_reuse_matches_fresh() {
        // One simulator recycled across *different* configurations and
        // workloads must reproduce fresh-simulator results bit for bit —
        // the property the sweep engine's allocation recycling rests on.
        let mut reg = CredRegistry::new();
        let static_wl = generate_esp(&EspConfig::paper_static(), &mut reg);
        let dyn_wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let cfg_static =
            ExperimentConfig::paper_cluster("Static", sched(DfsConfig::highest_priority()));
        let cfg_dyn = ExperimentConfig::paper_cluster(
            "Dyn-500",
            sched(DfsConfig::uniform_target(500, SimDuration::from_hours(1))),
        );

        let mut sim = crate::BatchSim::new(
            Cluster::homogeneous(cfg_dyn.nodes, cfg_dyn.cores_per_node),
            cfg_dyn.sched.clone(),
        );
        // Dirty the simulator with a full dynamic run, then reuse it for
        // both configurations in both orders.
        let first = crate::experiment::run_experiment_on(&mut sim, &cfg_dyn, &dyn_wl);
        let reused_static = crate::experiment::run_experiment_on(&mut sim, &cfg_static, &static_wl);
        let reused_dyn = crate::experiment::run_experiment_on(&mut sim, &cfg_dyn, &dyn_wl);

        let fresh_static = run_experiment(&cfg_static, &static_wl);
        let fresh_dyn = run_experiment(&cfg_dyn, &dyn_wl);
        for (reused, fresh) in [
            (&first, &fresh_dyn),
            (&reused_static, &fresh_static),
            (&reused_dyn, &fresh_dyn),
        ] {
            assert_eq!(reused.summary, fresh.summary);
            assert_eq!(reused.outcomes, fresh.outcomes);
            assert_eq!(reused.stats, fresh.stats);
        }
    }

    #[test]
    fn incremental_timeline_is_invisible_to_results() {
        // The delta-maintained availability timeline (the simulator's
        // default) must produce the same summary, outcomes and counters
        // as full per-iteration rebuilds — including across a reset,
        // which must not leak timeline state between runs.
        let mut reg = CredRegistry::new();
        let wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let cfg = ExperimentConfig::paper_cluster(
            "Dyn-500",
            sched(DfsConfig::uniform_target(500, SimDuration::from_hours(1))),
        );

        let incremental = run_experiment(&cfg, &wl);

        let mut sim = crate::BatchSim::new(
            Cluster::homogeneous(cfg.nodes, cfg.cores_per_node),
            cfg.sched.clone(),
        );
        sim.maui_mut().set_incremental_enabled(false);
        let rebuilt = run_loaded(&mut sim, &cfg, &wl);

        assert_eq!(incremental.summary, rebuilt.summary);
        assert_eq!(incremental.outcomes, rebuilt.outcomes);
        assert_eq!(incremental.stats, rebuilt.stats);

        // Reset brings back the default (incremental) path with a clean
        // epoch; the recycled run must still match.
        let recycled = crate::experiment::run_experiment_on(&mut sim, &cfg, &wl);
        assert_eq!(recycled.outcomes, incremental.outcomes);
        assert!(
            recycled.stats == incremental.stats,
            "reset must not leak timeline state"
        );
    }

    #[test]
    fn sharded_scheduler_is_invisible_to_results() {
        // `shards > 1` routes the whole run through the partitioned
        // timelines and the speculative planner; summary, outcomes and
        // counters must match the serial scheduler bit for bit — and a
        // reset must not leak shard state between runs.
        let mut reg = CredRegistry::new();
        let wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let mut cfg = ExperimentConfig::paper_cluster(
            "Dyn-500",
            sched(DfsConfig::uniform_target(500, SimDuration::from_hours(1))),
        );
        let serial = run_experiment(&cfg, &wl);

        cfg.sched.shards = 3;
        let mut sim = crate::BatchSim::new(
            Cluster::homogeneous(cfg.nodes, cfg.cores_per_node),
            cfg.sched.clone(),
        );
        sim.maui_mut().set_shard_workers(2);
        let sharded = run_loaded(&mut sim, &cfg, &wl);
        assert_eq!(serial.summary, sharded.summary);
        assert_eq!(serial.outcomes, sharded.outcomes);
        assert_eq!(serial.stats, sharded.stats);

        // Recycle the same simulator for a second sharded run.
        let recycled = crate::experiment::run_experiment_on(&mut sim, &cfg, &wl);
        assert_eq!(recycled.outcomes, serial.outcomes);
        assert_eq!(recycled.stats, serial.stats);
    }

    #[test]
    fn deterministic_experiments() {
        let mut reg = CredRegistry::new();
        let wl = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let cfg = ExperimentConfig::paper_cluster("Dyn-HP", sched(DfsConfig::highest_priority()));
        let a = run_experiment(&cfg, &wl);
        let b = run_experiment(&cfg, &wl);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats, b.stats);
    }
}
