//! A minimal, dependency-free stand-in for the `criterion` bench harness.
//!
//! The workspace must build fully offline, so the real registry crate is
//! unavailable. This shim implements exactly the API surface used by the
//! benches under `crates/bench/benches/` (`Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId::from_parameter`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros)
//! with a plain warmup-then-measure loop. It reports the mean wall-clock
//! time per iteration — no statistical machinery, no plots. Use
//! `perf_smoke` for the numbers that gate PRs; these benches are for
//! ad-hoc exploration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size.max(20),
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size.max(20), f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` with access to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter value alone.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new<P: Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up for ~10% of the samples (at least one call).
        for _ in 0..(self.sample_size / 10).max(1) {
            std::hint::black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({n} samples)",
        n = b.samples.len()
    );
}

/// Mirrors `criterion::black_box`; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $fun(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls >= 3);
    }
}
