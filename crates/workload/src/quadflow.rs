//! The Quadflow proxy — calibrated AMR phase models (paper §IV-A, Fig 7).
//!
//! Quadflow is an adaptive CFD solver: each iteration performs a grid
//! adaptation that may grow the number of cells, and therefore the
//! computational load, unpredictably. The paper evaluates two test cases:
//!
//! * **FlatPlate** — laminar boundary layer at Mach 2.6; 2 adaptations;
//!   the dynamic run requests more cores when a phase exceeds
//!   3 000 cells/process; dynamic execution saves ≈ 17 % (3 hours).
//! * **Cylinder** — supersonic flow at Mach 5.28; 5 adaptations;
//!   threshold 15 000 cells/process; dynamic execution saves ≈ 33 %
//!   (10 hours).
//!
//! We cannot run the proprietary solver, so each case is a
//! [`PhasedModel`]: a sequence of phases with calibrated cell counts and
//! per-cell costs such that (i) early phases run identically on 16 and 32
//! cores (the paper's under-loaded observation), (ii) only the final phase
//! crosses the growth threshold, and (iii) the 16-core, 32-core and
//! dynamic totals reproduce the paper's reported shapes. See DESIGN.md.

use crate::esp::WorkloadItem;
use dynbatch_core::{
    CredRegistry, ExecutionModel, JobSpec, Phase, PhasedModel, SimDuration, SimTime,
};
use dynbatch_simtime::SplitMix64;

/// The two Quadflow test cases of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuadflowCase {
    /// Laminar boundary layer over a flat plate, Mach 2.6.
    FlatPlate,
    /// Supersonic flow around a 2D cylinder, Mach 5.28.
    Cylinder,
}

impl QuadflowCase {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QuadflowCase::FlatPlate => "FlatPlate",
            QuadflowCase::Cylinder => "Cylinder",
        }
    }

    /// The static allocation both scenarios start from (16 cores,
    /// 8 processes per node on 2 nodes).
    pub fn base_cores(self) -> u32 {
        16
    }

    /// Cores added by the dynamic request (grow 16 → 32).
    pub fn extra_cores(self) -> u32 {
        16
    }

    /// The calibrated phase model.
    pub fn model(self) -> PhasedModel {
        match self {
            QuadflowCase::FlatPlate => PhasedModel {
                // 2 adaptations ⇒ 3 phases; the final one triples the grid.
                phases: vec![
                    Phase {
                        cells: 16_000,
                        cost_milli: 14_355,
                    },
                    Phase {
                        cells: 24_000,
                        cost_milli: 13_920,
                    },
                    Phase {
                        cells: 96_000,
                        cost_milli: 3_600,
                    },
                ],
                millis_per_cell_core: 1000.0,
                threshold_cells_per_proc: 3_000,
                saturation_cells_per_proc: 1_500,
                extra_cores: 16,
            },
            QuadflowCase::Cylinder => PhasedModel {
                // 5 adaptations ⇒ 6 phases; the bow shock resolves in the
                // final one.
                phases: vec![
                    Phase {
                        cells: 40_000,
                        cost_milli: 1_080,
                    },
                    Phase {
                        cells: 60_000,
                        cost_milli: 960,
                    },
                    Phase {
                        cells: 80_000,
                        cost_milli: 990,
                    },
                    Phase {
                        cells: 100_000,
                        cost_milli: 1_008,
                    },
                    Phase {
                        cells: 120_000,
                        cost_milli: 960,
                    },
                    Phase {
                        cells: 480_000,
                        cost_milli: 2_400,
                    },
                ],
                millis_per_cell_core: 1000.0,
                threshold_cells_per_proc: 15_000,
                saturation_cells_per_proc: 7_500,
                extra_cores: 16,
            },
        }
    }

    /// The case as a job execution model.
    pub fn execution_model(self) -> ExecutionModel {
        ExecutionModel::Phased(self.model())
    }
}

/// Parameters of a seeded Quadflow CFD campaign: a stream of evolving
/// phased jobs (randomly FlatPlate or Cylinder) from a pool of CFD
/// users, with exponential interarrivals — the paper's §IV-A test cases
/// as a *workload* rather than two standalone breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadflowConfig {
    /// RNG seed (case choice, user choice, interarrival gaps).
    pub seed: u64,
    /// Number of jobs in the campaign.
    pub jobs: usize,
    /// Number of distinct CFD users.
    pub users: usize,
    /// Mean interarrival time (exponential). Quadflow runs are hours
    /// long, so the default spacing is hours, not seconds.
    pub mean_interarrival: SimDuration,
}

impl Default for QuadflowConfig {
    fn default() -> Self {
        QuadflowConfig {
            seed: 2014,
            jobs: 8,
            users: 3,
            mean_interarrival: SimDuration::from_hours(2),
        }
    }
}

/// Generates a Quadflow campaign; deterministic per seed.
pub fn generate_quadflow(cfg: &QuadflowConfig, reg: &mut CredRegistry) -> Vec<WorkloadItem> {
    use crate::stream::WorkloadStream as _;
    stream_quadflow(cfg, reg).materialize()
}

/// The streaming form of [`generate_quadflow`]: same items, same RNG
/// draw order, O(1) memory per item. The returned stream owns its state
/// (users are interned into `reg` up front).
pub fn stream_quadflow(cfg: &QuadflowConfig, reg: &mut CredRegistry) -> QuadflowStream {
    assert!(cfg.users > 0 && cfg.jobs > 0, "need users and jobs");
    let users: Vec<_> = (0..cfg.users)
        .map(|i| {
            let user = reg.user_in_group(&format!("cfd{i:02}"), "cfd");
            (user, reg.group_of(user))
        })
        .collect();
    QuadflowStream {
        rng: SplitMix64::new(cfg.seed),
        users,
        mean_interarrival: cfg.mean_interarrival,
        jobs: cfg.jobs,
        t: SimTime::ZERO,
        i: 0,
    }
}

/// Iterator over Quadflow campaign submissions in arrival order (see
/// [`stream_quadflow`]).
#[derive(Debug, Clone)]
pub struct QuadflowStream {
    rng: SplitMix64,
    users: Vec<(dynbatch_core::UserId, dynbatch_core::GroupId)>,
    mean_interarrival: SimDuration,
    jobs: usize,
    t: SimTime,
    i: usize,
}

impl Iterator for QuadflowStream {
    type Item = WorkloadItem;

    fn next(&mut self) -> Option<WorkloadItem> {
        if self.i >= self.jobs {
            return None;
        }
        let i = self.i;
        self.i += 1;

        let u: f64 = self.rng.next_f64().max(1e-12);
        let gap = self.mean_interarrival.mul_f64(-u.ln());
        self.t = self.t.saturating_add(gap);

        let case = if self.rng.next_below(2) == 0 {
            QuadflowCase::FlatPlate
        } else {
            QuadflowCase::Cylinder
        };
        let (user, group) = self.users[self.rng.next_below(self.users.len() as u64) as usize];
        let spec = JobSpec::evolving(
            format!("{}-{i}", case.name()),
            user,
            group,
            case.base_cores(),
            case.execution_model(),
        );
        Some(WorkloadItem { at: self.t, spec })
    }
}

/// Per-phase runtime breakdown of one scenario (one bar of Fig 7).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBreakdown {
    /// Scenario label.
    pub label: String,
    /// Wall-clock seconds per phase.
    pub phase_secs: Vec<f64>,
    /// Cores used in each phase.
    pub phase_cores: Vec<u32>,
}

impl PhaseBreakdown {
    /// Total runtime in seconds.
    pub fn total_secs(&self) -> f64 {
        self.phase_secs.iter().sum()
    }

    /// Total runtime.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.total_secs())
    }
}

/// Computes the static scenario: every phase on `cores` cores.
pub fn static_breakdown(case: QuadflowCase, cores: u32) -> PhaseBreakdown {
    let m = case.model();
    PhaseBreakdown {
        label: format!("{} static-{}", case.name(), cores),
        phase_secs: (0..m.phases.len())
            .map(|k| m.phase_duration(k, cores).as_secs_f64())
            .collect(),
        phase_cores: vec![cores; m.phases.len()],
    }
}

/// Computes the dynamic scenario: start on `base_cores`; before each phase
/// that exceeds the threshold, grow by `extra_cores` (assuming the batch
/// system grants the request — the simulator-driven variant in the bench
/// harness exercises the full protocol).
pub fn dynamic_breakdown(case: QuadflowCase) -> PhaseBreakdown {
    let m = case.model();
    let mut cores = case.base_cores();
    let mut phase_secs = Vec::with_capacity(m.phases.len());
    let mut phase_cores = Vec::with_capacity(m.phases.len());
    for k in 0..m.phases.len() {
        if m.wants_growth(k, cores) {
            cores += m.extra_cores;
        }
        phase_secs.push(m.phase_duration(k, cores).as_secs_f64());
        phase_cores.push(cores);
    }
    PhaseBreakdown {
        label: format!("{} dynamic", case.name()),
        phase_secs,
        phase_cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_phases_identical_on_16_and_32() {
        for case in [QuadflowCase::FlatPlate, QuadflowCase::Cylinder] {
            let s16 = static_breakdown(case, 16);
            let s32 = static_breakdown(case, 32);
            let n = s16.phase_secs.len();
            for k in 0..n - 1 {
                assert_eq!(
                    s16.phase_secs[k],
                    s32.phase_secs[k],
                    "{}: phase {k} must not speed up with idle extra cores",
                    case.name()
                );
            }
            // The final phase does speed up.
            assert!(s32.phase_secs[n - 1] < s16.phase_secs[n - 1]);
        }
    }

    #[test]
    fn only_final_phase_triggers_growth() {
        for case in [QuadflowCase::FlatPlate, QuadflowCase::Cylinder] {
            let m = case.model();
            let n = m.phases.len();
            for k in 0..n - 1 {
                assert!(!m.wants_growth(k, 16), "{} phase {k}", case.name());
            }
            assert!(m.wants_growth(n - 1, 16));
            // And no re-trigger after growing to 32.
            assert!(!m.wants_growth(n - 1, 32));
        }
    }

    #[test]
    fn cylinder_savings_match_paper() {
        // Paper: the Cylinder test was 33 % faster (saving 10 hours).
        let s16 = static_breakdown(QuadflowCase::Cylinder, 16).total_secs();
        let dynamic = dynamic_breakdown(QuadflowCase::Cylinder).total_secs();
        let saving = (s16 - dynamic) / s16;
        assert!((0.30..=0.36).contains(&saving), "saving {saving}");
        let saved_hours = (s16 - dynamic) / 3600.0;
        assert!((9.0..=11.0).contains(&saved_hours), "{saved_hours} h");
    }

    #[test]
    fn flatplate_savings_match_paper() {
        // Paper: the FlatPlate test was 17 % faster (saving 3 hours).
        let s16 = static_breakdown(QuadflowCase::FlatPlate, 16).total_secs();
        let dynamic = dynamic_breakdown(QuadflowCase::FlatPlate).total_secs();
        let saving = (s16 - dynamic) / s16;
        assert!((0.14..=0.20).contains(&saving), "saving {saving}");
        let saved_hours = (s16 - dynamic) / 3600.0;
        assert!((2.5..=3.5).contains(&saved_hours), "{saved_hours} h");
    }

    #[test]
    fn dynamic_equals_static32() {
        // Since early phases are saturated, the dynamic run matches a
        // 32-core static run — the paper's "could also have been started
        // with 32 cores" observation.
        for case in [QuadflowCase::FlatPlate, QuadflowCase::Cylinder] {
            let s32 = static_breakdown(case, 32).total_secs();
            let dynamic = dynamic_breakdown(case).total_secs();
            assert!(
                (s32 - dynamic).abs() < 1.0,
                "{}: {s32} vs {dynamic}",
                case.name()
            );
        }
    }

    #[test]
    fn adaptation_counts() {
        assert_eq!(QuadflowCase::FlatPlate.model().phases.len(), 3); // 2 adaptations
        assert_eq!(QuadflowCase::Cylinder.model().phases.len(), 6); // 5 adaptations
    }

    #[test]
    fn dynamic_cores_grow_only_in_final_phase() {
        let d = dynamic_breakdown(QuadflowCase::Cylinder);
        let n = d.phase_cores.len();
        assert!(d.phase_cores[..n - 1].iter().all(|&c| c == 16));
        assert_eq!(d.phase_cores[n - 1], 32);
    }

    #[test]
    fn execution_models_validate() {
        for case in [QuadflowCase::FlatPlate, QuadflowCase::Cylinder] {
            case.execution_model().validate().expect("valid");
        }
    }

    #[test]
    fn campaign_is_deterministic_and_monotone() {
        let mut r1 = CredRegistry::new();
        let mut r2 = CredRegistry::new();
        let cfg = QuadflowConfig::default();
        let a = generate_quadflow(&cfg, &mut r1);
        let b = generate_quadflow(&cfg, &mut r2);
        assert_eq!(a, b);
        assert_eq!(r1, r2);
        assert_eq!(a.len(), cfg.jobs);
        let mut last = SimTime::ZERO;
        for item in &a {
            assert!(item.at >= last, "arrivals are monotone");
            last = item.at;
            assert_eq!(item.spec.cores, 16);
            item.spec.validate().expect("valid spec");
        }
        // Both cases appear at the default size/seed.
        assert!(a.iter().any(|i| i.spec.name.starts_with("FlatPlate")));
        assert!(a.iter().any(|i| i.spec.name.starts_with("Cylinder")));
        // Seed sensitivity.
        let mut cfg2 = cfg.clone();
        cfg2.seed = 7;
        assert_ne!(generate_quadflow(&cfg2, &mut CredRegistry::new()), a);
    }
}
