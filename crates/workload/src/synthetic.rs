//! Synthetic workload generation — random mixes of rigid and evolving
//! jobs for stress tests, property tests and ablation benches beyond the
//! fixed ESP mix.

use crate::esp::WorkloadItem;
use dynbatch_core::{
    CredRegistry, ExecutionModel, JobClass, JobSpec, SimDuration, SimTime, SpeedupModel,
};
use dynbatch_simtime::SplitMix64;

/// Parameters of a random workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of jobs.
    pub jobs: usize,
    /// Number of distinct users to spread jobs over.
    pub users: usize,
    /// System size (bounds job core requests).
    pub total_cores: u32,
    /// Mean interarrival time (exponential).
    pub mean_interarrival: SimDuration,
    /// Job runtime range, seconds (log-uniform).
    pub runtime_secs: (u64, u64),
    /// Job size range in cores (uniform).
    pub cores: (u32, u32),
    /// Fraction of jobs that are evolving, in `[0, 1]`.
    pub evolving_fraction: f64,
    /// Extra cores an evolving job requests.
    pub extra_cores: u32,
    /// DET = SET × this factor for evolving jobs.
    pub det_factor: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            seed: 7,
            jobs: 100,
            users: 8,
            total_cores: 120,
            mean_interarrival: SimDuration::from_secs(20),
            runtime_secs: (60, 1800),
            cores: (2, 40),
            evolving_fraction: 0.3,
            extra_cores: 4,
            det_factor: 0.7,
        }
    }
}

/// Generates a random workload; deterministic per seed.
pub fn generate_synthetic(cfg: &SyntheticConfig, reg: &mut CredRegistry) -> Vec<WorkloadItem> {
    use crate::stream::WorkloadStream as _;
    stream_synthetic(cfg, reg).materialize()
}

/// The streaming form of [`generate_synthetic`]: yields the same items,
/// same seeds, same RNG draw order, in O(1) memory per item — the
/// arrival process is monotone by construction, so arbitrarily long
/// synthetic traces replay without ever existing as a `Vec`.
///
/// Users are interned into `reg` up front; the returned stream owns all
/// its state (no registry borrow), so it can be moved into sweep-task
/// closures.
pub fn stream_synthetic(cfg: &SyntheticConfig, reg: &mut CredRegistry) -> SyntheticStream {
    assert!(cfg.users > 0 && cfg.jobs > 0, "need users and jobs");
    assert!(
        (0.0..=1.0).contains(&cfg.evolving_fraction),
        "evolving_fraction out of range"
    );
    let users: Vec<_> = (0..cfg.users)
        .map(|i| {
            let user = reg.user_in_group(&format!("synth{i:02}"), "synth");
            (user, reg.group_of(user))
        })
        .collect();
    let cores_lo = cfg.cores.0.max(1) as u64;
    let cores_hi = (cfg.cores.1.min(cfg.total_cores) as u64).max(cores_lo);
    SyntheticStream {
        rng: SplitMix64::new(cfg.seed),
        users,
        cores_lo,
        cores_hi,
        runtime_lo: cfg.runtime_secs.0.max(1) as f64,
        runtime_hi: cfg.runtime_secs.1.max(2) as f64,
        mean_interarrival: cfg.mean_interarrival,
        evolving_fraction: cfg.evolving_fraction,
        extra_cores: cfg.extra_cores,
        det_factor: cfg.det_factor,
        jobs: cfg.jobs,
        t: SimTime::ZERO,
        i: 0,
    }
}

/// Iterator over synthetic submissions in arrival order (see
/// [`stream_synthetic`]).
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    rng: SplitMix64,
    users: Vec<(dynbatch_core::UserId, dynbatch_core::GroupId)>,
    cores_lo: u64,
    cores_hi: u64,
    runtime_lo: f64,
    runtime_hi: f64,
    mean_interarrival: SimDuration,
    evolving_fraction: f64,
    extra_cores: u32,
    det_factor: f64,
    jobs: usize,
    t: SimTime,
    i: usize,
}

impl Iterator for SyntheticStream {
    type Item = WorkloadItem;

    fn next(&mut self) -> Option<WorkloadItem> {
        if self.i >= self.jobs {
            return None;
        }
        let i = self.i;
        self.i += 1;

        // Exponential interarrival via inverse CDF.
        let u: f64 = self.rng.next_f64().max(1e-12);
        let gap = self.mean_interarrival.mul_f64(-u.ln());
        self.t = self.t.saturating_add(gap);

        let (user, group) = self.users[self.rng.next_below(self.users.len() as u64) as usize];
        let cores = (self.cores_lo + self.rng.next_below(self.cores_hi - self.cores_lo + 1)) as u32;
        // Log-uniform runtime: heavy-tailed like real workloads.
        let runtime = (self.runtime_lo.ln()
            + self.rng.next_f64() * (self.runtime_hi.ln() - self.runtime_lo.ln()))
        .exp() as u64;
        let evolving = self.rng.next_f64() < self.evolving_fraction;

        let (class, exec) = if evolving {
            let det = ((runtime as f64) * self.det_factor).max(1.0) as u64;
            (
                JobClass::Evolving,
                ExecutionModel::Evolving {
                    set: SimDuration::from_secs(runtime),
                    det: SimDuration::from_secs(det),
                    extra_cores: self.extra_cores,
                    request_points: vec![0.16, 0.25],
                    speedup: SpeedupModel::Interpolate,
                },
            )
        } else {
            (
                JobClass::Rigid,
                ExecutionModel::Fixed {
                    duration: SimDuration::from_secs(runtime),
                },
            )
        };
        Some(WorkloadItem {
            at: self.t,
            spec: JobSpec {
                name: format!("synth-{i}"),
                user,
                group,
                class,
                cores,
                walltime: SimDuration::from_secs(runtime),
                exec,
                priority_boost: 0,
                suppress_backfill_while_queued: false,
                malleable: None,
                moldable: None,
                dyn_timeout: None,
                queue: None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = CredRegistry::new();
        let mut r2 = CredRegistry::new();
        let cfg = SyntheticConfig::default();
        assert_eq!(
            generate_synthetic(&cfg, &mut r1),
            generate_synthetic(&cfg, &mut r2)
        );
    }

    #[test]
    fn respects_bounds() {
        let mut reg = CredRegistry::new();
        let cfg = SyntheticConfig {
            jobs: 200,
            ..Default::default()
        };
        let items = generate_synthetic(&cfg, &mut reg);
        assert_eq!(items.len(), 200);
        let mut last = SimTime::ZERO;
        for it in &items {
            assert!(it.at >= last, "arrivals are monotone");
            last = it.at;
            assert!((cfg.cores.0..=cfg.cores.1).contains(&it.spec.cores));
            let rt = it.spec.exec.static_duration(it.spec.cores).as_secs();
            assert!((cfg.runtime_secs.0..=cfg.runtime_secs.1 + 1).contains(&rt));
            it.spec.validate().expect("valid spec");
        }
    }

    #[test]
    fn evolving_fraction_roughly_holds() {
        let mut reg = CredRegistry::new();
        let cfg = SyntheticConfig {
            jobs: 1000,
            evolving_fraction: 0.3,
            ..Default::default()
        };
        let items = generate_synthetic(&cfg, &mut reg);
        let evolving = items
            .iter()
            .filter(|i| i.spec.class == JobClass::Evolving)
            .count() as f64;
        let frac = evolving / items.len() as f64;
        assert!((0.25..0.35).contains(&frac), "{frac}");
    }

    #[test]
    fn zero_fraction_all_rigid() {
        let mut reg = CredRegistry::new();
        let cfg = SyntheticConfig {
            evolving_fraction: 0.0,
            ..Default::default()
        };
        let items = generate_synthetic(&cfg, &mut reg);
        assert!(items.iter().all(|i| i.spec.class == JobClass::Rigid));
    }
}
