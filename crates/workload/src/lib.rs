//! # dynbatch-workload
//!
//! Workload generators for evaluating the dynamic batch system:
//!
//! * [`esp`] — the ESP utilization benchmark and the paper's **dynamic
//!   ESP** variant (Table I: 230 jobs, 30 % evolving);
//! * [`quadflow`] — calibrated AMR phase models of the paper's Quadflow
//!   FlatPlate / Cylinder test cases (Fig 7);
//! * [`synthetic`] — seeded random rigid/evolving mixes for stress and
//!   property tests;
//! * [`swf`] — Standard Workload Format ingestion (Parallel Workloads
//!   Archive traces);
//! * [`trace`] — JSON serialisation/replay of any workload.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod esp;
pub mod quadflow;
pub mod swf;
pub mod synthetic;
pub mod trace;

pub use esp::{generate_esp, static_core_seconds, EspConfig, EspJobType, WorkloadItem, ESP_TABLE};
pub use quadflow::{dynamic_breakdown, static_breakdown, PhaseBreakdown, QuadflowCase};
pub use swf::{parse_swf, write_swf, SwfConfig, SwfError};
pub use synthetic::{generate_synthetic, SyntheticConfig};
pub use trace::Trace;
