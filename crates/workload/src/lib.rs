//! # dynbatch-workload
//!
//! Workload generators for evaluating the dynamic batch system:
//!
//! * [`esp`] — the ESP utilization benchmark and the paper's **dynamic
//!   ESP** variant (Table I: 230 jobs, 30 % evolving);
//! * [`quadflow`] — calibrated AMR phase models of the paper's Quadflow
//!   FlatPlate / Cylinder test cases (Fig 7);
//! * [`synthetic`] — seeded random rigid/evolving mixes for stress and
//!   property tests;
//! * [`swf`] — Standard Workload Format ingestion (Parallel Workloads
//!   Archive traces);
//! * [`trace`] — JSON serialisation/replay of any workload.
//!
//! Every generator has a **streaming** form (`stream_*`, [`SwfSource`])
//! yielding [`WorkloadItem`]s in submit-time order on demand, and a
//! materialising form (`generate_*`, [`parse_swf`]) defined as the
//! stream's [`WorkloadStream::materialize`] — so the two are identical
//! by construction and month-scale traces can replay in O(lookahead)
//! memory through `BatchSim::run_streamed`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod esp;
pub mod quadflow;
pub mod stream;
pub mod swf;
pub mod synthetic;
pub mod trace;

pub use esp::{
    generate_esp, static_core_seconds, stream_esp, EspConfig, EspJobType, EspStream, WorkloadItem,
    ESP_TABLE,
};
pub use quadflow::{
    dynamic_breakdown, generate_quadflow, static_breakdown, stream_quadflow, PhaseBreakdown,
    QuadflowCase, QuadflowConfig, QuadflowStream,
};
pub use stream::WorkloadStream;
pub use swf::{
    parse_swf, parse_swf_with_stats, write_swf, write_swf_to, SwfConfig, SwfError, SwfSource,
    SwfStats,
};
pub use synthetic::{generate_synthetic, stream_synthetic, SyntheticConfig, SyntheticStream};
pub use trace::Trace;
