//! The ESP benchmark and the paper's dynamic variant (Table I).
//!
//! The original ESP system-utilization benchmark (Wong et al., SC 2000)
//! runs 230 jobs of 14 types, each sized as a fraction of the whole
//! machine, with a prescribed submission schedule and two full-machine
//! "Z" jobs that must run at highest priority with backfilling disabled.
//!
//! The paper modifies ESP so that types F, G, H, I and J (69 jobs, 30 %)
//! are *evolving*: each requests 4 extra cores after 16 % of its static
//! execution time (modelled on the Quadflow Cylinder case), retries once
//! at 25 %, and — if granted — finishes after its *dynamic* execution time
//! (DET) instead of its *static* one (SET).

use dynbatch_core::{
    CredRegistry, ExecutionModel, JobClass, JobSpec, SimDuration, SimTime, SpeedupModel,
};
use dynbatch_simtime::SplitMix64;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EspJobType {
    /// Type letter ("A" … "M", "Z").
    pub name: &'static str,
    /// Submitting user (one per rigid type; all evolving types belong to
    /// `user06`).
    pub user: &'static str,
    /// Job size as a fraction of total system cores.
    pub size_frac: f64,
    /// Number of instances in the workload.
    pub count: usize,
    /// Static execution time, seconds.
    pub set_secs: u64,
    /// Dynamic execution time, seconds (`None` for rigid types).
    pub det_secs: Option<u64>,
}

/// The paper's Table I, verbatim.
pub const ESP_TABLE: [EspJobType; 14] = [
    EspJobType {
        name: "A",
        user: "user01",
        size_frac: 0.03125,
        count: 75,
        set_secs: 267,
        det_secs: None,
    },
    EspJobType {
        name: "B",
        user: "user02",
        size_frac: 0.06250,
        count: 9,
        set_secs: 322,
        det_secs: None,
    },
    EspJobType {
        name: "C",
        user: "user03",
        size_frac: 0.50000,
        count: 3,
        set_secs: 534,
        det_secs: None,
    },
    EspJobType {
        name: "D",
        user: "user04",
        size_frac: 0.25000,
        count: 3,
        set_secs: 616,
        det_secs: None,
    },
    EspJobType {
        name: "E",
        user: "user05",
        size_frac: 0.50000,
        count: 3,
        set_secs: 315,
        det_secs: None,
    },
    EspJobType {
        name: "F",
        user: "user06",
        size_frac: 0.06250,
        count: 9,
        set_secs: 1846,
        det_secs: Some(1230),
    },
    EspJobType {
        name: "G",
        user: "user06",
        size_frac: 0.12500,
        count: 6,
        set_secs: 1334,
        det_secs: Some(1067),
    },
    EspJobType {
        name: "H",
        user: "user06",
        size_frac: 0.15820,
        count: 6,
        set_secs: 1067,
        det_secs: Some(896),
    },
    EspJobType {
        name: "I",
        user: "user06",
        size_frac: 0.03125,
        count: 24,
        set_secs: 1432,
        det_secs: Some(716),
    },
    EspJobType {
        name: "J",
        user: "user06",
        size_frac: 0.06250,
        count: 24,
        set_secs: 725,
        det_secs: Some(483),
    },
    EspJobType {
        name: "K",
        user: "user07",
        size_frac: 0.09570,
        count: 15,
        set_secs: 487,
        det_secs: None,
    },
    EspJobType {
        name: "L",
        user: "user08",
        size_frac: 0.12500,
        count: 36,
        set_secs: 366,
        det_secs: None,
    },
    EspJobType {
        name: "M",
        user: "user09",
        size_frac: 0.25000,
        count: 15,
        set_secs: 187,
        det_secs: None,
    },
    EspJobType {
        name: "Z",
        user: "user10",
        size_frac: 1.00000,
        count: 2,
        set_secs: 100,
        det_secs: None,
    },
];

impl EspJobType {
    /// True for the evolving types F, G, H, I, J.
    pub fn is_evolving(&self) -> bool {
        self.det_secs.is_some()
    }

    /// Core count on a system of `total_cores`
    /// (`round(size_frac × total_cores)`, at least 1; see DESIGN.md on
    /// rounding).
    pub fn cores(&self, total_cores: u32) -> u32 {
        ((self.size_frac * total_cores as f64).round() as u32).max(1)
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EspConfig {
    /// System size the fractions apply to (120 in the paper).
    pub total_cores: u32,
    /// `true` = the paper's dynamic ESP (F–J evolve); `false` = the
    /// original static ESP (F–J run their SET as rigid jobs).
    pub evolving: bool,
    /// Seed for the submission-order shuffle.
    pub seed: u64,
    /// Walltime = SET × this factor (users over-request; ≥ 1).
    pub walltime_factor: f64,
    /// Cores per dynamic request (4 in the paper).
    pub extra_cores: u32,
    /// Request points as fractions of SET (paper: 16 % then 25 %).
    pub request_points: Vec<f64>,
    /// How a grant shortens the run.
    pub speedup: SpeedupModel,
    /// Jobs submitted instantly at t = 0 (paper: 50).
    pub initial_burst: usize,
    /// Interval between subsequent submissions (paper: 30 s).
    pub submit_interval: SimDuration,
    /// Z jobs are submitted this long after the last regular submission
    /// (paper: 30 minutes).
    pub z_delay: SimDuration,
    /// Priority boost for Z jobs ("highest priority in the queue").
    pub z_boost: i64,
}

impl Default for EspConfig {
    fn default() -> Self {
        EspConfig {
            total_cores: 120,
            evolving: true,
            seed: 2014,
            walltime_factor: 1.0,
            extra_cores: 4,
            request_points: vec![0.16, 0.25],
            speedup: SpeedupModel::Interpolate,
            initial_burst: 50,
            submit_interval: SimDuration::from_secs(30),
            z_delay: SimDuration::from_mins(30),
            z_boost: 1_000_000_000,
        }
    }
}

impl EspConfig {
    /// The paper's static baseline (evolving jobs never request).
    pub fn paper_static() -> Self {
        EspConfig {
            evolving: false,
            ..Default::default()
        }
    }

    /// The paper's dynamic workload.
    pub fn paper_dynamic() -> Self {
        EspConfig::default()
    }
}

/// A timed submission.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadItem {
    /// Submission instant.
    pub at: SimTime,
    /// What to submit.
    pub spec: JobSpec,
}

/// Generates the (static or dynamic) ESP workload.
///
/// Regular jobs are shuffled deterministically by `cfg.seed`; the first
/// `initial_burst` are submitted at t = 0, the rest one per
/// `submit_interval`; the two Z jobs follow `z_delay` after the last
/// regular submission, flagged to take highest priority and suppress
/// backfilling while queued.
pub fn generate_esp(cfg: &EspConfig, reg: &mut CredRegistry) -> Vec<WorkloadItem> {
    use crate::stream::WorkloadStream as _;
    stream_esp(cfg, reg).materialize()
}

/// The streaming form of [`generate_esp`]: yields the same items in the
/// same (non-decreasing submit-time) order without materialising
/// `WorkloadItem`s up front. ESP is a fixed 230-job benchmark so its
/// state is constant-sized either way; the stream exists so every
/// generator speaks the same pull-based interface.
pub fn stream_esp(cfg: &EspConfig, reg: &mut CredRegistry) -> EspStream {
    let mut regular: Vec<JobSpec> = Vec::new();
    let mut z_jobs: Vec<JobSpec> = Vec::new();

    for ty in &ESP_TABLE {
        let user = reg.user_in_group(ty.user, "espusers");
        let group = reg.group_of(user);
        let cores = ty.cores(cfg.total_cores);
        for _ in 0..ty.count {
            let (class, exec) = if ty.is_evolving() && cfg.evolving {
                (
                    JobClass::Evolving,
                    ExecutionModel::Evolving {
                        set: SimDuration::from_secs(ty.set_secs),
                        det: SimDuration::from_secs(ty.det_secs.expect("evolving has DET")),
                        extra_cores: cfg.extra_cores,
                        request_points: cfg.request_points.clone(),
                        speedup: cfg.speedup,
                    },
                )
            } else {
                (
                    JobClass::Rigid,
                    ExecutionModel::Fixed {
                        duration: SimDuration::from_secs(ty.set_secs),
                    },
                )
            };
            let mut spec = JobSpec {
                name: ty.name.to_string(),
                user,
                group,
                class,
                cores,
                walltime: SimDuration::from_secs(ty.set_secs).mul_f64(cfg.walltime_factor),
                exec,
                priority_boost: 0,
                suppress_backfill_while_queued: false,
                malleable: None,
                moldable: None,
                dyn_timeout: None,
                queue: None,
            };
            if ty.name == "Z" {
                spec.priority_boost = cfg.z_boost;
                spec.suppress_backfill_while_queued = true;
                z_jobs.push(spec);
            } else {
                regular.push(spec);
            }
        }
    }

    let mut rng = SplitMix64::new(cfg.seed);
    rng.shuffle(&mut regular);

    EspStream {
        regular: regular.into_iter(),
        z_jobs: z_jobs.into_iter(),
        i: 0,
        initial_burst: cfg.initial_burst,
        submit_interval: cfg.submit_interval,
        z_delay: cfg.z_delay,
        last_regular: SimTime::ZERO,
    }
}

/// Iterator over ESP submissions in submit-time order (see
/// [`stream_esp`]). Submission instants are computed lazily from the
/// schedule formula; regular specs are held pre-shuffled (the shuffle
/// needs the full population by definition).
#[derive(Debug, Clone)]
pub struct EspStream {
    regular: std::vec::IntoIter<JobSpec>,
    z_jobs: std::vec::IntoIter<JobSpec>,
    i: usize,
    initial_burst: usize,
    submit_interval: SimDuration,
    z_delay: SimDuration,
    last_regular: SimTime,
}

impl Iterator for EspStream {
    type Item = WorkloadItem;

    fn next(&mut self) -> Option<WorkloadItem> {
        if let Some(spec) = self.regular.next() {
            let at = if self.i < self.initial_burst {
                SimTime::ZERO
            } else {
                SimTime::ZERO + self.submit_interval * (self.i - self.initial_burst + 1) as u64
            };
            self.i += 1;
            self.last_regular = self.last_regular.max(at);
            return Some(WorkloadItem { at, spec });
        }
        let spec = self.z_jobs.next()?;
        Some(WorkloadItem {
            at: self.last_regular + self.z_delay,
            spec,
        })
    }
}

/// Total work of the workload in core-seconds, assuming every job runs its
/// static execution time (the perfect-packing lower bound the original ESP
/// efficiency metric divides by).
pub fn static_core_seconds(cfg: &EspConfig) -> f64 {
    ESP_TABLE
        .iter()
        .map(|t| t.count as f64 * t.cores(cfg.total_cores) as f64 * t.set_secs as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_totals() {
        let total: usize = ESP_TABLE.iter().map(|t| t.count).sum();
        assert_eq!(total, 230);
        let evolving: usize = ESP_TABLE
            .iter()
            .filter(|t| t.is_evolving())
            .map(|t| t.count)
            .sum();
        assert_eq!(evolving, 69, "30% evolving");
        let rigid = total - evolving - 2; // minus the Z jobs
        assert_eq!(rigid + evolving, 228);
        // All evolving types belong to user06.
        for t in ESP_TABLE.iter().filter(|t| t.is_evolving()) {
            assert_eq!(t.user, "user06");
        }
    }

    #[test]
    fn det_ratios_are_linear_speedups() {
        // DET/SET ≈ n/(n+4) for the type's core count on a 128-core basis —
        // the paper's linear-speedup assumption. Verify the three clean
        // cases (F, I, J).
        for (name, n) in [("F", 8u32), ("I", 4), ("J", 8)] {
            let ty = ESP_TABLE.iter().find(|t| t.name == name).unwrap();
            let expect = ty.set_secs as f64 * n as f64 / (n + 4) as f64;
            let det = ty.det_secs.unwrap() as f64;
            assert!(
                (det - expect).abs() / expect < 0.01,
                "{name}: DET {det} vs linear {expect}"
            );
        }
    }

    #[test]
    fn core_rounding_on_120() {
        let by_name = |n: &str| ESP_TABLE.iter().find(|t| t.name == n).unwrap();
        assert_eq!(by_name("A").cores(120), 4); // 3.75 → 4
        assert_eq!(by_name("C").cores(120), 60);
        assert_eq!(by_name("H").cores(120), 19); // 18.98 → 19
        assert_eq!(by_name("K").cores(120), 11); // 11.48 → 11
        assert_eq!(by_name("Z").cores(120), 120);
    }

    #[test]
    fn generation_counts_and_schedule() {
        let mut reg = CredRegistry::new();
        let cfg = EspConfig::paper_dynamic();
        let items = generate_esp(&cfg, &mut reg);
        assert_eq!(items.len(), 230);
        // First 50 at t=0 (plus however many of the burst; Z excluded).
        let at_zero = items.iter().filter(|i| i.at == SimTime::ZERO).count();
        assert_eq!(at_zero, 50);
        // 178 spaced submissions: last regular at 178 × 30 s.
        let last_regular = items
            .iter()
            .filter(|i| i.spec.name != "Z")
            .map(|i| i.at)
            .max()
            .unwrap();
        assert_eq!(last_regular, SimTime::from_secs(178 * 30));
        // Z jobs 30 minutes later.
        let z: Vec<_> = items.iter().filter(|i| i.spec.name == "Z").collect();
        assert_eq!(z.len(), 2);
        for zi in &z {
            assert_eq!(zi.at, last_regular + SimDuration::from_mins(30));
            assert!(zi.spec.priority_boost > 0);
            assert!(zi.spec.suppress_backfill_while_queued);
        }
        // 69 evolving jobs.
        let evolving = items
            .iter()
            .filter(|i| i.spec.class == JobClass::Evolving)
            .count();
        assert_eq!(evolving, 69);
        // 10 users registered.
        assert_eq!(reg.user_count(), 10);
    }

    #[test]
    fn static_config_has_no_evolving_jobs() {
        let mut reg = CredRegistry::new();
        let items = generate_esp(&EspConfig::paper_static(), &mut reg);
        assert!(items.iter().all(|i| i.spec.class == JobClass::Rigid));
        // F jobs still run their SET.
        let f = items.iter().find(|i| i.spec.name == "F").unwrap();
        assert_eq!(f.spec.walltime, SimDuration::from_secs(1846));
    }

    #[test]
    fn shuffle_is_deterministic_and_seed_sensitive() {
        let mut reg = CredRegistry::new();
        let a = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let b = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        assert_eq!(a, b);
        let mut cfg2 = EspConfig::paper_dynamic();
        cfg2.seed = 99;
        let c = generate_esp(&cfg2, &mut reg);
        assert_ne!(
            a.iter().map(|i| i.spec.name.clone()).collect::<Vec<_>>(),
            c.iter().map(|i| i.spec.name.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn walltime_factor_pads() {
        let mut reg = CredRegistry::new();
        let mut cfg = EspConfig::paper_dynamic();
        cfg.walltime_factor = 1.5;
        let items = generate_esp(&cfg, &mut reg);
        let a = items.iter().find(|i| i.spec.name == "A").unwrap();
        assert_eq!(a.spec.walltime, SimDuration::from_millis(267_000 * 3 / 2));
        // Execution model unchanged: walltime padding ≠ longer run.
        assert_eq!(
            a.spec.exec.static_duration(a.spec.cores),
            SimDuration::from_secs(267)
        );
    }

    #[test]
    fn total_work_sane() {
        // Perfect packing of the static workload on 120 cores ≈ 187 min;
        // the paper's static run took 266 min at 77 % utilization.
        let cs = static_core_seconds(&EspConfig::default());
        let perfect_mins = cs / 120.0 / 60.0;
        assert!((150.0..230.0).contains(&perfect_mins), "{perfect_mins}");
    }

    #[test]
    fn all_specs_validate() {
        let mut reg = CredRegistry::new();
        for item in generate_esp(&EspConfig::paper_dynamic(), &mut reg) {
            item.spec.validate().expect("spec valid");
            assert!(item.spec.cores <= 120);
        }
    }
}
