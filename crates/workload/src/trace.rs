//! Workload traces: serialise a generated workload to JSON and replay it.
//!
//! Lets experiments be pinned (a generated workload checked into a file
//! and replayed bit-exactly) and lets users feed their own job mixes to
//! the simulator without writing Rust.

use crate::esp::WorkloadItem;
use dynbatch_core::CredRegistry;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// A self-contained workload: submissions plus the credential registry
/// interning their user/group names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Free-form description.
    pub description: String,
    /// The credential registry the items' IDs refer to.
    pub registry: CredRegistry,
    /// Timed submissions, in any order (the simulator sorts by time).
    pub items: Vec<WorkloadItem>,
}

impl Trace {
    /// Wraps a workload into a versioned trace.
    pub fn new(description: impl Into<String>, registry: CredRegistry, items: Vec<WorkloadItem>) -> Self {
        Trace { version: 1, description: description.into(), registry, items }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialises")
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let trace: Trace = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if trace.version != 1 {
            return Err(format!("unsupported trace version {}", trace.version));
        }
        for item in &trace.items {
            item.spec.validate()?;
        }
        Ok(trace)
    }

    /// Writes to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Reads from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Trace::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::esp::{generate_esp, EspConfig};

    #[test]
    fn json_round_trip() {
        let mut reg = CredRegistry::new();
        let items = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let trace = Trace::new("dynamic ESP", reg, items);
        let json = trace.to_json();
        let back = Trace::from_json(&json).expect("parse");
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_bad_version() {
        let mut reg = CredRegistry::new();
        let items = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let mut trace = Trace::new("x", reg, items);
        trace.version = 9;
        let json = trace.to_json();
        assert!(Trace::from_json(&json).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Trace::from_json("{not json").is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut reg = CredRegistry::new();
        let items = generate_esp(&EspConfig::paper_static(), &mut reg);
        let trace = Trace::new("static ESP", reg, items);
        let dir = std::env::temp_dir().join("dynbatch-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("esp.json");
        trace.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(trace, back);
        let _ = std::fs::remove_file(&path);
    }
}
