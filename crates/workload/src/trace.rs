//! Workload traces: serialise a generated workload to JSON and replay it.
//!
//! Lets experiments be pinned (a generated workload checked into a file
//! and replayed bit-exactly) and lets users feed their own job mixes to
//! the simulator without writing Rust.

use crate::esp::WorkloadItem;
use dynbatch_core::json::{model, parse, Json};
use dynbatch_core::{CredRegistry, SimTime};
use std::fs;
use std::io;
use std::path::Path;

/// A self-contained workload: submissions plus the credential registry
/// interning their user/group names.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Free-form description.
    pub description: String,
    /// The credential registry the items' IDs refer to.
    pub registry: CredRegistry,
    /// Timed submissions, in any order (the simulator sorts by time).
    pub items: Vec<WorkloadItem>,
}

impl Trace {
    /// Wraps a workload into a versioned trace.
    pub fn new(
        description: impl Into<String>,
        registry: CredRegistry,
        items: Vec<WorkloadItem>,
    ) -> Self {
        Trace {
            version: 1,
            description: description.into(),
            registry,
            items,
        }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        let items = self
            .items
            .iter()
            .map(|item| {
                Json::obj(vec![
                    ("at_ms", Json::UInt(item.at.as_millis())),
                    ("spec", model::spec_to_json(&item.spec)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("version", Json::UInt(self.version as u64)),
            ("description", Json::Str(self.description.clone())),
            ("registry", self.registry.to_json()),
            ("items", Json::Arr(items)),
        ])
        .to_string_pretty()
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v = parse(json)?;
        let version = v
            .req("version")?
            .as_u64()
            .ok_or("`version` is not an integer")?;
        if version != 1 {
            return Err(format!("unsupported trace version {version}"));
        }
        let description = v
            .req("description")?
            .as_str()
            .ok_or("`description` is not a string")?
            .to_owned();
        let registry = CredRegistry::from_json(v.req("registry")?)?;
        let items = v
            .req("items")?
            .as_arr()
            .ok_or("`items` is not an array")?
            .iter()
            .map(|item| {
                Ok(WorkloadItem {
                    at: SimTime::from_millis(
                        item.req("at_ms")?
                            .as_u64()
                            .ok_or("`at_ms` is not an integer")?,
                    ),
                    spec: model::spec_from_json(item.req("spec")?)?,
                })
            })
            .collect::<Result<Vec<WorkloadItem>, String>>()?;
        for item in &items {
            item.spec.validate()?;
            let max_user = registry.user_count() as u32;
            if item.spec.user.0 >= max_user {
                return Err(format!("user {} not in registry", item.spec.user));
            }
        }
        Ok(Trace {
            version: version as u32,
            description,
            registry,
            items,
        })
    }

    /// Writes to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Reads from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Trace::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Consumes the trace into a submit-time-ordered workload stream.
    /// Trace items may be stored in any order; the sort is stable, so
    /// same-instant items keep their file order — exactly the order the
    /// simulator's eager `load` of the sorted Vec would submit them in.
    pub fn into_stream(self) -> std::vec::IntoIter<WorkloadItem> {
        let mut items = self.items;
        items.sort_by_key(|i| i.at);
        items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::esp::{generate_esp, EspConfig};

    #[test]
    fn json_round_trip() {
        let mut reg = CredRegistry::new();
        let items = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let trace = Trace::new("dynamic ESP", reg, items);
        let json = trace.to_json();
        let back = Trace::from_json(&json).expect("parse");
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_bad_version() {
        let mut reg = CredRegistry::new();
        let items = generate_esp(&EspConfig::paper_dynamic(), &mut reg);
        let mut trace = Trace::new("x", reg, items);
        trace.version = 9;
        let json = trace.to_json();
        assert!(Trace::from_json(&json).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Trace::from_json("{not json").is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut reg = CredRegistry::new();
        let items = generate_esp(&EspConfig::paper_static(), &mut reg);
        let trace = Trace::new("static ESP", reg, items);
        let dir = std::env::temp_dir().join("dynbatch-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("esp.json");
        trace.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(trace, back);
        let _ = std::fs::remove_file(&path);
    }
}
