//! Standard Workload Format (SWF) ingestion.
//!
//! The Parallel Workloads Archive distributes production supercomputer
//! traces in SWF: one job per line, 18 whitespace-separated fields,
//! comment/header lines starting with `;`. This module converts such
//! traces into dynbatch workloads so the scheduler can be evaluated on
//! real job mixes, optionally converting a seeded fraction of jobs into
//! evolving ones (the paper's 30 % transformation, applied to any trace).
//!
//! Field map used (1-based SWF indices):
//! 1 job id · 2 submit (s) · 4 runtime (s) · 5 allocated procs ·
//! 8 requested procs · 9 requested walltime (s) · 11 status ·
//! 12 user id. Missing values are `-1` per the SWF convention.

use crate::esp::WorkloadItem;
use dynbatch_core::{
    CredRegistry, ExecutionModel, JobClass, JobSpec, SimDuration, SimTime, SpeedupModel,
};
use dynbatch_simtime::SplitMix64;

/// Conversion options.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfConfig {
    /// Jobs requesting more cores than this are clamped down to it
    /// (traces come from machines of arbitrary size).
    pub total_cores: u32,
    /// Read at most this many jobs (0 = all).
    pub max_jobs: usize,
    /// Fraction of jobs converted to evolving, in `[0, 1]`.
    pub evolving_fraction: f64,
    /// Seed for the conversion choice.
    pub seed: u64,
    /// DET = runtime × this factor for converted jobs.
    pub det_factor: f64,
    /// Extra cores a converted job requests.
    pub extra_cores: u32,
    /// Use the *requested* walltime field when present (`true`, realistic:
    /// users over-request) or the actual runtime (`false`, exact).
    pub use_requested_walltime: bool,
}

impl Default for SwfConfig {
    fn default() -> Self {
        SwfConfig {
            total_cores: 120,
            max_jobs: 0,
            evolving_fraction: 0.0,
            seed: 2014,
            det_factor: 0.7,
            extra_cores: 4,
            use_requested_walltime: true,
        }
    }
}

/// A parse problem, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parses SWF text into a workload. Unusable jobs (zero/unknown runtime or
/// processors, cancelled before start) are skipped, matching common SWF
/// practice; malformed lines are errors.
pub fn parse_swf(
    text: &str,
    cfg: &SwfConfig,
    reg: &mut CredRegistry,
) -> Result<Vec<WorkloadItem>, SwfError> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut items = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 12 {
            return Err(SwfError {
                line: line_no,
                message: format!("expected ≥12 fields, found {}", fields.len()),
            });
        }
        let f = |i: usize| -> Result<i64, SwfError> {
            fields[i - 1].parse().map_err(|_| SwfError {
                line: line_no,
                message: format!("field {i} ({:?}) is not an integer", fields[i - 1]),
            })
        };
        let submit = f(2)?;
        let runtime = f(4)?;
        let alloc_procs = f(5)?;
        let req_procs = f(8)?;
        let req_time = f(9)?;
        let user_id = f(12)?;

        let procs = if req_procs > 0 {
            req_procs
        } else {
            alloc_procs
        };
        if runtime <= 0 || procs <= 0 || submit < 0 {
            continue; // unusable record, standard practice to skip
        }
        let cores = (procs as u32).min(cfg.total_cores);
        let runtime = runtime as u64;
        let walltime = if cfg.use_requested_walltime && req_time > 0 {
            (req_time as u64).max(runtime)
        } else {
            runtime
        };

        let user = reg.user_in_group(&format!("swf_user{}", user_id.max(0)), "swfusers");
        let group = reg.group_of(user);

        let evolving = cfg.evolving_fraction > 0.0 && rng.next_f64() < cfg.evolving_fraction;
        let spec = if evolving {
            let det = ((runtime as f64) * cfg.det_factor).max(1.0) as u64;
            JobSpec {
                name: format!("swf-{}", f(1)?),
                user,
                group,
                class: JobClass::Evolving,
                cores,
                walltime: SimDuration::from_secs(walltime),
                exec: ExecutionModel::Evolving {
                    set: SimDuration::from_secs(runtime),
                    det: SimDuration::from_secs(det),
                    extra_cores: cfg.extra_cores,
                    request_points: vec![0.16, 0.25],
                    speedup: SpeedupModel::Interpolate,
                },
                priority_boost: 0,
                suppress_backfill_while_queued: false,
                malleable: None,
                moldable: None,
                dyn_timeout: None,
            }
        } else {
            let mut s = JobSpec::rigid(
                format!("swf-{}", f(1)?),
                user,
                group,
                cores,
                SimDuration::from_secs(runtime),
            );
            s.walltime = SimDuration::from_secs(walltime);
            s
        };
        items.push(WorkloadItem {
            at: SimTime::from_secs(submit as u64),
            spec,
        });
        if cfg.max_jobs > 0 && items.len() >= cfg.max_jobs {
            break;
        }
    }
    items.sort_by_key(|i| i.at);
    Ok(items)
}

/// Serialises a workload to SWF text (the inverse of [`parse_swf`]),
/// suitable for feeding dynbatch workloads to other SWF-consuming
/// simulators. Evolving/malleable/moldable structure cannot be expressed
/// in SWF; jobs are written as rigid records with their *static* runtime,
/// and the requested walltime goes to field 9.
pub fn write_swf(items: &[WorkloadItem], reg: &CredRegistry) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("; generated by dynbatch (SWF v2 subset)\n");
    let max_procs = items.iter().map(|i| i.spec.cores).max().unwrap_or(0);
    let _ = writeln!(out, "; MaxProcs: {max_procs}");
    for (idx, item) in items.iter().enumerate() {
        let runtime = item.spec.exec.static_duration(item.spec.cores).as_secs();
        let _ = writeln!(
            out,
            "{} {} -1 {} {} -1 -1 {} {} -1 1 {} {} -1 1 -1 -1 -1",
            idx + 1,
            item.at.as_secs(),
            runtime,
            item.spec.cores,
            item.spec.cores,
            item.spec.walltime.as_secs(),
            item.spec.user.0,
            reg.group_of(item.spec.user).0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three valid jobs, one header, one cancelled (runtime −1), one
    /// oversized (clamped).
    const SAMPLE: &str = "\
; SWF header: MaxNodes: 128
; Computer: test cluster
1  0    10 300  16 -1 -1 16  600 -1 1 3 1 -1 1 -1 -1 -1
2  30   -1 -1   -1 -1 -1 32  600 -1 5 4 1 -1 1 -1 -1 -1
3  60   5  120  -1 -1 -1 512 240 -1 1 3 1 -1 1 -1 -1 -1
4  90   0  60   8  -1 -1 -1  -1  -1 1 7 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_and_filters() {
        let mut reg = CredRegistry::new();
        let items = parse_swf(SAMPLE, &SwfConfig::default(), &mut reg).expect("parse");
        assert_eq!(items.len(), 3, "cancelled job 2 skipped");
        assert_eq!(items[0].spec.name, "swf-1");
        assert_eq!(items[0].spec.cores, 16);
        assert_eq!(items[0].at, SimTime::ZERO);
        assert_eq!(items[0].spec.walltime, SimDuration::from_secs(600));
        assert_eq!(
            items[0].spec.exec.static_duration(16),
            SimDuration::from_secs(300)
        );
        // Oversized request clamps to the configured system.
        assert_eq!(items[1].spec.cores, 120);
        // Job 4 falls back to allocated procs and exact walltime.
        assert_eq!(items[2].spec.cores, 8);
        assert_eq!(items[2].spec.walltime, SimDuration::from_secs(60));
        // Users interned from field 12.
        assert!(reg.find_user("swf_user3").is_some());
        assert!(reg.find_user("swf_user7").is_some());
    }

    #[test]
    fn exact_walltime_mode() {
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            use_requested_walltime: false,
            ..Default::default()
        };
        let items = parse_swf(SAMPLE, &cfg, &mut reg).unwrap();
        assert_eq!(items[0].spec.walltime, SimDuration::from_secs(300));
    }

    #[test]
    fn evolving_conversion() {
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            evolving_fraction: 1.0,
            ..Default::default()
        };
        let items = parse_swf(SAMPLE, &cfg, &mut reg).unwrap();
        assert!(items.iter().all(|i| i.spec.class == JobClass::Evolving));
        for i in &items {
            i.spec.validate().expect("valid evolving spec");
        }
    }

    #[test]
    fn max_jobs_limit() {
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            max_jobs: 1,
            ..Default::default()
        };
        let items = parse_swf(SAMPLE, &cfg, &mut reg).unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn malformed_lines_error() {
        let mut reg = CredRegistry::new();
        let err = parse_swf("1 2 3\n", &SwfConfig::default(), &mut reg).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("12 fields"));
        let err = parse_swf(
            "1 x 10 300 16 -1 -1 16 600 -1 1 3 1 -1 1 -1 -1 -1\n",
            &SwfConfig::default(),
            &mut reg,
        )
        .unwrap_err();
        assert!(err.message.contains("not an integer"));
    }

    #[test]
    fn writer_round_trips_through_parser() {
        use crate::esp::{generate_esp, EspConfig};
        let mut reg = CredRegistry::new();
        let original = generate_esp(&EspConfig::paper_static(), &mut reg);
        let text = write_swf(&original, &reg);
        let mut reg2 = CredRegistry::new();
        let cfg = SwfConfig {
            total_cores: 120,
            ..Default::default()
        };
        let parsed = parse_swf(&text, &cfg, &mut reg2).expect("parse own output");
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(&parsed) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.spec.cores, b.spec.cores);
            assert_eq!(
                a.spec.exec.static_duration(a.spec.cores),
                b.spec.exec.static_duration(b.spec.cores)
            );
            assert_eq!(a.spec.walltime, b.spec.walltime);
        }
    }

    #[test]
    fn runs_through_the_simulator() {
        use dynbatch_core::{DfsConfig, SchedulerConfig};
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            evolving_fraction: 0.5,
            ..Default::default()
        };
        let items = parse_swf(SAMPLE, &cfg, &mut reg).unwrap();
        let mut sched = SchedulerConfig::paper_eval();
        sched.dfs = DfsConfig::highest_priority();
        let mut sim = dynbatch_sim_smoke::run(items, sched);
        let _ = &mut sim;
    }

    /// Minimal indirection so the workload crate does not depend on the
    /// sim crate: the real end-to-end test lives in the root test suite;
    /// here we only check the items are well-formed for submission.
    mod dynbatch_sim_smoke {
        use super::*;
        pub fn run(items: Vec<WorkloadItem>, _sched: dynbatch_core::SchedulerConfig) -> usize {
            for i in &items {
                i.spec.validate().expect("submittable");
            }
            items.len()
        }
    }
}
