//! Standard Workload Format (SWF) ingestion.
//!
//! The Parallel Workloads Archive distributes production supercomputer
//! traces in SWF: one job per line, 18 whitespace-separated fields,
//! comment/header lines starting with `;`. This module converts such
//! traces into dynbatch workloads so the scheduler can be evaluated on
//! real job mixes, optionally converting a seeded fraction of jobs into
//! evolving ones (the paper's 30 % transformation, applied to any trace).
//!
//! Field map used (1-based SWF indices):
//! 1 job id · 2 submit (s) · 4 runtime (s) · 5 allocated procs ·
//! 8 requested procs · 9 requested walltime (s) · 11 status ·
//! 12 user id. Missing values are `-1` per the SWF convention.

use crate::esp::WorkloadItem;
use dynbatch_core::{
    CredRegistry, ExecutionModel, JobClass, JobSpec, SimDuration, SimTime, SpeedupModel,
};
use dynbatch_simtime::SplitMix64;
use std::io::BufRead;

/// Conversion options.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfConfig {
    /// Jobs requesting more cores than this are clamped down to it
    /// (traces come from machines of arbitrary size).
    pub total_cores: u32,
    /// Read at most this many jobs (0 = all).
    pub max_jobs: usize,
    /// Fraction of jobs converted to evolving, in `[0, 1]`.
    pub evolving_fraction: f64,
    /// Seed for the conversion choice.
    pub seed: u64,
    /// DET = runtime × this factor for converted jobs.
    pub det_factor: f64,
    /// Extra cores a converted job requests.
    pub extra_cores: u32,
    /// Use the *requested* walltime field when present (`true`, realistic:
    /// users over-request) or the actual runtime (`false`, exact).
    pub use_requested_walltime: bool,
    /// Skip malformed lines (counting them in [`SwfStats`]) instead of
    /// stopping with a line-numbered error. Real archive dumps carry the
    /// occasional truncated record; replay pipelines set this.
    pub skip_malformed: bool,
}

impl Default for SwfConfig {
    fn default() -> Self {
        SwfConfig {
            total_cores: 120,
            max_jobs: 0,
            evolving_fraction: 0.0,
            seed: 2014,
            det_factor: 0.7,
            extra_cores: 4,
            use_requested_walltime: true,
            skip_malformed: false,
        }
    }
}

/// Per-parse counters of everything that did *not* become a job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwfStats {
    /// `;`-prefixed header/comment lines.
    pub comments: usize,
    /// Empty (or whitespace-only) lines.
    pub blanks: usize,
    /// Well-formed records skipped as unusable (zero/unknown runtime or
    /// processors, negative submit time — standard SWF practice).
    pub skipped_unusable: usize,
    /// Malformed lines skipped under [`SwfConfig::skip_malformed`].
    pub skipped_malformed: usize,
}

/// A parse problem, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

/// What one SWF line turned out to be.
enum LineResult {
    Item(WorkloadItem),
    Blank,
    Comment,
    Unusable,
    Malformed(SwfError),
}

/// Parses one raw SWF line. This is the single shared code path behind
/// both [`parse_swf`] and [`SwfSource`]; field-evaluation order and RNG
/// draw order are therefore identical by construction, which is what the
/// streaming-equals-materializing property test leans on.
fn parse_line(
    raw: &str,
    line_no: usize,
    cfg: &SwfConfig,
    reg: &mut CredRegistry,
    rng: &mut SplitMix64,
) -> LineResult {
    let line = raw.trim();
    if line.is_empty() {
        return LineResult::Blank;
    }
    if line.starts_with(';') {
        return LineResult::Comment;
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 12 {
        return LineResult::Malformed(SwfError {
            line: line_no,
            message: format!("expected ≥12 fields, found {}", fields.len()),
        });
    }
    let f = |i: usize| -> Result<i64, SwfError> {
        fields[i - 1].parse().map_err(|_| SwfError {
            line: line_no,
            message: format!("field {i} ({:?}) is not an integer", fields[i - 1]),
        })
    };
    macro_rules! field {
        ($i:expr) => {
            match f($i) {
                Ok(v) => v,
                Err(e) => return LineResult::Malformed(e),
            }
        };
    }
    let submit = field!(2);
    let runtime = field!(4);
    let alloc_procs = field!(5);
    let req_procs = field!(8);
    let req_time = field!(9);
    let user_id = field!(12);

    let procs = if req_procs > 0 {
        req_procs
    } else {
        alloc_procs
    };
    if runtime <= 0 || procs <= 0 || submit < 0 {
        return LineResult::Unusable; // standard practice to skip
    }
    let cores = (procs as u32).min(cfg.total_cores);
    let runtime = runtime as u64;
    let walltime = if cfg.use_requested_walltime && req_time > 0 {
        (req_time as u64).max(runtime)
    } else {
        runtime
    };

    let user = reg.user_in_group(&format!("swf_user{}", user_id.max(0)), "swfusers");
    let group = reg.group_of(user);

    let evolving = cfg.evolving_fraction > 0.0 && rng.next_f64() < cfg.evolving_fraction;
    let spec = if evolving {
        let det = ((runtime as f64) * cfg.det_factor).max(1.0) as u64;
        JobSpec {
            name: format!("swf-{}", field!(1)),
            user,
            group,
            class: JobClass::Evolving,
            cores,
            walltime: SimDuration::from_secs(walltime),
            exec: ExecutionModel::Evolving {
                set: SimDuration::from_secs(runtime),
                det: SimDuration::from_secs(det),
                extra_cores: cfg.extra_cores,
                request_points: vec![0.16, 0.25],
                speedup: SpeedupModel::Interpolate,
            },
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            malleable: None,
            moldable: None,
            dyn_timeout: None,
            queue: None,
        }
    } else {
        let mut s = JobSpec::rigid(
            format!("swf-{}", field!(1)),
            user,
            group,
            cores,
            SimDuration::from_secs(runtime),
        );
        s.walltime = SimDuration::from_secs(walltime);
        s
    };
    LineResult::Item(WorkloadItem {
        at: SimTime::from_secs(submit as u64),
        spec,
    })
}

enum RegHandle<'a> {
    Borrowed(&'a mut CredRegistry),
    Owned(Box<CredRegistry>),
}

impl RegHandle<'_> {
    fn get(&mut self) -> &mut CredRegistry {
        match self {
            RegHandle::Borrowed(r) => r,
            RegHandle::Owned(r) => r,
        }
    }
}

/// A line-by-line streaming SWF reader: an iterator of [`WorkloadItem`]s
/// pulled on demand from any [`BufRead`], in file order, in O(1) memory —
/// the trace never exists as a `String` or `Vec`.
///
/// SWF archives are submit-time-sorted by convention; the simulator's
/// streamed admission path re-checks monotonicity, so an unsorted file
/// fails loudly rather than silently reordering (the materialising
/// [`parse_swf`] sorts instead, which on a sorted file is the identity —
/// the property test pins the two paths equal).
///
/// Error handling: a malformed line either bumps
/// [`SwfStats::skipped_malformed`] (when [`SwfConfig::skip_malformed`] is
/// set) or stops the stream with the line-numbered error retrievable via
/// [`SwfSource::error`]. Iterate by `&mut` reference to keep the source
/// inspectable afterwards:
///
/// ```ignore
/// let mut src = SwfSource::new(reader, cfg, &mut reg);
/// let result = run_experiment_streamed(&cfg, &mut src, &opts);
/// assert!(src.error().is_none(), "{:?}", src.error());
/// ```
pub struct SwfSource<'a, R: BufRead> {
    reader: R,
    cfg: SwfConfig,
    reg: RegHandle<'a>,
    rng: SplitMix64,
    line_no: usize,
    emitted: usize,
    stats: SwfStats,
    error: Option<SwfError>,
    done: bool,
    buf: String,
}

impl<'a, R: BufRead> SwfSource<'a, R> {
    /// A streaming parser over `reader`, interning users into `reg`.
    pub fn new(reader: R, cfg: SwfConfig, reg: &'a mut CredRegistry) -> Self {
        Self::build(reader, cfg, RegHandle::Borrowed(reg))
    }

    fn build(reader: R, cfg: SwfConfig, reg: RegHandle<'a>) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        SwfSource {
            reader,
            cfg,
            reg,
            rng,
            line_no: 0,
            emitted: 0,
            stats: SwfStats::default(),
            error: None,
            done: false,
            buf: String::new(),
        }
    }

    /// Counters of skipped/non-record lines seen so far.
    pub fn stats(&self) -> &SwfStats {
        &self.stats
    }

    /// The error that stopped the stream, if any.
    pub fn error(&self) -> Option<&SwfError> {
        self.error.as_ref()
    }

    /// Takes the stopping error out of the source.
    pub fn take_error(&mut self) -> Option<SwfError> {
        self.error.take()
    }

    /// Jobs emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl<R: BufRead> SwfSource<'static, R> {
    /// A streaming parser that owns its credential registry — for
    /// closures that must return a `'static` stream (sweep tasks).
    pub fn with_own_registry(reader: R, cfg: SwfConfig) -> Self {
        Self::build(reader, cfg, RegHandle::Owned(Box::default()))
    }
}

impl<R: BufRead> Iterator for SwfSource<'_, R> {
    type Item = WorkloadItem;

    fn next(&mut self) -> Option<WorkloadItem> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            let n = match self.reader.read_line(&mut self.buf) {
                Ok(n) => n,
                Err(e) => {
                    self.error = Some(SwfError {
                        line: self.line_no + 1,
                        message: format!("I/O error: {e}"),
                    });
                    self.done = true;
                    return None;
                }
            };
            if n == 0 {
                self.done = true;
                return None;
            }
            self.line_no += 1;
            let buf = std::mem::take(&mut self.buf);
            let parsed = parse_line(&buf, self.line_no, &self.cfg, self.reg.get(), &mut self.rng);
            self.buf = buf;
            match parsed {
                LineResult::Item(item) => {
                    self.emitted += 1;
                    if self.cfg.max_jobs > 0 && self.emitted >= self.cfg.max_jobs {
                        self.done = true;
                    }
                    return Some(item);
                }
                LineResult::Blank => self.stats.blanks += 1,
                LineResult::Comment => self.stats.comments += 1,
                LineResult::Unusable => self.stats.skipped_unusable += 1,
                LineResult::Malformed(err) => {
                    if self.cfg.skip_malformed {
                        self.stats.skipped_malformed += 1;
                    } else {
                        self.error = Some(err);
                        self.done = true;
                        return None;
                    }
                }
            }
        }
    }
}

/// Parses SWF text into a workload. Unusable jobs (zero/unknown runtime or
/// processors, cancelled before start) are skipped, matching common SWF
/// practice; malformed lines are errors unless
/// [`SwfConfig::skip_malformed`] is set. Items are sorted by submit time.
pub fn parse_swf(
    text: &str,
    cfg: &SwfConfig,
    reg: &mut CredRegistry,
) -> Result<Vec<WorkloadItem>, SwfError> {
    parse_swf_with_stats(text, cfg, reg).map(|(items, _)| items)
}

/// [`parse_swf`], also returning the skipped-line counters. Implemented
/// on top of [`SwfSource`] so the materialising and streaming parsers are
/// the same code.
pub fn parse_swf_with_stats(
    text: &str,
    cfg: &SwfConfig,
    reg: &mut CredRegistry,
) -> Result<(Vec<WorkloadItem>, SwfStats), SwfError> {
    let mut src = SwfSource::new(std::io::Cursor::new(text), cfg.clone(), reg);
    let mut items: Vec<WorkloadItem> = (&mut src).collect();
    if let Some(err) = src.take_error() {
        return Err(err);
    }
    let stats = *src.stats();
    items.sort_by_key(|i| i.at);
    Ok((items, stats))
}

/// Serialises a workload to SWF text (the inverse of [`parse_swf`]),
/// suitable for feeding dynbatch workloads to other SWF-consuming
/// simulators. Evolving/malleable/moldable structure cannot be expressed
/// in SWF; jobs are written as rigid records with their *static* runtime,
/// and the requested walltime goes to field 9.
pub fn write_swf(items: &[WorkloadItem], reg: &CredRegistry) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("; generated by dynbatch (SWF v2 subset)\n");
    let max_procs = items.iter().map(|i| i.spec.cores).max().unwrap_or(0);
    let _ = writeln!(out, "; MaxProcs: {max_procs}");
    for (idx, item) in items.iter().enumerate() {
        let _ = out.write_str(&swf_record(idx, item, reg.group_of(item.spec.user).0));
    }
    out
}

/// One SWF record line (with trailing newline) for `item`, as job number
/// `idx + 1`.
fn swf_record(idx: usize, item: &WorkloadItem, group: u32) -> String {
    let runtime = item.spec.exec.static_duration(item.spec.cores).as_secs();
    format!(
        "{} {} -1 {} {} -1 -1 {} {} -1 1 {} {} -1 1 -1 -1 -1\n",
        idx + 1,
        item.at.as_secs(),
        runtime,
        item.spec.cores,
        item.spec.cores,
        item.spec.walltime.as_secs(),
        item.spec.user.0,
        group,
    )
}

/// Streams a workload out as SWF without materialising the text or the
/// item list — the writer dual of [`SwfSource`]. Because the `MaxProcs`
/// header precedes the records, the caller supplies the processor bound
/// up front (any upper bound is fine; [`write_swf`] uses the exact max).
/// Groups are taken from each spec's own `group` field, which every
/// generator sets to `reg.group_of(user)`, so output matches
/// [`write_swf`] byte-for-byte given the same bound.
pub fn write_swf_to<W: std::io::Write>(
    out: &mut W,
    items: impl IntoIterator<Item = WorkloadItem>,
    max_procs: u32,
) -> std::io::Result<usize> {
    out.write_all(b"; generated by dynbatch (SWF v2 subset)\n")?;
    writeln!(out, "; MaxProcs: {max_procs}")?;
    let mut written = 0;
    for (idx, item) in items.into_iter().enumerate() {
        out.write_all(swf_record(idx, &item, item.spec.group.0).as_bytes())?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three valid jobs, one header, one cancelled (runtime −1), one
    /// oversized (clamped).
    const SAMPLE: &str = "\
; SWF header: MaxNodes: 128
; Computer: test cluster
1  0    10 300  16 -1 -1 16  600 -1 1 3 1 -1 1 -1 -1 -1
2  30   -1 -1   -1 -1 -1 32  600 -1 5 4 1 -1 1 -1 -1 -1
3  60   5  120  -1 -1 -1 512 240 -1 1 3 1 -1 1 -1 -1 -1
4  90   0  60   8  -1 -1 -1  -1  -1 1 7 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_and_filters() {
        let mut reg = CredRegistry::new();
        let items = parse_swf(SAMPLE, &SwfConfig::default(), &mut reg).expect("parse");
        assert_eq!(items.len(), 3, "cancelled job 2 skipped");
        assert_eq!(items[0].spec.name, "swf-1");
        assert_eq!(items[0].spec.cores, 16);
        assert_eq!(items[0].at, SimTime::ZERO);
        assert_eq!(items[0].spec.walltime, SimDuration::from_secs(600));
        assert_eq!(
            items[0].spec.exec.static_duration(16),
            SimDuration::from_secs(300)
        );
        // Oversized request clamps to the configured system.
        assert_eq!(items[1].spec.cores, 120);
        // Job 4 falls back to allocated procs and exact walltime.
        assert_eq!(items[2].spec.cores, 8);
        assert_eq!(items[2].spec.walltime, SimDuration::from_secs(60));
        // Users interned from field 12.
        assert!(reg.find_user("swf_user3").is_some());
        assert!(reg.find_user("swf_user7").is_some());
    }

    #[test]
    fn exact_walltime_mode() {
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            use_requested_walltime: false,
            ..Default::default()
        };
        let items = parse_swf(SAMPLE, &cfg, &mut reg).unwrap();
        assert_eq!(items[0].spec.walltime, SimDuration::from_secs(300));
    }

    #[test]
    fn evolving_conversion() {
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            evolving_fraction: 1.0,
            ..Default::default()
        };
        let items = parse_swf(SAMPLE, &cfg, &mut reg).unwrap();
        assert!(items.iter().all(|i| i.spec.class == JobClass::Evolving));
        for i in &items {
            i.spec.validate().expect("valid evolving spec");
        }
    }

    #[test]
    fn max_jobs_limit() {
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            max_jobs: 1,
            ..Default::default()
        };
        let items = parse_swf(SAMPLE, &cfg, &mut reg).unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn malformed_lines_error() {
        let mut reg = CredRegistry::new();
        let err = parse_swf("1 2 3\n", &SwfConfig::default(), &mut reg).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("12 fields"));
        let err = parse_swf(
            "1 x 10 300 16 -1 -1 16 600 -1 1 3 1 -1 1 -1 -1 -1\n",
            &SwfConfig::default(),
            &mut reg,
        )
        .unwrap_err();
        assert!(err.message.contains("not an integer"));
    }

    #[test]
    fn stats_count_skipped_lines() {
        let mut reg = CredRegistry::new();
        let (items, stats) =
            parse_swf_with_stats(SAMPLE, &SwfConfig::default(), &mut reg).expect("parse");
        assert_eq!(items.len(), 3);
        assert_eq!(stats.comments, 2);
        assert_eq!(stats.blanks, 0);
        assert_eq!(stats.skipped_unusable, 1, "cancelled job 2");
        assert_eq!(stats.skipped_malformed, 0);
    }

    #[test]
    fn skip_malformed_counts_instead_of_erroring() {
        let text = format!("junk line\n{SAMPLE}\n1 2 x 4\n");
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            skip_malformed: true,
            ..Default::default()
        };
        let (items, stats) = parse_swf_with_stats(&text, &cfg, &mut reg).expect("parse");
        assert_eq!(items.len(), 3, "good records still parse");
        assert_eq!(stats.skipped_malformed, 2);
        // Without the flag the first junk line is a line-numbered error.
        let err = parse_swf(&text, &SwfConfig::default(), &mut reg).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn streaming_source_is_inspectable_after_error() {
        let text = "1 0 -1 300 16 -1 -1 16 600 -1 1 3 1 -1 1 -1 -1 -1\nbad\n";
        let mut reg = CredRegistry::new();
        let mut src = SwfSource::new(std::io::Cursor::new(text), SwfConfig::default(), &mut reg);
        let items: Vec<_> = (&mut src).collect();
        assert_eq!(items.len(), 1);
        let err = src.error().expect("stopped on line 2");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("12 fields"));
        // The stream stays stopped.
        assert!(src.next().is_none());
    }

    /// Property (ISSUE 8 satellite): the streaming parser is byte-equal
    /// to the materialising one on fuzzed inputs — valid records (with
    /// monotone submit times, so the materialising sort is the identity)
    /// interleaved with junk: comments, blanks, truncated records,
    /// non-integer fields, unusable records. Items, stats, error line
    /// numbers and interned registries must all agree, and chunked reads
    /// (1-byte `BufReader`) must not matter.
    #[test]
    fn prop_streaming_parser_matches_materializing() {
        dynbatch_core::testkit::check(120, 0x5117F, |rng| {
            let mut text = String::new();
            let mut submit = 0u64;
            let poison = rng.chance(0.3); // some cases end in a hard error
            let lines = rng.range_usize(0, 40);
            for _ in 0..lines {
                match rng.range_u32(0, 9) {
                    0 => text.push_str("; a header comment\n"),
                    1 => text.push('\n'),
                    2 => text.push_str("   \n"),
                    3 => text.push_str("1 2 3 4 5\n"), // truncated → malformed
                    4 => text.push_str("1 z 10 300 16 -1 -1 16 600 -1 1 3 1 -1 1 -1 -1 -1\n"),
                    5 => {
                        // Unusable: cancelled (runtime −1).
                        use std::fmt::Write as _;
                        let _ = writeln!(
                            text,
                            "9 {submit} -1 -1 -1 -1 -1 8 60 -1 5 1 1 -1 1 -1 -1 -1"
                        );
                    }
                    _ => {
                        use std::fmt::Write as _;
                        submit += rng.range(0, 50);
                        let _ = writeln!(
                            text,
                            "{} {} 0 {} {} -1 -1 {} {} -1 1 {} 1 -1 1 -1 -1 -1",
                            rng.range(1, 10_000),
                            submit,
                            rng.range(1, 900),
                            rng.range_u32(1, 64),
                            rng.range_u32(1, 64),
                            rng.range(1, 1200),
                            rng.range_u32(0, 9),
                        );
                    }
                }
            }
            let cfg = SwfConfig {
                evolving_fraction: 0.4,
                seed: rng.range(0, u64::MAX / 2),
                skip_malformed: !poison,
                max_jobs: if rng.chance(0.3) {
                    rng.range_usize(1, 10)
                } else {
                    0
                },
                ..Default::default()
            };

            let mut reg_mat = CredRegistry::new();
            let materialized = parse_swf_with_stats(&text, &cfg, &mut reg_mat);

            // Stream through a 1-byte-buffered reader: chunking must be
            // invisible.
            let mut reg_str = CredRegistry::new();
            let reader = std::io::BufReader::with_capacity(
                1,
                std::io::Cursor::new(text.clone().into_bytes()),
            );
            let mut src = SwfSource::new(reader, cfg.clone(), &mut reg_str);
            let streamed: Vec<_> = (&mut src).collect();
            let stream_err = src.take_error();
            let stream_stats = *src.stats();

            match materialized {
                Ok((items, stats)) => {
                    assert!(stream_err.is_none(), "{stream_err:?}");
                    assert_eq!(streamed, items);
                    assert_eq!(stream_stats, stats);
                    assert_eq!(reg_mat, reg_str);
                }
                Err(e) => {
                    let se = stream_err.expect("both paths fail");
                    assert_eq!(se, e, "same line number and message");
                }
            }
        });
    }

    #[test]
    fn write_swf_to_matches_write_swf() {
        use crate::esp::{generate_esp, EspConfig};
        let mut reg = CredRegistry::new();
        let items = generate_esp(&EspConfig::paper_static(), &mut reg);
        let max_procs = items.iter().map(|i| i.spec.cores).max().unwrap_or(0);
        let text = write_swf(&items, &reg);
        let mut buf = Vec::new();
        let n = write_swf_to(&mut buf, items.iter().cloned(), max_procs).expect("write");
        assert_eq!(n, items.len());
        assert_eq!(String::from_utf8(buf).unwrap(), text);
    }

    #[test]
    fn writer_round_trips_through_parser() {
        use crate::esp::{generate_esp, EspConfig};
        let mut reg = CredRegistry::new();
        let original = generate_esp(&EspConfig::paper_static(), &mut reg);
        let text = write_swf(&original, &reg);
        let mut reg2 = CredRegistry::new();
        let cfg = SwfConfig {
            total_cores: 120,
            ..Default::default()
        };
        let parsed = parse_swf(&text, &cfg, &mut reg2).expect("parse own output");
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(&parsed) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.spec.cores, b.spec.cores);
            assert_eq!(
                a.spec.exec.static_duration(a.spec.cores),
                b.spec.exec.static_duration(b.spec.cores)
            );
            assert_eq!(a.spec.walltime, b.spec.walltime);
        }
    }

    #[test]
    fn runs_through_the_simulator() {
        use dynbatch_core::{DfsConfig, SchedulerConfig};
        let mut reg = CredRegistry::new();
        let cfg = SwfConfig {
            evolving_fraction: 0.5,
            ..Default::default()
        };
        let items = parse_swf(SAMPLE, &cfg, &mut reg).unwrap();
        let mut sched = SchedulerConfig::paper_eval();
        sched.dfs = DfsConfig::highest_priority();
        let mut sim = dynbatch_sim_smoke::run(items, sched);
        let _ = &mut sim;
    }

    /// Minimal indirection so the workload crate does not depend on the
    /// sim crate: the real end-to-end test lives in the root test suite;
    /// here we only check the items are well-formed for submission.
    mod dynbatch_sim_smoke {
        use super::*;
        pub fn run(items: Vec<WorkloadItem>, _sched: dynbatch_core::SchedulerConfig) -> usize {
            for i in &items {
                i.spec.validate().expect("submittable");
            }
            items.len()
        }
    }
}
