//! The pull-based workload stream contract.
//!
//! A [`WorkloadStream`] is any iterator of [`WorkloadItem`]s that yields
//! submissions in **non-decreasing submit-time order**. Generators expose
//! streams so month-scale traces replay in O(lookahead-window) memory:
//! the simulator pulls items as virtual time advances instead of
//! materialising the whole trace up front (`BatchSim::run_streamed`).
//!
//! The ordering requirement is the whole contract — it is what lets the
//! simulator merge a stream into its event queue through a bounded
//! lookahead window without ever scheduling into the past. The simulator
//! asserts it at admission time; generator streams uphold it by
//! construction (and are pinned byte-equal to their materialising
//! counterparts in `tests/streaming_ingest.rs`).

use crate::esp::WorkloadItem;

/// A lazily-produced workload: an iterator of timed submissions in
/// non-decreasing submit-time order.
///
/// Blanket-implemented for every `Iterator<Item = WorkloadItem>`, so a
/// materialised `Vec<WorkloadItem>` participates via `.into_iter()` and
/// any stream converts back with [`WorkloadStream::materialize`].
pub trait WorkloadStream: Iterator<Item = WorkloadItem> {
    /// Drains the stream into a `Vec` — the adapter that pins streaming
    /// and materialising code paths to identical output.
    fn materialize(self) -> Vec<WorkloadItem>
    where
        Self: Sized,
    {
        self.collect()
    }
}

impl<T: Iterator<Item = WorkloadItem>> WorkloadStream for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{GroupId, JobSpec, SimDuration, SimTime, UserId};

    #[test]
    fn vec_round_trips_through_materialize() {
        let items: Vec<WorkloadItem> = (0..5)
            .map(|i| WorkloadItem {
                at: SimTime::from_secs(i * 10),
                spec: JobSpec::rigid(
                    format!("j{i}"),
                    UserId(0),
                    GroupId(0),
                    2,
                    SimDuration::from_secs(60),
                ),
            })
            .collect();
        assert_eq!(items.clone().into_iter().materialize(), items);
    }
}
