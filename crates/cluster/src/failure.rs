//! Node-failure injection.
//!
//! The paper's introduction lists fault tolerance — "allocating spare nodes
//! to affected jobs" — among the benefits of dynamic allocation. This module
//! provides the event vocabulary for injecting failures into a simulation;
//! the recovery policy (re-expanding affected evolving jobs onto spare
//! nodes) lives in the orchestration layer.

use dynbatch_core::{NodeId, SimTime};

/// A scripted node failure or repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// When the event occurs.
    pub at: SimTime,
    /// Which node.
    pub node: NodeId,
    /// `true` = node fails, `false` = node repaired.
    pub fails: bool,
}

impl FailureEvent {
    /// A failure at `at`.
    pub fn fail(at: SimTime, node: NodeId) -> Self {
        FailureEvent {
            at,
            node,
            fails: true,
        }
    }

    /// A repair at `at`.
    pub fn repair(at: SimTime, node: NodeId) -> Self {
        FailureEvent {
            at,
            node,
            fails: false,
        }
    }
}

/// A scripted failure schedule, sorted by time.
#[derive(Debug, Clone, Default)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FailureSchedule::default()
    }

    /// Adds an event, keeping the schedule sorted.
    pub fn push(&mut self, event: FailureEvent) {
        let pos = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(pos, event);
    }

    /// All events in time order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// True iff nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_stays_sorted() {
        let mut s = FailureSchedule::new();
        s.push(FailureEvent::fail(SimTime::from_secs(50), NodeId(1)));
        s.push(FailureEvent::fail(SimTime::from_secs(10), NodeId(2)));
        s.push(FailureEvent::repair(SimTime::from_secs(30), NodeId(2)));
        let times: Vec<u64> = s.events().iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![10, 30, 50]);
        assert!(!s.is_empty());
    }

    #[test]
    fn constructors() {
        let f = FailureEvent::fail(SimTime::from_secs(1), NodeId(0));
        assert!(f.fails);
        let r = FailureEvent::repair(SimTime::from_secs(2), NodeId(0));
        assert!(!r.fails);
    }
}
