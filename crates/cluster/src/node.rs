//! A single compute node.

use dynbatch_core::{JobId, NodeId};
use std::collections::BTreeMap;

/// Node availability state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Healthy and schedulable.
    Up,
    /// Failed; holds no allocations and is not schedulable.
    Down,
    /// Administratively drained; existing allocations finish but nothing
    /// new is placed.
    Offline,
}

/// A compute node: a core count plus the per-job allocation ledger
/// (what a `pbs_mom` tracks for its host).
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    cores_total: u32,
    state: NodeState,
    /// BTreeMap for deterministic iteration order.
    allocations: BTreeMap<JobId, u32>,
}

impl Node {
    /// A fresh, idle node.
    pub fn new(id: NodeId, cores_total: u32) -> Self {
        assert!(cores_total > 0, "a node needs at least one core");
        Node {
            id,
            cores_total,
            state: NodeState::Up,
            allocations: BTreeMap::new(),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Installed cores.
    pub fn cores_total(&self) -> u32 {
        self.cores_total
    }

    /// Cores currently allocated to jobs.
    pub fn cores_used(&self) -> u32 {
        self.allocations.values().sum()
    }

    /// Cores currently free (zero when not schedulable).
    pub fn cores_idle(&self) -> u32 {
        if self.is_schedulable() {
            self.cores_total - self.cores_used()
        } else {
            0
        }
    }

    /// Current state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// True iff the node is up (running allocations are valid).
    pub fn is_up(&self) -> bool {
        self.state == NodeState::Up
    }

    /// True iff new allocations may be placed here.
    pub fn is_schedulable(&self) -> bool {
        self.state == NodeState::Up
    }

    /// Cores `job` holds on this node.
    pub fn cores_of(&self, job: JobId) -> u32 {
        self.allocations.get(&job).copied().unwrap_or(0)
    }

    /// Jobs with cores on this node, in deterministic order.
    pub fn jobs(&self) -> impl Iterator<Item = (JobId, u32)> + '_ {
        self.allocations.iter().map(|(&j, &c)| (j, c))
    }

    /// Gives `cores` cores to `job`.
    ///
    /// # Panics
    /// On over-commit or if the node is not schedulable — callers validate
    /// first; hitting this is a cluster-bookkeeping bug.
    pub(crate) fn acquire(&mut self, job: JobId, cores: u32) {
        assert!(self.is_schedulable(), "{} not schedulable", self.id);
        assert!(
            self.cores_used() + cores <= self.cores_total,
            "{} over-committed: {} + {cores} > {}",
            self.id,
            self.cores_used(),
            self.cores_total
        );
        *self.allocations.entry(job).or_insert(0) += cores;
    }

    /// Takes `cores` cores back from `job`.
    ///
    /// # Panics
    /// If the job does not hold that many cores here.
    pub(crate) fn release(&mut self, job: JobId, cores: u32) {
        let held = self
            .allocations
            .get_mut(&job)
            .unwrap_or_else(|| panic!("{job} holds nothing on {}", self.id));
        assert!(
            *held >= cores,
            "{job} holds {held} < {cores} on {}",
            self.id
        );
        *held -= cores;
        if *held == 0 {
            self.allocations.remove(&job);
        }
    }

    /// Fails the node: drops all allocations and returns them.
    pub(crate) fn fail(&mut self) -> Vec<(JobId, u32)> {
        self.state = NodeState::Down;
        std::mem::take(&mut self.allocations).into_iter().collect()
    }

    /// Returns a failed/offline node to service.
    pub(crate) fn repair(&mut self) {
        self.state = NodeState::Up;
    }

    /// Drains the node: existing work continues, nothing new lands.
    pub fn set_offline(&mut self) {
        if self.state == NodeState::Up {
            self.state = NodeState::Offline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node() {
        let n = Node::new(NodeId(0), 8);
        assert_eq!(n.cores_total(), 8);
        assert_eq!(n.cores_idle(), 8);
        assert_eq!(n.cores_used(), 0);
        assert!(n.is_up());
    }

    #[test]
    fn acquire_release_cycle() {
        let mut n = Node::new(NodeId(0), 8);
        n.acquire(JobId(1), 3);
        n.acquire(JobId(2), 2);
        assert_eq!(n.cores_used(), 5);
        assert_eq!(n.cores_idle(), 3);
        assert_eq!(n.cores_of(JobId(1)), 3);
        n.release(JobId(1), 3);
        assert_eq!(n.cores_of(JobId(1)), 0);
        assert_eq!(n.cores_idle(), 6);
        assert_eq!(n.jobs().count(), 1);
    }

    #[test]
    fn incremental_acquire_merges() {
        let mut n = Node::new(NodeId(0), 8);
        n.acquire(JobId(1), 2);
        n.acquire(JobId(1), 3);
        assert_eq!(n.cores_of(JobId(1)), 5);
        n.release(JobId(1), 1);
        assert_eq!(n.cores_of(JobId(1)), 4);
    }

    #[test]
    #[should_panic(expected = "over-committed")]
    fn overcommit_panics() {
        let mut n = Node::new(NodeId(0), 4);
        n.acquire(JobId(1), 5);
    }

    #[test]
    #[should_panic(expected = "holds nothing")]
    fn release_unknown_panics() {
        let mut n = Node::new(NodeId(0), 4);
        n.release(JobId(1), 1);
    }

    #[test]
    fn failure_and_repair() {
        let mut n = Node::new(NodeId(0), 8);
        n.acquire(JobId(1), 4);
        let victims = n.fail();
        assert_eq!(victims, vec![(JobId(1), 4)]);
        assert_eq!(n.state(), NodeState::Down);
        assert_eq!(n.cores_idle(), 0);
        n.repair();
        assert!(n.is_up());
        assert_eq!(n.cores_idle(), 8);
    }

    #[test]
    fn offline_blocks_new_work() {
        let mut n = Node::new(NodeId(0), 8);
        n.acquire(JobId(1), 2);
        n.set_offline();
        assert_eq!(n.state(), NodeState::Offline);
        assert!(!n.is_schedulable());
        assert_eq!(n.cores_idle(), 0, "offline nodes advertise no idle cores");
        // Existing allocation persists.
        assert_eq!(n.cores_of(JobId(1)), 2);
    }
}
