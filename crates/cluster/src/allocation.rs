//! Allocations: per-node core assignments (the "hostlist" of the TM
//! protocol).

use dynbatch_core::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// A set of `(node, cores)` pairs — what the server hands a mother superior
/// as a hostlist, and what `tm_dynfree()` passes back to release.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Allocation {
    /// BTreeMap for deterministic iteration and display.
    cores: BTreeMap<NodeId, u32>,
}

impl Allocation {
    /// The empty allocation.
    pub fn empty() -> Self {
        Allocation::default()
    }

    /// Builds an allocation from pairs; duplicate nodes accumulate.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NodeId, u32)>) -> Self {
        let mut a = Allocation::empty();
        for (n, c) in pairs {
            a.add(n, c);
        }
        a
    }

    /// Adds `cores` cores on `node` (zero-core adds are ignored).
    pub fn add(&mut self, node: NodeId, cores: u32) {
        if cores > 0 {
            *self.cores.entry(node).or_insert(0) += cores;
        }
    }

    /// Removes `cores` cores on `node`.
    ///
    /// # Panics
    /// If the allocation holds fewer cores there.
    pub fn remove(&mut self, node: NodeId, cores: u32) {
        let held = self
            .cores
            .get_mut(&node)
            .unwrap_or_else(|| panic!("allocation holds nothing on {node}"));
        assert!(
            *held >= cores,
            "allocation holds {held} < {cores} on {node}"
        );
        *held -= cores;
        if *held == 0 {
            self.cores.remove(&node);
        }
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Allocation) {
        for (&n, &c) in &other.cores {
            self.add(n, c);
        }
    }

    /// Total cores across nodes.
    pub fn total_cores(&self) -> u32 {
        self.cores.values().sum()
    }

    /// Number of distinct nodes.
    pub fn node_count(&self) -> usize {
        self.cores.len()
    }

    /// Cores held on a specific node.
    pub fn cores_on(&self, node: NodeId) -> u32 {
        self.cores.get(&node).copied().unwrap_or(0)
    }

    /// Iterates `(node, cores)` in node order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.cores.iter().map(|(&n, &c)| (n, c))
    }

    /// True iff no cores are held.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Splits off up to `cores` cores (node order) into a new allocation —
    /// used when releasing "any subset", SLURM-style restrictions not
    /// applying here.
    pub fn take(&mut self, cores: u32) -> Allocation {
        let mut taken = Allocation::empty();
        let mut remaining = cores;
        let nodes: Vec<NodeId> = self.cores.keys().copied().collect();
        for node in nodes {
            if remaining == 0 {
                break;
            }
            let here = self.cores_on(node).min(remaining);
            self.remove(node, here);
            taken.add(node, here);
            remaining -= here;
        }
        taken
    }
}

impl fmt::Display for Allocation {
    /// Torque-ish hostlist: `node000:4+node003:2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (n, c) in &self.cores {
            if !first {
                f.write_str("+")?;
            }
            write!(f, "{n}:{c}")?;
            first = false;
        }
        if first {
            f.write_str("(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let a = Allocation::from_pairs([(NodeId(0), 4), (NodeId(2), 2), (NodeId(0), 1)]);
        assert_eq!(a.total_cores(), 7);
        assert_eq!(a.node_count(), 2);
        assert_eq!(a.cores_on(NodeId(0)), 5);
        assert_eq!(a.cores_on(NodeId(1)), 0);
        assert!(!a.is_empty());
    }

    #[test]
    fn zero_adds_ignored() {
        let mut a = Allocation::empty();
        a.add(NodeId(0), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn remove_clears_empty_nodes() {
        let mut a = Allocation::from_pairs([(NodeId(0), 4)]);
        a.remove(NodeId(0), 4);
        assert!(a.is_empty());
        assert_eq!(a.node_count(), 0);
    }

    #[test]
    #[should_panic(expected = "holds nothing")]
    fn remove_unknown_panics() {
        Allocation::empty().remove(NodeId(0), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Allocation::from_pairs([(NodeId(0), 2)]);
        a.merge(&Allocation::from_pairs([(NodeId(0), 2), (NodeId(1), 8)]));
        assert_eq!(a.cores_on(NodeId(0)), 4);
        assert_eq!(a.total_cores(), 12);
    }

    #[test]
    fn take_subset() {
        let mut a = Allocation::from_pairs([(NodeId(0), 4), (NodeId(1), 4)]);
        let t = a.take(6);
        assert_eq!(t.total_cores(), 6);
        assert_eq!(a.total_cores(), 2);
        // Taking more than held takes everything.
        let rest = a.take(100);
        assert_eq!(rest.total_cores(), 2);
        assert!(a.is_empty());
    }

    #[test]
    fn display_hostlist() {
        let a = Allocation::from_pairs([(NodeId(0), 4), (NodeId(3), 2)]);
        assert_eq!(a.to_string(), "node000:4+node003:2");
        assert_eq!(Allocation::empty().to_string(), "(empty)");
    }

    #[test]
    fn entries_in_node_order() {
        let a = Allocation::from_pairs([(NodeId(5), 1), (NodeId(1), 1), (NodeId(3), 1)]);
        let nodes: Vec<u32> = a.entries().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![1, 3, 5]);
    }
}
