//! # dynbatch-cluster
//!
//! The cluster substrate: nodes, cores and allocations.
//!
//! This crate stands in for the paper's physical testbed (15 compute nodes
//! × 8 cores). It tracks which job holds which cores on which node, and
//! implements the allocation-side halves of the dynamic protocol:
//! *dyn_join* (expanding a running job's allocation onto additional cores)
//! and *dyn_disjoin* (releasing an arbitrary subset — the paper notes its
//! approach, unlike SLURM's, can release any subset of a dynamic
//! allocation).
//!
//! Invariants maintained (and tested by property tests):
//!
//! * a core is held by at most one job at any time;
//! * per-node usage never exceeds the node's capacity;
//! * the sum of all job allocations equals the cluster's busy-core count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod allocation;
pub mod failure;
pub mod node;

pub use allocation::Allocation;
pub use failure::FailureEvent;
pub use node::{Node, NodeState};

use dynbatch_core::{AllocPolicy, Error, JobId, NodeId, Result};
use std::collections::HashMap;

/// One contiguous slice of the node list — the nodes a scheduler shard
/// owns (see [`Cluster::contiguous_slices`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSlice {
    /// First node in the slice (`None` for an empty slice — more slices
    /// than nodes).
    pub first_node: Option<NodeId>,
    /// Number of nodes in the slice.
    pub node_count: u32,
    /// Cores across the slice's *up* nodes.
    pub cores: u32,
}

/// The cluster: a fixed set of nodes plus allocation state.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    /// Per-job allocations, the authoritative inverse of the per-node maps.
    jobs: HashMap<JobId, Allocation>,
}

impl Cluster {
    /// A homogeneous cluster of `nodes` nodes with `cores_per_node` cores
    /// each — `Cluster::homogeneous(15, 8)` is the paper's testbed.
    pub fn homogeneous(nodes: u32, cores_per_node: u32) -> Self {
        Cluster {
            nodes: (0..nodes)
                .map(|i| Node::new(NodeId(i), cores_per_node))
                .collect(),
            jobs: HashMap::new(),
        }
    }

    /// A heterogeneous cluster from explicit per-node core counts.
    pub fn from_core_counts(counts: &[u32]) -> Self {
        Cluster {
            nodes: counts
                .iter()
                .enumerate()
                .map(|(i, &c)| Node::new(NodeId(i as u32), c))
                .collect(),
            jobs: HashMap::new(),
        }
    }

    /// Total cores across all *up* nodes.
    pub fn total_cores(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.is_up())
            .map(|n| n.cores_total())
            .sum()
    }

    /// Idle cores across all up nodes.
    pub fn idle_cores(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.is_up())
            .map(|n| n.cores_idle())
            .sum()
    }

    /// Busy cores across all up nodes.
    pub fn busy_cores(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.is_up())
            .map(|n| n.cores_used())
            .sum()
    }

    /// Number of nodes (up or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable view of a node.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0 as usize).ok_or(Error::UnknownNode(id))
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Splits the node list into `slices` contiguous slices, remainder
    /// nodes going to the lowest-index slices — the node-level view of a
    /// sharded scheduler's ownership map. Slice cores count only up
    /// nodes, consistent with [`Cluster::total_cores`]; on a homogeneous,
    /// healthy cluster whose node count `slices` divides, every slice
    /// carries `total_cores / slices` cores (node-aligned sharding).
    pub fn contiguous_slices(&self, slices: usize) -> Vec<NodeSlice> {
        assert!(slices >= 1, "at least one slice");
        let n = self.nodes.len();
        let base = n / slices;
        let rem = n % slices;
        let mut first = 0usize;
        (0..slices)
            .map(|i| {
                let count = base + usize::from(i < rem);
                let nodes = &self.nodes[first..first + count];
                first += count;
                NodeSlice {
                    first_node: nodes.first().map(|nd| nd.id()),
                    node_count: count as u32,
                    cores: nodes
                        .iter()
                        .filter(|nd| nd.state() == NodeState::Up)
                        .map(|nd| nd.cores_total())
                        .sum(),
                }
            })
            .collect()
    }

    /// The allocation currently held by `job`, if any.
    pub fn allocation_of(&self, job: JobId) -> Option<&Allocation> {
        self.jobs.get(&job)
    }

    /// Cores currently held by `job` (0 if none).
    pub fn cores_of(&self, job: JobId) -> u32 {
        self.jobs.get(&job).map_or(0, |a| a.total_cores())
    }

    /// Jobs currently holding cores.
    pub fn allocated_jobs(&self) -> impl Iterator<Item = (JobId, &Allocation)> {
        self.jobs.iter().map(|(&j, a)| (j, a))
    }

    /// Picks cores for a fresh allocation of `cores` cores under `policy`,
    /// without committing. Returns `None` if the request cannot be placed.
    pub fn plan(&self, cores: u32, policy: AllocPolicy) -> Option<Allocation> {
        if cores == 0 {
            return Some(Allocation::empty());
        }
        let mut candidates: Vec<&Node> = self
            .nodes
            .iter()
            .filter(|n| n.is_up() && n.cores_idle() > 0)
            .collect();
        match policy {
            AllocPolicy::Pack => {
                // Most-loaded first: minimises fragmentation.
                candidates.sort_by_key(|n| (n.cores_idle(), n.id()));
            }
            AllocPolicy::Spread => {
                candidates.sort_by_key(|n| (std::cmp::Reverse(n.cores_idle()), n.id()));
            }
            AllocPolicy::NodeExclusive => {
                candidates.retain(|n| n.cores_used() == 0);
                candidates.sort_by_key(|n| n.id());
            }
        }
        let mut alloc = Allocation::empty();
        let mut remaining = cores;
        for n in candidates {
            if remaining == 0 {
                break;
            }
            let take = match policy {
                AllocPolicy::NodeExclusive => {
                    if n.cores_total() <= remaining {
                        n.cores_total()
                    } else {
                        // A node-exclusive tail allocation still consumes
                        // the whole node; take it and stop.
                        n.cores_total()
                    }
                }
                _ => n.cores_idle().min(remaining),
            };
            alloc.add(n.id(), take);
            remaining = remaining.saturating_sub(take);
        }
        if remaining == 0 {
            Some(alloc)
        } else {
            None
        }
    }

    /// Allocates `cores` cores to `job` (which must hold nothing yet).
    pub fn allocate(&mut self, job: JobId, cores: u32, policy: AllocPolicy) -> Result<Allocation> {
        assert!(
            !self.jobs.contains_key(&job),
            "{job} already holds an allocation; use expand()"
        );
        if cores > self.total_cores() {
            return Err(Error::RequestExceedsSystem {
                requested: cores,
                capacity: self.total_cores(),
            });
        }
        let alloc = self.plan(cores, policy).ok_or(Error::CoresBusy {
            node: NodeId(0),
            requested: cores,
            idle: self.idle_cores(),
        })?;
        self.commit(job, &alloc)?;
        Ok(alloc)
    }

    /// Expands `job`'s existing allocation by `extra` cores — the cluster
    /// half of *dyn_join* (paper Fig 3). The job keeps its old cores; the
    /// returned allocation is the newly added part (the "dynamically
    /// allocated hostlist" handed back through `tm_dynget()`).
    pub fn expand(&mut self, job: JobId, extra: u32, policy: AllocPolicy) -> Result<Allocation> {
        if !self.jobs.contains_key(&job) {
            return Err(Error::UnknownJob(job));
        }
        let added = self.plan(extra, policy).ok_or(Error::CoresBusy {
            node: NodeId(0),
            requested: extra,
            idle: self.idle_cores(),
        })?;
        self.commit(job, &added)?;
        Ok(added)
    }

    /// Releases part of `job`'s allocation — the cluster half of
    /// *dyn_disjoin* (paper Fig 4). Any subset may be released.
    pub fn release_partial(&mut self, job: JobId, part: &Allocation) -> Result<()> {
        let held = self.jobs.get_mut(&job).ok_or(Error::UnknownJob(job))?;
        // Validate first so a failed release leaves state untouched.
        for (node, cores) in part.entries() {
            if held.cores_on(node) < cores {
                return Err(Error::NotAllocated { job, node });
            }
        }
        for (node, cores) in part.entries() {
            held.remove(node, cores);
            self.nodes[node.0 as usize].release(job, cores);
        }
        if self.jobs[&job].total_cores() == 0 {
            self.jobs.remove(&job);
        }
        Ok(())
    }

    /// Releases everything `job` holds (normal job completion).
    pub fn release_all(&mut self, job: JobId) -> Result<Allocation> {
        let alloc = self.jobs.remove(&job).ok_or(Error::UnknownJob(job))?;
        for (node, cores) in alloc.entries() {
            self.nodes[node.0 as usize].release(job, cores);
        }
        Ok(alloc)
    }

    /// Marks a node down, evicting every allocation on it. Returns the jobs
    /// that lost cores (candidates for spare-node reallocation — the
    /// fault-tolerance use the paper's introduction motivates).
    pub fn fail_node(&mut self, id: NodeId) -> Result<Vec<JobId>> {
        let node = self
            .nodes
            .get_mut(id.0 as usize)
            .ok_or(Error::UnknownNode(id))?;
        let victims = node.fail();
        for &(job, cores) in &victims {
            if let Some(a) = self.jobs.get_mut(&job) {
                a.remove(id, cores);
                if a.total_cores() == 0 {
                    self.jobs.remove(&job);
                }
            }
        }
        Ok(victims.into_iter().map(|(j, _)| j).collect())
    }

    /// Brings a failed node back up (empty).
    pub fn repair_node(&mut self, id: NodeId) -> Result<()> {
        self.nodes
            .get_mut(id.0 as usize)
            .ok_or(Error::UnknownNode(id))?
            .repair();
        Ok(())
    }

    /// Installs an **exact** allocation for `job` — the restore half of
    /// crash recovery. [`Cluster::allocate`] re-plans placement against the
    /// current load, but a server rebuilding itself from a journal snapshot
    /// must re-commit the very placement that was recorded, or every later
    /// replayed decision would see a different cluster.
    pub fn adopt(&mut self, job: JobId, alloc: &Allocation) -> Result<()> {
        if self.jobs.contains_key(&job) {
            return Err(Error::InvalidState {
                job,
                operation: "adopt",
                state: "already allocated",
            });
        }
        if alloc.is_empty() {
            return Err(Error::BadConfig(format!(
                "{job}: adopt of empty allocation"
            )));
        }
        self.commit(job, alloc)
    }

    fn commit(&mut self, job: JobId, alloc: &Allocation) -> Result<()> {
        // Validate the whole placement before mutating anything.
        for (node, cores) in alloc.entries() {
            let n = self.node(node)?;
            if !n.is_up() || n.cores_idle() < cores {
                return Err(Error::CoresBusy {
                    node,
                    requested: cores,
                    idle: n.cores_idle(),
                });
            }
        }
        for (node, cores) in alloc.entries() {
            self.nodes[node.0 as usize].acquire(job, cores);
        }
        self.jobs
            .entry(job)
            .or_insert_with(Allocation::empty)
            .merge(alloc);
        Ok(())
    }

    /// Debug invariant check: per-node books balance with per-job books.
    pub fn check_invariants(&self) -> Result<()> {
        let mut per_node: HashMap<NodeId, u32> = HashMap::new();
        for (_, alloc) in self.allocated_jobs() {
            for (node, cores) in alloc.entries() {
                *per_node.entry(node).or_default() += cores;
            }
        }
        for n in &self.nodes {
            let from_jobs = per_node.get(&n.id()).copied().unwrap_or(0);
            if n.is_up() {
                if from_jobs != n.cores_used() {
                    return Err(Error::BadConfig(format!(
                        "{}: job books say {from_jobs}, node says {}",
                        n.id(),
                        n.cores_used()
                    )));
                }
                if n.cores_used() > n.cores_total() {
                    return Err(Error::BadConfig(format!("{} over-committed", n.id())));
                }
            } else if from_jobs != 0 {
                return Err(Error::BadConfig(format!(
                    "{} is down but has allocations",
                    n.id()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_cluster() -> Cluster {
        Cluster::homogeneous(15, 8)
    }

    #[test]
    fn contiguous_slices_cover_the_cluster() {
        let c = paper_cluster(); // 15 nodes × 8 cores
        for slices in 1..=6 {
            let view = c.contiguous_slices(slices);
            assert_eq!(view.len(), slices);
            assert_eq!(view.iter().map(|s| s.node_count).sum::<u32>(), 15);
            assert_eq!(view.iter().map(|s| s.cores).sum::<u32>(), 120);
            // Contiguity: each slice starts right after its predecessor.
            let mut next = 0u32;
            for s in &view {
                assert_eq!(s.first_node, Some(NodeId(next)));
                next += s.node_count;
            }
        }
        // Dividing shard counts are node-aligned and even.
        for slices in [1usize, 3, 5] {
            let view = c.contiguous_slices(slices);
            for s in &view {
                assert_eq!(s.cores, 120 / slices as u32);
            }
        }
        // A failed node's cores vanish from its slice only.
        let mut c = paper_cluster();
        c.fail_node(NodeId(0)).unwrap();
        let view = c.contiguous_slices(3);
        assert_eq!(view[0].cores, 32);
        assert_eq!(view[1].cores, 40);
        // More slices than nodes: trailing slices are empty.
        let tiny = Cluster::homogeneous(2, 4);
        let view = tiny.contiguous_slices(4);
        assert_eq!(view[2].first_node, None);
        assert_eq!(view[3].cores, 0);
    }

    #[test]
    fn capacity() {
        let c = paper_cluster();
        assert_eq!(c.total_cores(), 120);
        assert_eq!(c.idle_cores(), 120);
        assert_eq!(c.busy_cores(), 0);
        assert_eq!(c.node_count(), 15);
    }

    #[test]
    fn allocate_and_release() {
        let mut c = paper_cluster();
        let a = c.allocate(JobId(1), 20, AllocPolicy::Pack).unwrap();
        assert_eq!(a.total_cores(), 20);
        assert_eq!(c.idle_cores(), 100);
        assert_eq!(c.cores_of(JobId(1)), 20);
        c.check_invariants().unwrap();
        c.release_all(JobId(1)).unwrap();
        assert_eq!(c.idle_cores(), 120);
        assert!(c.allocation_of(JobId(1)).is_none());
        c.check_invariants().unwrap();
    }

    #[test]
    fn pack_minimises_nodes() {
        let mut c = paper_cluster();
        c.allocate(JobId(1), 4, AllocPolicy::Pack).unwrap();
        // Second small job should land on the same (most-loaded) node.
        let a2 = c.allocate(JobId(2), 4, AllocPolicy::Pack).unwrap();
        assert_eq!(a2.node_count(), 1);
        assert_eq!(c.nodes().filter(|n| n.cores_used() > 0).count(), 1);
    }

    #[test]
    fn spread_uses_fresh_nodes() {
        let mut c = paper_cluster();
        c.allocate(JobId(1), 4, AllocPolicy::Spread).unwrap();
        c.allocate(JobId(2), 4, AllocPolicy::Spread).unwrap();
        assert_eq!(c.nodes().filter(|n| n.cores_used() > 0).count(), 2);
    }

    #[test]
    fn node_exclusive_takes_whole_nodes() {
        let mut c = paper_cluster();
        let a = c
            .allocate(JobId(1), 12, AllocPolicy::NodeExclusive)
            .unwrap();
        // 12 cores at 8/node => two whole nodes (16 cores) consumed.
        assert_eq!(a.total_cores(), 16);
        assert_eq!(a.node_count(), 2);
        // A second exclusive job cannot share those nodes.
        let b = c.allocate(JobId(2), 8, AllocPolicy::NodeExclusive).unwrap();
        assert!(a.entries().all(|(n, _)| b.cores_on(n) == 0));
    }

    #[test]
    fn over_capacity_rejected() {
        let mut c = paper_cluster();
        assert!(matches!(
            c.allocate(JobId(1), 121, AllocPolicy::Pack),
            Err(Error::RequestExceedsSystem { .. })
        ));
        c.allocate(JobId(1), 120, AllocPolicy::Pack).unwrap();
        assert!(c.allocate(JobId(2), 1, AllocPolicy::Pack).is_err());
        c.check_invariants().unwrap();
    }

    #[test]
    fn expand_is_dyn_join() {
        let mut c = paper_cluster();
        c.allocate(JobId(1), 8, AllocPolicy::Pack).unwrap();
        let added = c.expand(JobId(1), 4, AllocPolicy::Pack).unwrap();
        assert_eq!(added.total_cores(), 4);
        assert_eq!(c.cores_of(JobId(1)), 12);
        c.check_invariants().unwrap();
        // Expanding an unknown job fails.
        assert!(matches!(
            c.expand(JobId(99), 4, AllocPolicy::Pack),
            Err(Error::UnknownJob(_))
        ));
    }

    #[test]
    fn partial_release_is_dyn_disjoin() {
        let mut c = paper_cluster();
        c.allocate(JobId(1), 8, AllocPolicy::Spread).unwrap();
        let added = c.expand(JobId(1), 6, AllocPolicy::Spread).unwrap();
        // Release an arbitrary subset of the added cores: 2 from one node.
        let (node, _) = added.entries().next().unwrap();
        let mut part = Allocation::empty();
        part.add(node, 2);
        c.release_partial(JobId(1), &part).unwrap();
        assert_eq!(c.cores_of(JobId(1)), 12);
        c.check_invariants().unwrap();
    }

    #[test]
    fn partial_release_validates_atomically() {
        let mut c = paper_cluster();
        c.allocate(JobId(1), 8, AllocPolicy::Pack).unwrap();
        let node = c
            .allocation_of(JobId(1))
            .unwrap()
            .entries()
            .next()
            .unwrap()
            .0;
        let mut bad = Allocation::empty();
        bad.add(node, 99);
        assert!(c.release_partial(JobId(1), &bad).is_err());
        // Nothing changed.
        assert_eq!(c.cores_of(JobId(1)), 8);
        c.check_invariants().unwrap();
    }

    #[test]
    fn node_failure_evicts() {
        let mut c = paper_cluster();
        c.allocate(JobId(1), 16, AllocPolicy::Spread).unwrap();
        let victim_node = c
            .allocation_of(JobId(1))
            .unwrap()
            .entries()
            .next()
            .unwrap()
            .0;
        let victims = c.fail_node(victim_node).unwrap();
        assert_eq!(victims, vec![JobId(1)]);
        assert!(c.total_cores() < 120);
        c.check_invariants().unwrap();
        c.repair_node(victim_node).unwrap();
        assert_eq!(c.total_cores(), 120);
        c.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "already holds an allocation")]
    fn double_allocate_panics() {
        let mut c = paper_cluster();
        c.allocate(JobId(1), 4, AllocPolicy::Pack).unwrap();
        let _ = c.allocate(JobId(1), 4, AllocPolicy::Pack);
    }

    #[test]
    fn heterogeneous_cluster() {
        let c = Cluster::from_core_counts(&[4, 8, 16]);
        assert_eq!(c.total_cores(), 28);
        assert_eq!(c.node_count(), 3);
    }
}
