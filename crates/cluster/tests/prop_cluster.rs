//! Property tests of the cluster substrate: no core is ever double-booked,
//! books always balance, any interleaving of allocate / expand / partial
//! release / full release / failure keeps the invariants.

use dynbatch_cluster::{Allocation, Cluster};
use dynbatch_core::testkit::{check, TestRng};
use dynbatch_core::{AllocPolicy, JobId, NodeId};

#[derive(Debug, Clone)]
enum Op {
    Allocate { job: u64, cores: u32, policy: u8 },
    Expand { job: u64, cores: u32 },
    ReleasePart { job: u64, cores: u32 },
    ReleaseAll { job: u64 },
    Fail { node: u32 },
    Repair { node: u32 },
}

fn ops(rng: &mut TestRng) -> Vec<Op> {
    let n = rng.range_usize(0, 60);
    (0..n)
        .map(|_| match rng.below(6) {
            0 => Op::Allocate {
                job: rng.below(8),
                cores: rng.range_u32(1, 40),
                policy: rng.range_u32(0, 3) as u8,
            },
            1 => Op::Expand {
                job: rng.below(8),
                cores: rng.range_u32(1, 16),
            },
            2 => Op::ReleasePart {
                job: rng.below(8),
                cores: rng.range_u32(1, 16),
            },
            3 => Op::ReleaseAll { job: rng.below(8) },
            4 => Op::Fail {
                node: rng.range_u32(0, 15),
            },
            _ => Op::Repair {
                node: rng.range_u32(0, 15),
            },
        })
        .collect()
}

fn policy_of(p: u8) -> AllocPolicy {
    match p % 3 {
        0 => AllocPolicy::Pack,
        1 => AllocPolicy::Spread,
        _ => AllocPolicy::NodeExclusive,
    }
}

#[test]
fn any_interleaving_preserves_invariants() {
    check(96, 0xC1u64, |rng| {
        let mut c = Cluster::homogeneous(15, 8);
        for op in ops(rng) {
            match op {
                Op::Allocate { job, cores, policy } => {
                    let job = JobId(job);
                    if c.allocation_of(job).is_none() {
                        let _ = c.allocate(job, cores, policy_of(policy));
                    }
                }
                Op::Expand { job, cores } => {
                    let _ = c.expand(JobId(job), cores, AllocPolicy::Pack);
                }
                Op::ReleasePart { job, cores } => {
                    let job = JobId(job);
                    if let Some(alloc) = c.allocation_of(job) {
                        // Release up to `cores` cores, node by node.
                        let mut part = Allocation::empty();
                        let mut left = cores.min(alloc.total_cores());
                        for (node, held) in alloc.entries() {
                            if left == 0 {
                                break;
                            }
                            let take = held.min(left);
                            part.add(node, take);
                            left -= take;
                        }
                        if !part.is_empty() {
                            c.release_partial(job, &part)
                                .expect("subset release succeeds");
                        }
                    }
                }
                Op::ReleaseAll { job } => {
                    let _ = c.release_all(JobId(job));
                }
                Op::Fail { node } => {
                    let _ = c.fail_node(NodeId(node));
                }
                Op::Repair { node } => {
                    let _ = c.repair_node(NodeId(node));
                }
            }
            // The central invariant, after every single operation.
            if let Err(e) = c.check_invariants() {
                panic!("invariant violated: {e}");
            }
            assert!(c.busy_cores() + c.idle_cores() == c.total_cores());
        }
    });
}

#[test]
fn plans_are_exact() {
    check(96, 0x91A5, |rng| {
        let cores = rng.range_u32(0, 121);
        let policy = rng.range_u32(0, 3) as u8;
        let c = Cluster::homogeneous(15, 8);
        if let Some(plan) = c.plan(cores, policy_of(policy)) {
            match policy_of(policy) {
                // Node-exclusive may round up to whole nodes.
                AllocPolicy::NodeExclusive => {
                    assert!(plan.total_cores() >= cores);
                    assert_eq!(plan.total_cores() % 8, 0);
                }
                _ => assert_eq!(plan.total_cores(), cores),
            }
        } else {
            assert!(cores > 120);
        }
    });
}

#[test]
fn failure_evicts_exactly_the_nodes_jobs() {
    check(96, 0xFA11, |rng| {
        let node = rng.range_u32(0, 15);
        let mut c = Cluster::homogeneous(15, 8);
        c.allocate(JobId(1), 60, AllocPolicy::Spread).unwrap();
        c.allocate(JobId(2), 30, AllocPolicy::Spread).unwrap();
        let before_1 = c.allocation_of(JobId(1)).unwrap().cores_on(NodeId(node));
        let before_2 = c.allocation_of(JobId(2)).unwrap().cores_on(NodeId(node));
        let victims = c.fail_node(NodeId(node)).unwrap();
        assert_eq!(victims.contains(&JobId(1)), before_1 > 0);
        assert_eq!(victims.contains(&JobId(2)), before_2 > 0);
        if let Err(e) = c.check_invariants() {
            panic!("{e}");
        }
    });
}
