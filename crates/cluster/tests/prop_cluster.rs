//! Property tests of the cluster substrate: no core is ever double-booked,
//! books always balance, any interleaving of allocate / expand / partial
//! release / full release / failure keeps the invariants.

use dynbatch_cluster::{Allocation, Cluster};
use dynbatch_core::{AllocPolicy, JobId, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Allocate { job: u64, cores: u32, policy: u8 },
    Expand { job: u64, cores: u32 },
    ReleasePart { job: u64, cores: u32 },
    ReleaseAll { job: u64 },
    Fail { node: u32 },
    Repair { node: u32 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..8, 1u32..40, 0u8..3).prop_map(|(job, cores, policy)| Op::Allocate {
                job,
                cores,
                policy
            }),
            (0u64..8, 1u32..16).prop_map(|(job, cores)| Op::Expand { job, cores }),
            (0u64..8, 1u32..16).prop_map(|(job, cores)| Op::ReleasePart { job, cores }),
            (0u64..8).prop_map(|job| Op::ReleaseAll { job }),
            (0u32..15).prop_map(|node| Op::Fail { node }),
            (0u32..15).prop_map(|node| Op::Repair { node }),
        ],
        0..60,
    )
}

fn policy_of(p: u8) -> AllocPolicy {
    match p % 3 {
        0 => AllocPolicy::Pack,
        1 => AllocPolicy::Spread,
        _ => AllocPolicy::NodeExclusive,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn any_interleaving_preserves_invariants(ops in ops()) {
        let mut c = Cluster::homogeneous(15, 8);
        for op in ops {
            match op {
                Op::Allocate { job, cores, policy } => {
                    let job = JobId(job);
                    if c.allocation_of(job).is_none() {
                        let _ = c.allocate(job, cores, policy_of(policy));
                    }
                }
                Op::Expand { job, cores } => {
                    let _ = c.expand(JobId(job), cores, AllocPolicy::Pack);
                }
                Op::ReleasePart { job, cores } => {
                    let job = JobId(job);
                    if let Some(alloc) = c.allocation_of(job) {
                        // Release up to `cores` cores, node by node.
                        let mut part = Allocation::empty();
                        let mut left = cores.min(alloc.total_cores());
                        for (node, held) in alloc.entries() {
                            if left == 0 { break; }
                            let take = held.min(left);
                            part.add(node, take);
                            left -= take;
                        }
                        if !part.is_empty() {
                            c.release_partial(job, &part).expect("subset release succeeds");
                        }
                    }
                }
                Op::ReleaseAll { job } => {
                    let _ = c.release_all(JobId(job));
                }
                Op::Fail { node } => {
                    let _ = c.fail_node(NodeId(node));
                }
                Op::Repair { node } => {
                    let _ = c.repair_node(NodeId(node));
                }
            }
            // The central invariant, after every single operation.
            c.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
            prop_assert!(c.busy_cores() + c.idle_cores() == c.total_cores());
        }
    }

    #[test]
    fn plans_are_exact(cores in 0u32..121, policy in 0u8..3) {
        let c = Cluster::homogeneous(15, 8);
        if let Some(plan) = c.plan(cores, policy_of(policy)) {
            match policy_of(policy) {
                // Node-exclusive may round up to whole nodes.
                AllocPolicy::NodeExclusive => {
                    prop_assert!(plan.total_cores() >= cores);
                    prop_assert_eq!(plan.total_cores() % 8, 0);
                }
                _ => prop_assert_eq!(plan.total_cores(), cores),
            }
        } else {
            prop_assert!(cores > 120);
        }
    }

    #[test]
    fn failure_evicts_exactly_the_nodes_jobs(node in 0u32..15) {
        let mut c = Cluster::homogeneous(15, 8);
        c.allocate(JobId(1), 60, AllocPolicy::Spread).unwrap();
        c.allocate(JobId(2), 30, AllocPolicy::Spread).unwrap();
        let before_1 = c.allocation_of(JobId(1)).unwrap().cores_on(NodeId(node));
        let before_2 = c.allocation_of(JobId(2)).unwrap().cores_on(NodeId(node));
        let victims = c.fail_node(NodeId(node)).unwrap();
        prop_assert_eq!(victims.contains(&JobId(1)), before_1 > 0);
        prop_assert_eq!(victims.contains(&JobId(2)), before_2 > 0);
        c.check_invariants().map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}
