//! The threaded deployment: server thread, mom threads, client handle.
//!
//! ## Threading model
//!
//! An ensemble runs exactly `nodes + 2` threads (+1 with fault injection):
//! one server, one mom per node, the server's [`TimerService`] worker, and
//! — when a [`FaultPlan`] is configured — the chaos postman. Every thread
//! is named with the ensemble's [`DaemonHandle::thread_tag`] prefix and is
//! joined by [`DaemonHandle::shutdown`]; a drained-and-shut-down ensemble
//! leaves zero live threads (the chaos suite asserts this by scanning
//! `/proc/self/task`).
//!
//! All deadlines — app exits (the "application" is a timer running the
//! job's modelled duration) and negotiation expiries — live in the one
//! timer service and are cancellable. Firings carry the generation (app
//! timers) or request sequence number (expiry timers) they were armed
//! against, and the server drops firings whose tag no longer matches, so
//! a stale timer can never kill a restarted job or reject a granted
//! request.

use crate::fault::{Chaos, ChaosCore, FaultPlan, MomLink, ServerLink};
use crate::timer::{TimerHandle, TimerId, TimerService};
use crate::wire::{ClientReq, MomMsg, PeerMsg, ReplicationStatus, ServerCmd};
use dynbatch_cluster::{Allocation, Cluster};
use dynbatch_core::{
    FairshareMode, JobId, JobOutcome, JobSpec, JobState, NodeId, SchedulerConfig, SimDuration,
    SimTime, UserId,
};
use dynbatch_sched::Maui;
use dynbatch_server::reactor::{BatchEvent, Command as ReactorCommand, Reply as ReactorReply};
use dynbatch_server::replication::{HubConfig, ReadRouter, ReplFaultPlan, ReplicationHub};
use dynbatch_server::{
    Applied, Mom, MomOutput, MomToServer, PbsServer, Reactor, ReactorClient, ReactorConnector,
    ServerToMom, TmRequest, TmResponse,
};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Daemon deployment parameters.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Compute nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Scheduler configuration.
    pub sched: SchedulerConfig,
    /// Optional fault-injection plan for the channel layer.
    pub faults: Option<FaultPlan>,
    /// Optional journal-streaming replication (hot followers + failover).
    pub replication: Option<ReplicationConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            nodes: 15,
            cores_per_node: 8,
            sched: SchedulerConfig::paper_eval(),
            faults: None,
            replication: None,
        }
    }
}

/// Replication deployment parameters.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Hot follower servers fed from the leader's journal stream.
    pub followers: u32,
    /// Gate group-commit reactor acks on replication: an ack is released
    /// only once every live follower has applied the batch's records, so
    /// no acked command can die with the leader. Off = ack-on-append
    /// (crash-safe via the local journal, but a failover may lose acked
    /// tail records — reported, not silent).
    pub ack_after_replicate: bool,
    /// Serve reactor `qstat` from followers (bounded staleness; replies
    /// carry the serving follower's watermark).
    pub read_offload: bool,
    /// With read offload: a connection's reads only go to a follower
    /// whose watermark covers the connection's last acked write.
    pub read_your_writes: bool,
    /// Rolling-digest frame interval (leader-record coordinates).
    pub digest_every: u64,
}

impl ReplicationConfig {
    /// `followers` hot replicas with the safe defaults: replication-gated
    /// acks, read offload with read-your-writes routing, digests every 32
    /// records.
    pub fn new(followers: u32) -> Self {
        ReplicationConfig {
            followers,
            ack_after_replicate: true,
            read_offload: true,
            read_your_writes: true,
            digest_every: 32,
        }
    }
}

/// Distinguishes ensembles within one process, so thread names (15-char
/// budget) stay unique across concurrently running tests.
static ENSEMBLE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Client handle to a running daemon ensemble.
///
/// Wall-clock milliseconds map one-to-one onto [`SimTime`] milliseconds:
/// a job whose execution model says "500 ms" really runs for 500 ms of
/// wall time. The protocol path (client → mom → server → scheduler →
/// mom fan-out → client) is identical to the simulator's, which is the
/// point: the Fig 12 overhead study measures these real hops.
pub struct DaemonHandle {
    server_tx: Sender<ServerCmd>,
    mom_links: Vec<MomLink>,
    raw_mom_txs: Vec<Sender<MomMsg>>,
    ms_directory: Arc<Mutex<HashMap<JobId, NodeId>>>,
    threads: Vec<JoinHandle<()>>,
    chaos: Option<Chaos>,
    reactor: ReactorConnector,
    tag: String,
}

impl DaemonHandle {
    /// Boots the ensemble: one server thread plus one mom thread per node.
    pub fn start(config: DaemonConfig) -> Self {
        let ens = ENSEMBLE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tag = format!("pbs{ens}.");
        let (server_tx, server_rx) = channel::<ServerCmd>();
        let mut raw_mom_txs = Vec::new();
        let mut mom_rxs = Vec::new();
        for _ in 0..config.nodes {
            let (tx, rx) = channel::<MomMsg>();
            raw_mom_txs.push(tx);
            mom_rxs.push(rx);
        }
        // The chaos postman delivers onto the *raw* senders: a faulted
        // message passes through the fault layer exactly once.
        let chaos = config.faults.clone().map(|plan| {
            Chaos::start(
                plan,
                &format!("{tag}post"),
                server_tx.clone(),
                raw_mom_txs.clone(),
            )
        });
        let chaos_core: Option<Arc<ChaosCore>> = chaos.as_ref().map(|c| c.core());
        let mom_links: Vec<MomLink> = raw_mom_txs
            .iter()
            .enumerate()
            .map(|(i, tx)| MomLink::new(i, tx.clone(), chaos_core.clone()))
            .collect();
        let ms_directory: Arc<Mutex<HashMap<JobId, NodeId>>> = Arc::default();

        let mut threads = Vec::new();
        // Mom threads.
        for (i, rx) in mom_rxs.into_iter().enumerate() {
            let server = ServerLink::new(server_tx.clone(), chaos_core.clone());
            let peers = mom_links.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("{tag}mom{i}"))
                    .spawn(move || mom_main(NodeId(i as u32), rx, server, peers))
                    .expect("spawn mom"),
            );
        }
        // The command reactor rides the server thread; its wake nudge goes
        // down the raw channel (infrastructure, never faulted — the
        // commands themselves travel on the reactor's own channel).
        let reactor = Reactor::new();
        let connector = reactor.connector();
        {
            let wake_tx = server_tx.clone();
            reactor.set_wake(move || {
                let _ = wake_tx.send(ServerCmd::ReactorWake);
            });
        }
        // Server thread.
        {
            let moms = mom_links.clone();
            let ms_dir = Arc::clone(&ms_directory);
            let self_tx = server_tx.clone();
            let tag = tag.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("{tag}srv"))
                    .spawn(move || {
                        server_main(config, server_rx, self_tx, moms, ms_dir, reactor, tag)
                    })
                    .expect("spawn server"),
            );
        }
        DaemonHandle {
            server_tx,
            mom_links,
            raw_mom_txs,
            ms_directory,
            threads,
            chaos,
            reactor: connector,
            tag,
        }
    }

    /// Opens a multiplexed command connection to the server's reactor:
    /// textual `qsub`/`qstat`/`qdel`/`dynget`/`dynfree` lines in, ordered
    /// [`ReactorReply`]s out. Any number of connections may be open
    /// concurrently; commands apply in ticket order regardless of thread
    /// interleaving, and an ack is only delivered once the command's
    /// journal record is appended.
    pub fn connect(&self) -> ReactorClient {
        self.reactor.connect()
    }

    /// The ensemble's thread-name prefix; every thread this handle owns is
    /// named `{tag}…`, so a leak check can scan for survivors after
    /// [`DaemonHandle::shutdown`].
    pub fn thread_tag(&self) -> &str {
        &self.tag
    }

    /// Submits a job (blocking).
    pub fn qsub(&self, spec: JobSpec) -> Result<JobId, String> {
        let (tx, rx) = channel();
        self.server_tx
            .send(ServerCmd::Client(ClientReq::QSub {
                spec: Box::new(spec),
                reply: tx,
            }))
            .map_err(|e| e.to_string())?;
        rx.recv().map_err(|e| e.to_string())?
    }

    /// Deletes a job (blocking).
    pub fn qdel(&self, job: JobId) -> Result<(), String> {
        let (tx, rx) = channel();
        self.server_tx
            .send(ServerCmd::Client(ClientReq::QDel { job, reply: tx }))
            .map_err(|e| e.to_string())?;
        rx.recv().map_err(|e| e.to_string())?
    }

    /// Queries a job's state (blocking).
    pub fn qstat(&self, job: JobId) -> Option<JobState> {
        let (tx, rx) = channel();
        self.server_tx
            .send(ServerCmd::Client(ClientReq::QStat { job, reply: tx }))
            .ok()?;
        rx.recv().ok().flatten()
    }

    /// Blocks until `job` has started (true) or became terminal without
    /// ever starting (false) — event-driven, no polling.
    pub fn await_running(&self, job: JobId, timeout: Duration) -> bool {
        let (tx, rx) = channel();
        if self
            .server_tx
            .send(ServerCmd::Client(ClientReq::AwaitRunning {
                job,
                reply: tx,
            }))
            .is_err()
        {
            return false;
        }
        rx.recv_timeout(timeout).unwrap_or(false)
    }

    /// Polls until `job` reaches `state` or `timeout` elapses. Prefer
    /// [`DaemonHandle::await_running`] / [`DaemonHandle::await_drained`]
    /// where they fit — this exists for states they cannot express.
    pub fn wait_for_state(&self, job: JobId, state: JobState, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.qstat(job) == Some(state) {
                return true;
            }
            thread::sleep(Duration::from_millis(1));
        }
        false
    }

    /// Calls `tm_dynget()` from the job's mother superior, blocking until
    /// the batch system answers (grant with the added hostlist, or
    /// denial).
    pub fn tm_dynget(&self, job: JobId, extra_cores: u32) -> TmResponse {
        self.tm_dynget_with(job, extra_cores, None)
    }

    /// The negotiation extension: blocks up to `timeout` while the server
    /// keeps the request queued, retrying at every scheduling iteration;
    /// the call returns as soon as the request is granted, or denied once
    /// the window closes.
    pub fn tm_dynget_negotiated(
        &self,
        job: JobId,
        extra_cores: u32,
        timeout: Duration,
    ) -> TmResponse {
        self.tm_dynget_with(
            job,
            extra_cores,
            Some(dynbatch_core::SimDuration::from_millis(
                timeout.as_millis() as u64
            )),
        )
    }

    fn tm_dynget_with(
        &self,
        job: JobId,
        extra_cores: u32,
        timeout: Option<dynbatch_core::SimDuration>,
    ) -> TmResponse {
        let Some(ms) = self.ms_directory.lock().unwrap().get(&job).copied() else {
            return TmResponse::DynDenied;
        };
        let (tx, rx) = channel();
        self.mom_links[ms.0 as usize].send(MomMsg::Tm {
            job,
            req: TmRequest::DynGet {
                extra_cores,
                timeout,
            },
            reply: tx,
        });
        rx.recv().unwrap_or(TmResponse::DynDenied)
    }

    /// [`DaemonHandle::tm_dynget`] plus a wall-clock latency measurement —
    /// the paper's Fig 12 metric.
    pub fn tm_dynget_timed(&self, job: JobId, extra_cores: u32) -> (TmResponse, Duration) {
        let t0 = Instant::now();
        let resp = self.tm_dynget(job, extra_cores);
        (resp, t0.elapsed())
    }

    /// Calls `tm_dynfree()` to release part of the allocation.
    pub fn tm_dynfree(&self, job: JobId, released: Allocation) -> TmResponse {
        let Some(ms) = self.ms_directory.lock().unwrap().get(&job).copied() else {
            return TmResponse::DynDenied;
        };
        let (tx, rx) = channel();
        self.mom_links[ms.0 as usize].send(MomMsg::Tm {
            job,
            req: TmRequest::DynFree { released },
            reply: tx,
        });
        rx.recv().unwrap_or(TmResponse::DynDenied)
    }

    /// Blocks until every submitted job is terminal, or `timeout`.
    pub fn await_drained(&self, timeout: Duration) -> bool {
        let (tx, rx) = channel();
        if self
            .server_tx
            .send(ServerCmd::Client(ClientReq::AwaitDrained { reply: tx }))
            .is_err()
        {
            return false;
        }
        rx.recv_timeout(timeout).is_ok()
    }

    /// Snapshot of the accounting log (completed-job outcomes).
    pub fn outcomes(&self) -> Vec<JobOutcome> {
        let (tx, rx) = channel();
        if self
            .server_tx
            .send(ServerCmd::Client(ClientReq::Outcomes { reply: tx }))
            .is_err()
        {
            return Vec::new();
        }
        rx.recv().unwrap_or_default()
    }

    /// Point-in-time view of the replication layer; `None` when the
    /// daemon runs without followers (or has already shut down).
    pub fn replication_status(&self) -> Option<ReplicationStatus> {
        let (tx, rx) = channel();
        if self
            .server_tx
            .send(ServerCmd::Client(ClientReq::ReplicationStatus {
                reply: tx,
            }))
            .is_err()
        {
            return None;
        }
        rx.recv().ok().flatten()
    }

    /// Total core-seconds the fairshare tracker has charged to `user`.
    pub fn fairshare_charged(&self, user: UserId) -> f64 {
        let (tx, rx) = channel();
        if self
            .server_tx
            .send(ServerCmd::Client(ClientReq::FairshareCharged {
                user,
                reply: tx,
            }))
            .is_err()
        {
            return 0.0;
        }
        rx.recv().unwrap_or(0.0)
    }

    /// Stops all daemons and joins their threads (server, moms, timer
    /// worker, chaos postman) — nothing outlives the handle.
    pub fn shutdown(self) {
        // Control messages go down the raw channels: shutdown must work
        // even under a message-dropping fault plan.
        let _ = self.server_tx.send(ServerCmd::Shutdown);
        for tx in &self.raw_mom_txs {
            let _ = tx.send(MomMsg::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
        drop(self.mom_links);
        if let Some(chaos) = self.chaos {
            chaos.shutdown();
        }
    }
}

/// Compaction interval of the daemon's write-ahead journal: a snapshot
/// record replaces the history every this-many mutation records.
const JOURNAL_SNAPSHOT_EVERY: usize = 64;

/// The server daemon's state: `pbs_server` + Maui + the timer bookkeeping
/// that makes firings cancellable and stale-proof.
struct ServerDaemon {
    server: PbsServer,
    maui: Maui,
    /// Scheduler configuration, kept to rebuild a fresh Maui when the
    /// server crash-restarts (scheduler soft state dies with the process).
    sched: SchedulerConfig,
    /// Outstanding server-crash points from the fault plan, ascending, in
    /// journal-record coordinates.
    crash_points: VecDeque<u64>,
    moms: Vec<MomLink>,
    ms_directory: Arc<Mutex<HashMap<JobId, NodeId>>>,
    timers: TimerHandle<ServerCmd>,
    /// The app-exit timer of each running job.
    app_timers: HashMap<JobId, TimerId>,
    /// The negotiation-expiry timer of each pending dynamic request.
    dyn_timers: HashMap<JobId, TimerId>,
    /// Run generation per job: bumped at every (re)start; app-exit firings
    /// carrying an older generation are stale and dropped.
    job_gen: HashMap<JobId, u64>,
    /// Per-user core-milliseconds already forwarded from the server's
    /// journalled usage ledger into the Maui fairshare tracker. Charges
    /// live in the server (and thus in the journal); the tracker is synced
    /// by delta each cycle, so a crash-restart's fresh Maui recharges the
    /// full recovered totals instead of forfeiting them.
    fs_synced: HashMap<UserId, u64>,
    /// The command reactor, parked in an `Option` so polling can split the
    /// borrow (the reactor iterates while its apply closure mutates the
    /// rest of the daemon).
    reactor: Option<Reactor>,
    run_waiters: Vec<(JobId, Sender<bool>)>,
    drain_waiters: Vec<Sender<()>>,
    /// The replication host, when configured.
    repl: Option<ReplHost>,
    /// Outstanding leader-kill points from the fault plan, ascending, in
    /// journal-record coordinates (consumed only while `repl` is live).
    leader_kill_points: VecDeque<u64>,
}

/// Everything the server daemon keeps for replication: the streaming hub
/// (owning the follower threads), staleness-aware read routing, and the
/// accounting the availability story is judged by.
struct ReplHost {
    hub: ReplicationHub,
    router: ReadRouter,
    cfg: ReplicationConfig,
    /// Completed failovers.
    failovers: u64,
    /// Watermark through which replication-gated acks were released.
    acked_watermark: u64,
    /// Lost-tail accounting from the most recent failover.
    lost_records: u64,
    acked_lost: u64,
    /// Divergence errors surfaced by followers (sticky until queried).
    errors: Vec<String>,
}

/// The server daemon: owns `pbs_server` and the Maui scheduler; every
/// state change triggers a scheduling cycle, exactly like the simulator.
fn server_main(
    config: DaemonConfig,
    rx: Receiver<ServerCmd>,
    self_tx: Sender<ServerCmd>,
    moms: Vec<MomLink>,
    ms_directory: Arc<Mutex<HashMap<JobId, NodeId>>>,
    reactor: Reactor,
    tag: String,
) {
    // Timer firings are delivered into the server's own queue on the raw
    // sender: deadlines are trusted infrastructure, never faulted.
    let timers = TimerService::start(&format!("{tag}tmr"), move |cmd| {
        let _ = self_tx.send(cmd);
    });
    let cluster = Cluster::homogeneous(config.nodes, config.cores_per_node);
    let alloc_policy = config.sched.alloc;
    let crash_points: VecDeque<u64> = config
        .faults
        .as_ref()
        .map(|p| p.server_crashes.iter().map(|c| c.after_record).collect())
        .unwrap_or_default();
    let leader_kill_points: VecDeque<u64> = config
        .faults
        .as_ref()
        .map(|p| p.leader_kills.iter().map(|c| c.after_record).collect())
        .unwrap_or_default();
    // The replication hub and its follower threads live on the server
    // thread's side of the world: streaming is pumped at every command
    // boundary, so follower state only ever reflects journal prefixes.
    let repl = config.replication.as_ref().map(|rc| {
        let faults = config
            .faults
            .as_ref()
            .and_then(|p| p.replication.clone())
            .unwrap_or_else(|| ReplFaultPlan::none(0));
        let mut hub = ReplicationHub::new(HubConfig {
            digest_every: rc.digest_every,
            faults,
            ..HubConfig::default()
        });
        for i in 0..rc.followers {
            hub.add_follower(&format!("{tag}rep{i}"));
        }
        ReplHost {
            hub,
            router: ReadRouter::new(rc.read_your_writes),
            cfg: rc.clone(),
            failovers: 0,
            acked_watermark: 0,
            lost_records: 0,
            acked_lost: 0,
            errors: Vec::new(),
        }
    });
    // The daemon always journals: crash recovery (scheduled by the fault
    // plan or exercised by the chaos suite) depends on it, and the append
    // cost is measured and bounded by the perf harness.
    let mut server = PbsServer::new(cluster, alloc_policy);
    // Half-life before `enable_journal` so the genesis image already
    // carries it; segment-close events feed the window-exact fairshare
    // sync below.
    server.set_usage_half_life(config.sched.fairshare.half_life);
    server.set_publish_usage(config.sched.fairshare.mode == FairshareMode::TimeAware);
    server.set_collect_usage_events(true);
    server.enable_journal(JOURNAL_SNAPSHOT_EVERY);
    let mut d = ServerDaemon {
        server,
        maui: Maui::new(config.sched.clone()),
        sched: config.sched,
        crash_points,
        moms,
        ms_directory,
        timers: timers.handle(),
        app_timers: HashMap::new(),
        dyn_timers: HashMap::new(),
        job_gen: HashMap::new(),
        fs_synced: HashMap::new(),
        reactor: Some(reactor),
        run_waiters: Vec::new(),
        drain_waiters: Vec::new(),
        repl,
        leader_kill_points,
    };
    d.pump_replication(); // seed followers with the genesis snapshot
    let epoch = Instant::now();
    while let Ok(cmd) = rx.recv() {
        let t = SimTime::from_millis(epoch.elapsed().as_millis() as u64);
        if !d.handle(cmd, t) {
            break;
        }
        d.maybe_crash(t);
        d.pump_replication();
        d.flush_waiters();
    }
    // Follower threads are joined before the timer worker: nothing owned
    // by the ensemble outlives the server thread.
    if let Some(mut repl) = d.repl.take() {
        repl.hub.shutdown();
    }
    // Joins the worker; pending app/dyn deadlines die with it.
    timers.shutdown();
}

impl ServerDaemon {
    /// Processes one command; returns `false` on shutdown.
    fn handle(&mut self, cmd: ServerCmd, t: SimTime) -> bool {
        let state_changed = match cmd {
            ServerCmd::Client(req) => self.handle_client(req, t),
            ServerCmd::FromMom(m) => self.handle_mom(m, t),
            ServerCmd::JobExited(job, gen) => {
                // Stale firing (job preempted & restarted since this timer
                // was armed): the generation no longer matches — drop it.
                if self.job_gen.get(&job).copied() == Some(gen) {
                    self.finish_job(job, t)
                } else {
                    false
                }
            }
            ServerCmd::ExpireDyn { job, seq } => self.handle_expiry(job, seq, t),
            ServerCmd::MomRestarted(node) => {
                self.handle_mom_restart(node);
                false
            }
            ServerCmd::ReactorWake => self.reactor_poll(t),
            ServerCmd::Shutdown => return false,
        };
        if state_changed {
            self.cycle(t);
        }
        true
    }

    fn handle_client(&mut self, req: ClientReq, t: SimTime) -> bool {
        match req {
            ClientReq::QSub { spec, reply } => {
                let res = self.server.qsub(*spec, t).map_err(|e| e.to_string());
                let _ = reply.send(res);
                true
            }
            ClientReq::QDel { job, reply } => {
                let was_active = self
                    .server
                    .job(job)
                    .map(|j| j.state.is_active())
                    .unwrap_or(false);
                let res = self.server.qdel(job, t).map_err(|e| e.to_string());
                let ok = res.is_ok();
                if ok && was_active {
                    // A running job dies with its timers disarmed and its
                    // mom told to kill the app (the server settled its
                    // usage charges inside `qdel`).
                    self.cancel_timers(job);
                    let ms = self.ms_directory.lock().unwrap().remove(&job);
                    if let Some(ms) = ms {
                        self.moms[ms.0 as usize]
                            .send(MomMsg::FromServer(ServerToMom::KillJob { job }));
                    }
                }
                let _ = reply.send(res);
                ok
            }
            ClientReq::QStat { job, reply } => {
                let _ = reply.send(self.server.job(job).map(|j| j.state).ok());
                false
            }
            ClientReq::AwaitRunning { job, reply } => {
                // Parked; resolved by flush_waiters after this command.
                self.run_waiters.push((job, reply));
                false
            }
            ClientReq::AwaitDrained { reply } => {
                self.drain_waiters.push(reply);
                false
            }
            ClientReq::Outcomes { reply } => {
                let _ = reply.send(self.server.accounting().outcomes().to_vec());
                false
            }
            ClientReq::FairshareCharged { user, reply } => {
                let _ = reply.send(self.maui.fairshare().charged(user));
                false
            }
            ClientReq::ReplicationStatus { reply } => {
                let status = self.replication_status();
                let _ = reply.send(status);
                false
            }
        }
    }

    fn handle_mom(&mut self, msg: MomToServer, t: SimTime) -> bool {
        match msg {
            MomToServer::DynRequest {
                job,
                extra_cores,
                timeout,
            } => {
                // tm_dynget landed: DynQueued + immediate scheduling cycle
                // (paper: "This triggers a new scheduling cycle").
                let deadline = timeout.map(|w| t + w);
                let res = self
                    .server
                    .tm_dynget_negotiated(job, extra_cores, deadline, t);
                if res.is_ok() {
                    if let Some(d) = deadline {
                        let seq = self
                            .server
                            .pending_dyn_seq(job)
                            .expect("request just queued");
                        self.arm_dyn_timer(job, seq, d, t);
                    }
                    true
                } else {
                    // Already pending or not running: deny straight back.
                    self.send_to_ms(job, ServerToMom::DynReject { job });
                    false
                }
            }
            MomToServer::DynFree { job, released } => {
                let _ = self.server.tm_dynfree(job, &released, t);
                true
            }
            MomToServer::JobStarted {
                job,
                mother_superior,
            } => {
                self.ms_directory
                    .lock()
                    .unwrap()
                    .insert(job, mother_superior);
                false
            }
            MomToServer::JobFinished { job } => self.finish_job(job, t),
        }
    }

    /// A negotiation-expiry firing. A no-op unless the *exact* request it
    /// was armed for (`seq`) is still pending and past its deadline — a
    /// grant, rejection or supersession in the meantime wins the race.
    fn handle_expiry(&mut self, job: JobId, seq: u64, t: SimTime) -> bool {
        if self.server.expire_dyn_request(job, seq, t) {
            self.dyn_timers.remove(&job);
            self.send_to_ms(job, ServerToMom::DynReject { job });
            true
        } else if self.server.pending_dyn_seq(job) == Some(seq) {
            // Fired a hair before the deadline (SimTime truncates to whole
            // milliseconds): re-arm rather than leak a pending request.
            let id = self
                .timers
                .schedule(Duration::from_millis(2), ServerCmd::ExpireDyn { job, seq });
            self.dyn_timers.insert(job, id);
            false
        } else {
            false
        }
    }

    /// A mom lost its state and restarted: re-send `RunJob` for every
    /// active job it mothers so it can rebuild its hostlists. (App
    /// processes survive the mom's restart — their deadlines live in the
    /// server's timer service — so this is pure state repair.)
    fn handle_mom_restart(&mut self, node: NodeId) {
        let mothered: Vec<JobId> = self
            .ms_directory
            .lock()
            .unwrap()
            .iter()
            .filter(|&(_, &ms)| ms == node)
            .map(|(&job, _)| job)
            .collect();
        for job in mothered {
            let active = self
                .server
                .job(job)
                .map(|j| j.state.is_active())
                .unwrap_or(false);
            if !active {
                continue;
            }
            if let Some(alloc) = self.server.cluster().allocation_of(job) {
                self.moms[node.0 as usize].send(MomMsg::FromServer(ServerToMom::RunJob {
                    job,
                    alloc: alloc.clone(),
                }));
            }
        }
    }

    /// Honours the fault plan's server-crash schedule: once the journal has
    /// appended the next crash point's record count, the server "process"
    /// dies at this command boundary and restarts from its journal.
    fn maybe_crash(&mut self, t: SimTime) {
        loop {
            let appended = match self.server.journal() {
                Some(j) => j.total_appended(),
                None => return,
            };
            match self.crash_points.front() {
                Some(&k) if appended >= k => {
                    self.crash_points.pop_front();
                    self.crash_restart(t);
                }
                _ => break,
            }
        }
        // Leader kills: unlike a crash-restart, the leader's process (and
        // its journal file) is gone for good — a follower must take over.
        loop {
            let appended = match self.server.journal() {
                Some(j) => j.total_appended(),
                None => return,
            };
            match self.leader_kill_points.front() {
                Some(&k) if appended >= k && self.repl.is_some() => {
                    self.leader_kill_points.pop_front();
                    self.failover_restart(t);
                }
                _ => return,
            }
        }
    }

    /// The server dies and comes back: scheduler soft state, armed
    /// deadlines and the fairshare ledger's open segments are lost; the
    /// write-ahead journal is the only survivor. Recovery rebuilds the
    /// server by snapshot-load + replay, re-arms every outstanding
    /// deadline from recovered state (not from wall-clock leftovers), and
    /// re-attaches the moms by replaying each active job's placement.
    fn crash_restart(&mut self, t: SimTime) {
        // All pre-crash timers die with the process. `job_gen` is
        // deliberately carried across — it is a monotonic nonce, not
        // recoverable state: bumping it below makes any pre-crash firing
        // already sitting in the command queue stale on arrival.
        for (_, id) in self.app_timers.drain() {
            self.timers.cancel(id);
        }
        for (_, id) in self.dyn_timers.drain() {
            self.timers.cancel(id);
        }
        let journal = self
            .server
            .take_journal()
            .expect("daemon servers always journal");
        self.server = PbsServer::recover(journal).expect("journal replays cleanly");
        self.adopt_recovered(t);
    }

    /// Leader failover: this "process" is dead — journal and all — and
    /// the highest-watermark follower takes over. The promoted replica is
    /// byte-identical to the dead leader at its watermark; records past it
    /// are reconciled into the failover accounting as lost (and, under
    /// `ack_after_replicate`, provably exclude anything acked). The same
    /// adoption path as a local crash-restart then re-arms timers and
    /// re-attaches moms, plus a negotiation reconcile so no application
    /// hangs on a request record that died with the old leader.
    fn failover_restart(&mut self, t: SimTime) {
        for (_, id) in self.app_timers.drain() {
            self.timers.cancel(id);
        }
        for (_, id) in self.dyn_timers.drain() {
            self.timers.cancel(id);
        }
        let old_appended = self
            .server
            .journal()
            .map(|j| j.total_appended())
            .unwrap_or(0);
        let repl = self.repl.as_mut().expect("failover requires replication");
        match repl.hub.fail_over(old_appended, repl.acked_watermark) {
            Ok((promoted, report)) => {
                repl.failovers += 1;
                repl.lost_records = report.lost_records;
                repl.acked_lost = report.acked_lost;
                // Acks released under the old term are all ≤ the promoted
                // watermark (that is the point); the counter restarts in
                // the new term's coordinates.
                repl.acked_watermark = 0;
                self.server = promoted;
            }
            Err(e) => {
                // Every follower is dead or diverged: the deployment
                // degrades to single-node crash recovery from the local
                // journal (nothing is lost, availability was).
                repl.errors.push(format!("failover failed: {e}"));
                let journal = self
                    .server
                    .take_journal()
                    .expect("daemon servers always journal");
                self.server = PbsServer::recover(journal).expect("journal replays cleanly");
            }
        }
        self.adopt_recovered(t);
        // Deny parked tm_dynget callers whose request records died with
        // the old leader; surviving negotiations stay parked and will be
        // answered by this (new) leader's scheduling cycles.
        let live: Vec<JobId> = self.server.pending_dyn_requests().map(|p| p.job).collect();
        for mom in &self.moms {
            mom.send(MomMsg::ReconcileDyn { live: live.clone() });
        }
        // Re-seed the surviving followers under the new term right away.
        self.pump_replication();
    }

    /// The shared adoption path for a server that just materialised from
    /// recovery (crash-restart) or promotion (failover): rebuild scheduler
    /// soft state, re-arm per-process flags and the journal, revive app
    /// deadlines, re-attach moms, and re-arm negotiation expiries.
    fn adopt_recovered(&mut self, t: SimTime) {
        // Per-process flags are not journalled; re-arm them first, boot
        // order: half-life before `enable_journal` below so a fresh
        // genesis image already carries it. (The decayed usage accounts
        // themselves come back bit-exact from the image, half-life
        // included, so the setter is a no-op unless they are empty.)
        self.server
            .set_usage_half_life(self.sched.fairshare.half_life);
        self.server
            .set_publish_usage(self.sched.fairshare.mode == FairshareMode::TimeAware);
        self.server.set_collect_usage_events(true);
        if self.server.journal().is_none() {
            // A promoted follower arrives journal-less: journaling is a
            // per-process concern. The genesis snapshot this appends opens
            // the new term's record coordinates.
            self.server.enable_journal(JOURNAL_SNAPSHOT_EVERY);
        }
        // Scheduler soft state (reservation history, negotiation-delay
        // bookkeeping) is not journalled: a fresh Maui restarts from the
        // recovered server state, exactly as a real scheduler restart
        // would. Fairshare charges, however, DO survive: they live in the
        // server's journalled usage ledger, and clearing `fs_synced` makes
        // the post-recovery cycle recharge the full recovered totals into
        // the fresh tracker (previously the in-memory ledger was forfeit
        // and post-recovery priorities diverged from a crash-free run).
        self.maui = Maui::new(self.sched.clone());
        self.fs_synced.clear();
        struct Revive {
            job: JobId,
            remaining: Duration,
            alloc: Allocation,
        }
        let revive: Vec<Revive> = self
            .server
            .jobs()
            .filter(|j| j.state.is_active() && j.start_time.is_some())
            .filter_map(|j| {
                let alloc = self.server.cluster().allocation_of(j.id)?.clone();
                let ends_at = j.start_time.expect("filtered")
                    + j.spec.exec.static_duration(j.cores_allocated);
                Revive {
                    job: j.id,
                    remaining: Duration::from_millis(ends_at.duration_since(t).as_millis()),
                    alloc,
                }
                .into()
            })
            .collect();
        for r in revive {
            // The application outlived the server: re-arm its exit
            // deadline for the *remaining* modelled runtime under a fresh
            // generation, and replay its placement to the mother superior
            // so the mom can reconcile (an unknown job re-registers; a
            // known one keeps its hostlist and any parked TM caller). Its
            // open usage segment needs no action — `usage_since` was
            // recovered from the journal image along with the rest.
            let gen = {
                let g = self.job_gen.entry(r.job).or_insert(0);
                *g += 1;
                *g
            };
            let id = self
                .timers
                .schedule(r.remaining, ServerCmd::JobExited(r.job, gen));
            self.app_timers.insert(r.job, id);
            let ms = {
                let mut dir = self.ms_directory.lock().unwrap();
                *dir.entry(r.job)
                    .or_insert_with(|| r.alloc.entries().next().expect("non-empty allocation").0)
            };
            self.moms[ms.0 as usize].send(MomMsg::FromServer(ServerToMom::RunJob {
                job: r.job,
                alloc: r.alloc,
            }));
        }
        // Outstanding negotiation windows continue from their *recovered*
        // deadlines; a window that elapsed while the server was down
        // expires on the next firing rather than silently leaking.
        let pending: Vec<(JobId, u64, SimTime)> = self
            .server
            .pending_dyn_requests()
            .filter_map(|p| p.deadline.map(|d| (p.job, p.seq, d)))
            .collect();
        for (job, seq, deadline) in pending {
            self.arm_dyn_timer(job, seq, deadline, t);
        }
        // The world may have moved while the server was down: run a cycle
        // against recovered state immediately.
        self.cycle(t);
    }

    /// Shared completion path (mom report or app-exit timer): settle the
    /// ledger, finish at the server, disarm timers, kill the app remnant.
    fn finish_job(&mut self, job: JobId, t: SimTime) -> bool {
        let active = self
            .server
            .job(job)
            .map(|j| j.state.is_active())
            .unwrap_or(false);
        if !active {
            return false;
        }
        self.server
            .job_finished(job, t)
            .expect("active job finishes");
        self.maui.dfs_mut().job_left_queue(job);
        self.cancel_timers(job);
        let ms = self.ms_directory.lock().unwrap().remove(&job);
        if let Some(ms) = ms {
            self.moms[ms.0 as usize].send(MomMsg::FromServer(ServerToMom::KillJob { job }));
        }
        true
    }

    /// Drains the command reactor: every admissible (contiguous-ticket)
    /// command applies to the single-writer server in ticket order, its
    /// journal record landing before the reactor releases its ack — the
    /// group-commit / ack-on-append contract. One scheduling cycle per
    /// batch, not per command. Returns whether server state changed.
    fn reactor_poll(&mut self, t: SimTime) -> bool {
        let mut reactor = self.reactor.take().expect("reactor present");
        let mut changed = false;
        let mut batch_dirty = false;
        reactor.poll_batch(u64::MAX, |ev| match ev {
            BatchEvent::Apply { conn, cmd, .. } => {
                let (reply, mutated) = self.reactor_apply_routed(conn, cmd, t);
                changed |= mutated;
                batch_dirty |= mutated;
                Some(reply)
            }
            BatchEvent::Commit => {
                // Group-commit acks flush right after this returns; with
                // `ack_after_replicate` they additionally wait for every
                // live follower, making each ack replication-safe.
                self.commit_gate(batch_dirty);
                batch_dirty = false;
                None
            }
        });
        self.reactor = Some(reactor);
        changed
    }

    /// [`ServerDaemon::reactor_apply`] plus the replication concerns:
    /// qstat offloading to staleness-eligible followers, and
    /// read-your-writes bookkeeping for mutating commands.
    fn reactor_apply_routed(
        &mut self,
        conn: u64,
        cmd: &ReactorCommand,
        t: SimTime,
    ) -> (ReactorReply, bool) {
        if let ReactorCommand::QStat(job) = cmd {
            if let Some(repl) = self.repl.as_mut() {
                if repl.cfg.read_offload {
                    let acked = repl.hub.acked_watermarks();
                    if let Some(idx) = repl.router.pick(conn, &acked) {
                        if let Some(read) = repl.hub.read_follower(idx, *job) {
                            return match read.state {
                                Some(state) => (
                                    ReactorReply::StatusAt {
                                        state,
                                        watermark: read.watermark,
                                    },
                                    false,
                                ),
                                None => (
                                    ReactorReply::Denied(format!("unknown job {}", job.0)),
                                    false,
                                ),
                            };
                        }
                    }
                    // No eligible follower (all lagging the caller's last
                    // write, or dead): fall through to the leader.
                }
            }
        }
        let (reply, mutated) = self.reactor_apply(cmd, t);
        if mutated {
            let watermark = self
                .server
                .journal()
                .map(|j| j.total_appended())
                .unwrap_or(0);
            if let Some(repl) = self.repl.as_mut() {
                repl.router.note_write(conn, watermark);
            }
        }
        (reply, mutated)
    }

    /// The ack gate at a group-commit boundary: with `ack_after_replicate`
    /// and a dirty batch, block until every live follower has applied the
    /// batch's records — only then may the held acks flush. Otherwise just
    /// keep the stream warm.
    fn commit_gate(&mut self, batch_dirty: bool) {
        let Some(repl) = self.repl.as_mut() else {
            return;
        };
        let target = self
            .server
            .journal()
            .map(|j| j.total_appended())
            .unwrap_or(0);
        if repl.cfg.ack_after_replicate && batch_dirty {
            repl.hub.await_replicated(&self.server, target);
            repl.acked_watermark = repl.acked_watermark.max(target);
        } else {
            let report = repl.hub.pump(&self.server);
            repl.errors.extend(report.errors);
        }
    }

    /// One streaming round (called at every command boundary): ships the
    /// journal tail to the followers and refreshes their watermarks.
    fn pump_replication(&mut self) {
        let Some(repl) = self.repl.as_mut() else {
            return;
        };
        if self.server.journal().is_none() {
            return;
        }
        // Keep compaction behind the replicated watermark so followers
        // stream plain records across snapshot boundaries.
        if let Some(w) = repl.hub.replicated_watermark() {
            self.server.journal_retain_from(w + 1);
        }
        let report = repl.hub.pump(&self.server);
        repl.errors.extend(report.errors);
    }

    /// Answers [`ClientReq::ReplicationStatus`].
    fn replication_status(&mut self) -> Option<ReplicationStatus> {
        let leader_appended = self
            .server
            .journal()
            .map(|j| j.total_appended())
            .unwrap_or(0);
        let repl = self.repl.as_mut()?;
        Some(ReplicationStatus {
            term: repl.hub.term(),
            follower_watermarks: repl.hub.acked_watermarks(),
            leader_appended,
            acked_watermark: repl.acked_watermark,
            failovers: repl.failovers,
            lost_records: repl.lost_records,
            acked_lost: repl.acked_lost,
            errors: std::mem::take(&mut repl.errors),
        })
    }

    /// Applies one reactor command through the same paths the typed
    /// [`ClientReq`]/TM handlers use, so reactor traffic and direct
    /// clients are indistinguishable to the server, the journal and the
    /// moms. Returns the reply and whether server state changed.
    fn reactor_apply(&mut self, cmd: &ReactorCommand, t: SimTime) -> (ReactorReply, bool) {
        match cmd {
            ReactorCommand::QSub(spec) => match self.server.qsub((**spec).clone(), t) {
                Ok(id) => (ReactorReply::Submitted(id), true),
                Err(e) => (ReactorReply::Denied(e.to_string()), false),
            },
            ReactorCommand::QStat(job) => match self.server.job(*job) {
                Ok(j) => (ReactorReply::Status(format!("{:?}", j.state)), false),
                Err(e) => (ReactorReply::Denied(e.to_string()), false),
            },
            ReactorCommand::QDel(job) => {
                let job = *job;
                let was_active = self
                    .server
                    .job(job)
                    .map(|j| j.state.is_active())
                    .unwrap_or(false);
                match self.server.qdel(job, t) {
                    Ok(()) => {
                        if was_active {
                            self.cancel_timers(job);
                            let ms = self.ms_directory.lock().unwrap().remove(&job);
                            if let Some(ms) = ms {
                                self.moms[ms.0 as usize]
                                    .send(MomMsg::FromServer(ServerToMom::KillJob { job }));
                            }
                        }
                        (ReactorReply::Ok, true)
                    }
                    Err(e) => (ReactorReply::Denied(e.to_string()), false),
                }
            }
            ReactorCommand::DynGet {
                job,
                extra,
                timeout_ms,
            } => {
                let deadline = timeout_ms.map(|w| t + SimDuration::from_millis(w));
                match self.server.tm_dynget_negotiated(*job, *extra, deadline, t) {
                    Ok(()) => {
                        // The ack means "queued, journalled": the grant or
                        // rejection itself arrives at the job's mom later.
                        if let Some(d) = deadline {
                            let seq = self
                                .server
                                .pending_dyn_seq(*job)
                                .expect("request just queued");
                            self.arm_dyn_timer(*job, seq, d, t);
                        }
                        (ReactorReply::Ok, true)
                    }
                    Err(e) => (ReactorReply::Denied(e.to_string()), false),
                }
            }
            ReactorCommand::DynFree { job, released } => {
                match self.server.tm_dynfree(*job, released, t) {
                    Ok(()) => {
                        // Unlike the mom-originated TM path (where the mom
                        // already shrank its hostlist), a reactor dynfree
                        // must tell the mother superior to disjoin.
                        self.send_to_ms(
                            *job,
                            ServerToMom::DynDisjoin {
                                job: *job,
                                released: released.clone(),
                            },
                        );
                        (ReactorReply::Ok, true)
                    }
                    Err(e) => (ReactorReply::Denied(e.to_string()), false),
                }
            }
        }
    }

    /// Forwards usage newly charged by the server (core-milliseconds, per
    /// user) into the Maui fairshare tracker. Charges are journalled at
    /// the server, so this delta sync is what makes fairshare priorities
    /// crash-consistent: after a crash-restart `fs_synced` is cleared and
    /// the recovered totals recharge in full.
    fn sync_fairshare(&mut self) {
        // Exact path: each closed usage segment is charged into the
        // fairshare window covering its *close instant*. A cycle that
        // runs just after a window boundary must not attribute the old
        // window's compute to the new one (that mis-attribution let a
        // user shed decayed history by idling across boundaries).
        for (user, delta_ms, at) in self.server.take_usage_events() {
            *self.fs_synced.entry(user).or_insert(0) += delta_ms;
            self.maui
                .fairshare_mut()
                .charge_at(user, delta_ms as f64 / 1000.0, at);
        }
        // Fallback for charges with no event: after a crash-restart the
        // events died with the process, so the recovered totals recharge
        // in full here. Close-instant attribution is lost for those, but
        // the compute is not forfeited. In steady state the event drain
        // above keeps `fs_synced` flush with the ledger and this loop
        // charges nothing.
        for (user, total) in self.server.usage() {
            let seen = self.fs_synced.entry(user).or_insert(0);
            if total > *seen {
                let delta_ms = total - *seen;
                *seen = total;
                self.maui
                    .fairshare_mut()
                    .charge(user, delta_ms as f64 / 1000.0);
            }
        }
    }

    /// One scheduling cycle: snapshot → Maui iteration → apply, then fan
    /// the applied actions out to the moms.
    fn cycle(&mut self, now: SimTime) {
        self.sync_fairshare();
        let snapshot = self.server.snapshot_incremental(now);
        let outcome = self.maui.iterate(&snapshot);
        let applied = self.server.apply(&outcome, now);
        for action in applied {
            match action {
                Applied::Started { job, alloc, .. } => {
                    let ms = alloc.entries().next().expect("non-empty allocation").0;
                    self.ms_directory.lock().unwrap().insert(job, ms);
                    let dur = {
                        let j = self.server.job(job).expect("started job exists");
                        j.spec.exec.static_duration(j.cores_allocated)
                    };
                    self.moms[ms.0 as usize]
                        .send(MomMsg::FromServer(ServerToMom::RunJob { job, alloc }));
                    // The "application": a cancellable deadline that exits
                    // after the job's modelled runtime (1 SimTime ms == 1
                    // wall ms here), tagged with this run's generation.
                    let gen = {
                        let g = self.job_gen.entry(job).or_insert(0);
                        *g += 1;
                        *g
                    };
                    let id = self.timers.schedule(
                        Duration::from_millis(dur.as_millis()),
                        ServerCmd::JobExited(job, gen),
                    );
                    if let Some(old) = self.app_timers.insert(job, id) {
                        self.timers.cancel(old);
                    }
                }
                Applied::DynGranted { job, added } => {
                    if let Some(id) = self.dyn_timers.remove(&job) {
                        self.timers.cancel(id);
                    }
                    self.send_to_ms(job, ServerToMom::DynJoin { job, added });
                }
                Applied::DynRejected { job, .. } => {
                    if let Some(id) = self.dyn_timers.remove(&job) {
                        self.timers.cancel(id);
                    }
                    self.send_to_ms(job, ServerToMom::DynReject { job });
                }
                Applied::DynDeferred { .. } => {
                    // Negotiation: the request stays pending at the server;
                    // the application keeps waiting on its TM reply channel
                    // until a later cycle grants it or the expiry fires.
                }
                Applied::Preempted { job } => {
                    self.cancel_timers(job);
                    let ms = self.ms_directory.lock().unwrap().remove(&job);
                    if let Some(ms) = ms {
                        self.moms[ms.0 as usize]
                            .send(MomMsg::FromServer(ServerToMom::KillJob { job }));
                    }
                }
                Applied::Resized {
                    job,
                    from_cores,
                    to_cores,
                    changed,
                } => {
                    // Keep the mother superior's hostlist current. Note the
                    // daemon's app timers are not re-paced by resizes (the
                    // virtual-time simulator models work-pool speedups;
                    // here a job runs its submitted duration).
                    let msg = if to_cores > from_cores {
                        ServerToMom::DynJoin {
                            job,
                            added: changed,
                        }
                    } else {
                        ServerToMom::DynDisjoin {
                            job,
                            released: changed,
                        }
                    };
                    self.send_to_ms(job, msg);
                }
            }
        }
    }

    fn arm_dyn_timer(&mut self, job: JobId, seq: u64, deadline: SimTime, now: SimTime) {
        // +1 ms guards the SimTime floor: never fire before the deadline.
        let wait = Duration::from_millis(deadline.duration_since(now).as_millis() + 1);
        let id = self
            .timers
            .schedule(wait, ServerCmd::ExpireDyn { job, seq });
        if let Some(old) = self.dyn_timers.insert(job, id) {
            self.timers.cancel(old);
        }
    }

    fn cancel_timers(&mut self, job: JobId) {
        if let Some(id) = self.app_timers.remove(&job) {
            self.timers.cancel(id);
        }
        if let Some(id) = self.dyn_timers.remove(&job) {
            self.timers.cancel(id);
        }
    }

    fn send_to_ms(&self, job: JobId, msg: ServerToMom) {
        if let Some(&ms) = self.ms_directory.lock().unwrap().get(&job) {
            self.moms[ms.0 as usize].send(MomMsg::FromServer(msg));
        }
    }

    /// Resolves parked `AwaitRunning` / `AwaitDrained` calls against the
    /// current server state.
    fn flush_waiters(&mut self) {
        let server = &self.server;
        self.run_waiters
            .retain(|(job, reply)| match server.job(*job) {
                Ok(j) if j.start_time.is_some() => {
                    let _ = reply.send(true);
                    false
                }
                Ok(j) if j.state.is_terminal() => {
                    let _ = reply.send(false);
                    false
                }
                Ok(_) => true,
                Err(_) => {
                    let _ = reply.send(false);
                    false
                }
            });
        if !self.drain_waiters.is_empty() && server.is_drained() {
            for w in self.drain_waiters.drain(..) {
                let _ = w.send(());
            }
        }
    }
}

/// Which pending TM call a response answers. `tm_dynget` and `tm_dynfree`
/// replies are routed independently per job: a `tm_dynfree` issued while a
/// negotiated `tm_dynget` is still pending must not steal (or clobber) the
/// dynget's reply channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReplyKind {
    /// A `tm_dynget` (answered by `DynGranted` / `DynDenied`).
    Get,
    /// A `tm_dynfree` (answered by `Freed`).
    Free,
}

impl ReplyKind {
    fn of_request(req: &TmRequest) -> Self {
        match req {
            TmRequest::DynGet { .. } => ReplyKind::Get,
            TmRequest::DynFree { .. } => ReplyKind::Free,
        }
    }

    fn of_response(resp: &TmResponse) -> Self {
        match resp {
            TmResponse::DynGranted { .. } | TmResponse::DynDenied => ReplyKind::Get,
            TmResponse::Freed => ReplyKind::Free,
        }
    }
}

/// Routes asynchronous TM responses back to the application calls that
/// await them, keyed by `(job, kind)` with FIFO queues — replacing the
/// single-slot `HashMap<JobId, Sender>` that let a later call overwrite
/// an earlier call's pending reply channel.
#[derive(Debug, Default)]
struct ReplyRouter {
    pending: HashMap<(JobId, ReplyKind), VecDeque<Sender<TmResponse>>>,
}

impl ReplyRouter {
    /// Parks a caller until a response of the matching kind arrives.
    fn register(&mut self, job: JobId, kind: ReplyKind, reply: Sender<TmResponse>) {
        self.pending
            .entry((job, kind))
            .or_default()
            .push_back(reply);
    }

    /// Delivers a response to the oldest caller awaiting its kind; a
    /// response nobody awaits (e.g. a grant whose caller was failed over
    /// a mom restart) is dropped.
    fn deliver(&mut self, job: JobId, resp: TmResponse) {
        let key = (job, ReplyKind::of_response(&resp));
        if let Some(q) = self.pending.get_mut(&key) {
            if let Some(reply) = q.pop_front() {
                let _ = reply.send(resp);
            }
            if q.is_empty() {
                self.pending.remove(&key);
            }
        }
    }

    /// Failover reconciliation: denies parked `dynget` callers whose
    /// pending request did not survive on the promoted leader (its job is
    /// absent from `live`). Surviving negotiations stay parked — the new
    /// leader will grant or expire them through the ordinary paths.
    fn fail_lost_gets(&mut self, live: &[JobId]) {
        let lost: Vec<(JobId, ReplyKind)> = self
            .pending
            .keys()
            .filter(|(job, kind)| *kind == ReplyKind::Get && !live.contains(job))
            .copied()
            .collect();
        for key in lost {
            if let Some(q) = self.pending.remove(&key) {
                for reply in q {
                    let _ = reply.send(TmResponse::DynDenied);
                }
            }
        }
    }

    /// Fails every parked caller (mom crash): dynget callers are denied,
    /// dynfree callers acked — the release already took effect locally.
    fn fail_all(&mut self) {
        for ((_, kind), q) in self.pending.drain() {
            let resp = match kind {
                ReplyKind::Get => TmResponse::DynDenied,
                ReplyKind::Free => TmResponse::Freed,
            };
            for reply in q {
                let _ = reply.send(resp.clone());
            }
        }
    }

    #[cfg(test)]
    fn pending_count(&self) -> usize {
        self.pending.values().map(|q| q.len()).sum()
    }
}

/// Base retransmission interval of an unacked dyn_join ping.
const JOIN_RETRY_BASE_MS: u64 = 8;
/// Backoff ceiling: `8 ms << 5` = 256 ms between retries.
const JOIN_RETRY_MAX_SHIFT: u32 = 5;

/// One in-flight dyn_join fan-out at a mother superior.
struct PendingJoin {
    /// The fan-out round; acks from older rounds are ignored.
    round: u64,
    /// The allocation being joined (answered to the app when complete).
    added: Allocation,
    /// Nodes whose ack is still outstanding (set semantics: a duplicated
    /// ack counts once).
    unacked: BTreeSet<NodeId>,
    /// Retries so far (drives exponential backoff).
    attempt: u32,
    /// When to retransmit next.
    next_retry: Instant,
}

/// One `pbs_mom` daemon: wraps the pure [`Mom`] state machine with the
/// dyn_join fan-out (ping/ack every newly allocated node before answering
/// the application — the real cost Fig 12 measures). Pings are
/// retransmitted with exponential backoff until acked, so the fan-out
/// survives dropped peer messages.
fn mom_main(node: NodeId, rx: Receiver<MomMsg>, server: ServerLink, peers: Vec<MomLink>) {
    let mut mom = Mom::new(node);
    let mut replies = ReplyRouter::default();
    let mut joins: HashMap<JobId, PendingJoin> = HashMap::new();
    let mut round: u64 = 0;
    loop {
        // Retransmit overdue pings (ack timeout + exponential backoff).
        let now = Instant::now();
        for (&job, pj) in joins.iter_mut() {
            if pj.next_retry <= now {
                for &peer in &pj.unacked {
                    peers[peer.0 as usize].send(MomMsg::Peer(PeerMsg::JoinPing {
                        job,
                        round: pj.round,
                        reply_to: node,
                    }));
                }
                pj.attempt += 1;
                let backoff = Duration::from_millis(
                    JOIN_RETRY_BASE_MS << pj.attempt.min(JOIN_RETRY_MAX_SHIFT),
                );
                pj.next_retry = now + backoff;
            }
        }
        let next_retry = joins.values().map(|pj| pj.next_retry).min();
        let msg = match next_retry {
            Some(at) => match rx.recv_timeout(at.saturating_duration_since(Instant::now())) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            },
            None => match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            },
        };
        match msg {
            MomMsg::FromServer(ServerToMom::DynJoin { job, added }) => {
                // dyn_join: every newly allocated host joins the group
                // before the application gets its hostlist.
                let mut added = added;
                if let Some(stale) = joins.remove(&job) {
                    // A second join while one is in flight (e.g. a resize
                    // racing a grant): fan out the union under a new round.
                    added.merge(&stale.added);
                }
                let others: BTreeSet<NodeId> = added
                    .entries()
                    .map(|(n, _)| n)
                    .filter(|&n| n != node)
                    .collect();
                if others.is_empty() {
                    let out = mom.handle_server(ServerToMom::DynJoin { job, added });
                    route(out, &mut replies, &server);
                } else {
                    round += 1;
                    for &peer in &others {
                        peers[peer.0 as usize].send(MomMsg::Peer(PeerMsg::JoinPing {
                            job,
                            round,
                            reply_to: node,
                        }));
                    }
                    joins.insert(
                        job,
                        PendingJoin {
                            round,
                            added,
                            unacked: others,
                            attempt: 0,
                            next_retry: Instant::now() + Duration::from_millis(JOIN_RETRY_BASE_MS),
                        },
                    );
                }
            }
            MomMsg::FromServer(other) => {
                let out = mom.handle_server(other);
                route(out, &mut replies, &server);
            }
            MomMsg::Peer(PeerMsg::JoinPing {
                job,
                round: ping_round,
                reply_to,
            }) => {
                peers[reply_to.0 as usize].send(MomMsg::Peer(PeerMsg::JoinAck {
                    job,
                    round: ping_round,
                    from: node,
                }));
            }
            MomMsg::Peer(PeerMsg::JoinAck {
                job,
                round: ack_round,
                from,
            }) => {
                let complete = match joins.get_mut(&job) {
                    Some(pj) => {
                        if pj.round == ack_round {
                            pj.unacked.remove(&from);
                        }
                        pj.unacked.is_empty()
                    }
                    None => false,
                };
                if complete {
                    let pj = joins.remove(&job).expect("present");
                    let out = mom.handle_server(ServerToMom::DynJoin {
                        job,
                        added: pj.added,
                    });
                    route(out, &mut replies, &server);
                }
            }
            MomMsg::Tm { job, req, reply } => {
                let kind = ReplyKind::of_request(&req);
                let outs = mom.handle_tm(job, req);
                // Any response the mom emits synchronously for this job
                // answers *this* call; only an unanswered caller is parked.
                let mut direct = Some(reply);
                for out in outs {
                    match out {
                        MomOutput::ToServer(m) => server.send(ServerCmd::FromMom(m)),
                        MomOutput::ToApp(j, resp) => {
                            if j == job {
                                if let Some(tx) = direct.take() {
                                    let _ = tx.send(resp);
                                    continue;
                                }
                            }
                            replies.deliver(j, resp);
                        }
                    }
                }
                if let Some(tx) = direct {
                    replies.register(job, kind, tx);
                }
            }
            MomMsg::ReconcileDyn { live } => {
                replies.fail_lost_gets(&live);
            }
            MomMsg::Crash => {
                // The mom "process" dies: every parked TM caller is failed
                // back to its application, in-flight fan-outs are lost, and
                // the fresh mom asks the server to replay its jobs.
                replies.fail_all();
                joins.clear();
                mom = Mom::new(node);
                server.send(ServerCmd::MomRestarted(node));
            }
            MomMsg::Shutdown => break,
        }
    }
}

fn route(outputs: Vec<MomOutput>, replies: &mut ReplyRouter, server: &ServerLink) {
    for out in outputs {
        match out {
            MomOutput::ToServer(m) => server.send(ServerCmd::FromMom(m)),
            MomOutput::ToApp(job, resp) => replies.deliver(job, resp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ServerCrash;
    use dynbatch_core::{DfsConfig, ExecutionModel, GroupId, SimDuration, UserId};

    fn spec(name: &str, cores: u32, millis: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            user: UserId(0),
            group: GroupId(0),
            class: dynbatch_core::JobClass::Rigid,
            cores,
            walltime: SimDuration::from_millis(millis),
            exec: ExecutionModel::Fixed {
                duration: SimDuration::from_millis(millis),
            },
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            malleable: None,
            moldable: None,
            dyn_timeout: None,
            queue: None,
        }
    }

    fn hp_config(nodes: u32) -> DaemonConfig {
        let mut sched = SchedulerConfig::paper_eval();
        sched.dfs = DfsConfig::highest_priority();
        DaemonConfig {
            nodes,
            cores_per_node: 8,
            sched,
            faults: None,
            replication: None,
        }
    }

    #[test]
    fn submit_run_finish() {
        let d = DaemonHandle::start(hp_config(4));
        let id = d.qsub(spec("demo", 8, 50)).expect("qsub");
        assert!(d.await_running(id, Duration::from_secs(2)));
        assert!(d.await_drained(Duration::from_secs(2)));
        assert_eq!(d.qstat(id), Some(JobState::Completed));
        d.shutdown();
    }

    #[test]
    fn dynget_roundtrip_grants() {
        let d = DaemonHandle::start(hp_config(4));
        // A long-running 8-core job on a 32-core system.
        let id = d.qsub(spec("app", 8, 5_000)).expect("qsub");
        assert!(d.await_running(id, Duration::from_secs(2)));
        let (resp, latency) = d.tm_dynget_timed(id, 8);
        match resp {
            TmResponse::DynGranted { added } => assert_eq!(added.total_cores(), 8),
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(
            latency < Duration::from_secs(1),
            "sub-second overhead: {latency:?}"
        );
        let _ = d.qdel(id);
        assert!(d.await_drained(Duration::from_secs(2)));
        d.shutdown();
    }

    #[test]
    fn dynget_denied_when_full() {
        let d = DaemonHandle::start(hp_config(2));
        let id = d.qsub(spec("big", 16, 5_000)).expect("qsub");
        assert!(d.await_running(id, Duration::from_secs(2)));
        let resp = d.tm_dynget(id, 4);
        assert!(matches!(resp, TmResponse::DynDenied), "{resp:?}");
        let _ = d.qdel(id);
        assert!(d.await_drained(Duration::from_secs(2)));
        d.shutdown();
    }

    #[test]
    fn dynfree_releases() {
        let d = DaemonHandle::start(hp_config(4));
        let id = d.qsub(spec("app", 16, 5_000)).expect("qsub");
        assert!(d.await_running(id, Duration::from_secs(2)));
        let (resp, _) = d.tm_dynget_timed(id, 8);
        let TmResponse::DynGranted { added } = resp else {
            panic!("grant expected");
        };
        let resp = d.tm_dynfree(id, added);
        assert!(matches!(resp, TmResponse::Freed), "{resp:?}");
        let _ = d.qdel(id);
        assert!(d.await_drained(Duration::from_secs(2)));
        d.shutdown();
    }

    #[test]
    fn queue_drains() {
        let d = DaemonHandle::start(hp_config(2));
        for i in 0..6 {
            d.qsub(spec(&format!("j{i}"), 8, 30)).expect("qsub");
        }
        assert!(d.await_drained(Duration::from_secs(5)));
        d.shutdown();
    }

    #[test]
    fn await_running_false_for_never_started() {
        let d = DaemonHandle::start(hp_config(1));
        let blocker = d.qsub(spec("blocker", 8, 400)).expect("qsub");
        assert!(d.await_running(blocker, Duration::from_secs(2)));
        // Queued behind the blocker, then deleted before it can start.
        let doomed = d.qsub(spec("doomed", 8, 100)).expect("qsub");
        d.qdel(doomed).expect("qdel queued job");
        assert!(!d.await_running(doomed, Duration::from_millis(500)));
        assert_eq!(d.qstat(doomed), Some(JobState::Cancelled));
        assert!(d.await_drained(Duration::from_secs(2)));
        d.shutdown();
    }

    // ------------------------------------------------------------------
    // sync_fairshare window attribution (mechanism level).
    // ------------------------------------------------------------------

    /// The window-attribution regression: a usage segment that closes at
    /// t=59 min but is synced at t=61 min — after the 1 h fairshare
    /// window boundary — must charge the window covering the close
    /// instant, so a late-syncing daemon agrees exactly with one that
    /// synced eagerly. Pre-fix, `sync_fairshare` charged the window
    /// current at sync time and the two diverged (the late charge
    /// escaped one decay step).
    #[test]
    fn fairshare_sync_attributes_segment_close_across_window_boundary() {
        use dynbatch_core::{AllocPolicy, FairshareConfig};
        use dynbatch_sched::FairshareTracker;

        let mut server = PbsServer::new(Cluster::homogeneous(1, 8), AllocPolicy::Pack);
        server.set_collect_usage_events(true);
        let mut maui = Maui::new(SchedulerConfig::paper_eval());
        let id = server
            .qsub(spec("seg", 8, 3_600_000), SimTime::ZERO)
            .expect("qsub");
        let snap = server.snapshot_incremental(SimTime::ZERO);
        server.apply(&maui.iterate(&snap), SimTime::ZERO);
        assert_eq!(server.job(id).expect("known").state, JobState::Running);

        // The segment closes at 59 min: 8 cores × 59 min.
        let close = SimTime::from_secs(59 * 60);
        server.job_finished(id, close).expect("finishes");

        let fs = FairshareConfig {
            enabled: true,
            window: SimDuration::from_hours(1),
            windows: 4,
            decay: 0.5,
            ..FairshareConfig::default()
        };
        // Eager daemon: syncs the event inside the window it closed in,
        // then advances over the boundary. Late daemon: its first cycle
        // after the close happens at 61 min, past the boundary.
        let mut eager = FairshareTracker::new(fs.clone(), SimTime::ZERO);
        let mut late = FairshareTracker::new(fs, SimTime::ZERO);
        let sync_at = SimTime::from_secs(61 * 60);
        late.advance_to(sync_at);

        let events = server.take_usage_events();
        assert_eq!(events.len(), 1, "one closed segment, one event");
        for &(user, delta_ms, at) in &events {
            assert_eq!(at, close, "event carries the close instant");
            eager.charge_at(user, delta_ms as f64 / 1000.0, at);
            late.charge_at(user, delta_ms as f64 / 1000.0, at);
        }
        eager.advance_to(sync_at);

        let user = UserId(0);
        assert!(late.usage_share(user) > 0.0, "charge must not be dropped");
        assert_eq!(
            late.priority_delta(user),
            eager.priority_delta(user),
            "late sync must agree with eager sync bit-for-bit"
        );
    }

    // ------------------------------------------------------------------
    // ReplyRouter: the reply-channel clobbering fix, unit level.
    // ------------------------------------------------------------------

    #[test]
    fn reply_router_keys_get_and_free_independently() {
        let mut r = ReplyRouter::default();
        let job = JobId(1);
        let (get_tx, get_rx) = channel();
        let (free_tx, free_rx) = channel();
        // A dynget parks first, then a dynfree parks for the same job —
        // the pre-fix single-slot map would overwrite the dynget sender.
        r.register(job, ReplyKind::Get, get_tx);
        r.register(job, ReplyKind::Free, free_tx);
        r.deliver(job, TmResponse::Freed);
        assert!(matches!(free_rx.try_recv(), Ok(TmResponse::Freed)));
        assert!(get_rx.try_recv().is_err(), "dynget reply still parked");
        r.deliver(
            job,
            TmResponse::DynGranted {
                added: Allocation::from_pairs([(NodeId(2), 4)]),
            },
        );
        match get_rx.try_recv() {
            Ok(TmResponse::DynGranted { added }) => assert_eq!(added.total_cores(), 4),
            other => panic!("{other:?}"),
        }
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn reply_router_is_fifo_within_a_kind_and_drops_unaddressed() {
        let mut r = ReplyRouter::default();
        let job = JobId(3);
        let (a_tx, a_rx) = channel();
        let (b_tx, b_rx) = channel();
        r.register(job, ReplyKind::Get, a_tx);
        r.register(job, ReplyKind::Get, b_tx);
        r.deliver(job, TmResponse::DynDenied);
        assert!(matches!(a_rx.try_recv(), Ok(TmResponse::DynDenied)));
        assert!(b_rx.try_recv().is_err());
        // A response for a job with no parked caller is dropped silently.
        r.deliver(JobId(99), TmResponse::DynDenied);
        r.deliver(job, TmResponse::DynDenied);
        assert!(matches!(b_rx.try_recv(), Ok(TmResponse::DynDenied)));
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn reply_router_fail_all_unblocks_every_caller() {
        let mut r = ReplyRouter::default();
        let (get_tx, get_rx) = channel();
        let (free_tx, free_rx) = channel();
        r.register(JobId(1), ReplyKind::Get, get_tx);
        r.register(JobId(2), ReplyKind::Free, free_tx);
        r.fail_all();
        assert!(matches!(get_rx.try_recv(), Ok(TmResponse::DynDenied)));
        assert!(matches!(free_rx.try_recv(), Ok(TmResponse::Freed)));
        assert_eq!(r.pending_count(), 0);
    }

    /// The end-to-end clobbering regression: a `tm_dynfree` issued while a
    /// negotiated `tm_dynget` is parked must be acked immediately *and*
    /// leave the dynget's reply channel intact for the eventual grant.
    /// Pre-fix, the dynfree overwrote the parked sender and the dynget
    /// caller hung forever.
    #[test]
    fn dynfree_does_not_clobber_pending_negotiated_dynget() {
        let d = DaemonHandle::start(hp_config(2));
        let id = d.qsub(spec("app", 16, 10_000)).expect("qsub");
        assert!(d.await_running(id, Duration::from_secs(2)));

        // Machine full: a negotiated +4 parks at the server.
        let (tx, rx) = channel();
        thread::scope(|s| {
            s.spawn(|| {
                let _ = tx.send(d.tm_dynget_negotiated(id, 4, Duration::from_secs(5)));
            });
            // Give the dynget time to land and park.
            thread::sleep(Duration::from_millis(50));
            // Free 4 cores (the 16-core job holds all of both nodes, so 4
            // on node 0 is a valid proper subset): must be acked promptly,
            // and the freed cores let the next cycle grant the parked
            // request.
            let part = {
                let mut a = Allocation::empty();
                a.add(NodeId(0), 4);
                a
            };
            let freed = d.tm_dynfree(id, part);
            assert!(matches!(freed, TmResponse::Freed), "{freed:?}");
            let granted = rx.recv_timeout(Duration::from_secs(2)).unwrap_or_else(|_| {
                // Pre-fix behaviour: the parked dynget lost its reply
                // channel. Unstick the scope before failing.
                let _ = d.qdel(id);
                panic!("negotiated dynget reply was clobbered by tm_dynfree");
            });
            match granted {
                TmResponse::DynGranted { added } => assert_eq!(added.total_cores(), 4),
                other => panic!("expected grant after free, got {other:?}"),
            }
        });
        let _ = d.qdel(id);
        assert!(d.await_drained(Duration::from_secs(2)));
        d.shutdown();
    }

    // ------------------------------------------------------------------
    // Server crash / journal recovery, ensemble level.
    // ------------------------------------------------------------------

    /// A workload drains to the same terminal states across two scheduled
    /// server crashes: every job survives via snapshot-load + replay.
    #[test]
    fn server_crash_recovery_drains_workload() {
        let mut config = hp_config(2);
        config.faults = Some(FaultPlan {
            server_crashes: vec![
                ServerCrash { after_record: 3 },
                ServerCrash { after_record: 8 },
            ],
            ..FaultPlan::none(5)
        });
        let d = DaemonHandle::start(config);
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(d.qsub(spec(&format!("j{i}"), 8, 30)).expect("qsub"));
        }
        assert!(d.await_drained(Duration::from_secs(10)));
        for id in ids {
            assert_eq!(d.qstat(id), Some(JobState::Completed));
        }
        assert_eq!(d.outcomes().len(), 6);
        d.shutdown();
    }

    /// A negotiated `tm_dynget` parked at the moment the server dies must
    /// still be answered: recovery rebuilds the pending request from the
    /// journal, re-arms its expiry, replays the job's placement to the
    /// mom (which keeps the in-flight flag), and a post-recovery free
    /// lets the next cycle grant it.
    #[test]
    fn negotiated_dynget_survives_server_crash() {
        let mut config = hp_config(2);
        // Records: genesis snapshot, submit, start outcome, then the
        // DynGet — the server dies at the first command boundary after
        // the request hits the journal.
        config.faults = Some(FaultPlan {
            server_crashes: vec![ServerCrash { after_record: 4 }],
            ..FaultPlan::none(9)
        });
        let d = DaemonHandle::start(config);
        let id = d.qsub(spec("app", 16, 10_000)).expect("qsub");
        assert!(d.await_running(id, Duration::from_secs(2)));
        let (tx, rx) = channel();
        thread::scope(|s| {
            s.spawn(|| {
                let _ = tx.send(d.tm_dynget_negotiated(id, 4, Duration::from_secs(5)));
            });
            // Let the request land, the crash fire, and recovery finish.
            thread::sleep(Duration::from_millis(100));
            let part = {
                let mut a = Allocation::empty();
                a.add(NodeId(0), 4);
                a
            };
            let freed = d.tm_dynfree(id, part);
            assert!(matches!(freed, TmResponse::Freed), "{freed:?}");
            let granted = rx
                .recv_timeout(Duration::from_secs(3))
                .expect("parked dynget must survive the server crash");
            match granted {
                TmResponse::DynGranted { added } => assert_eq!(added.total_cores(), 4),
                other => panic!("expected grant after crash + free, got {other:?}"),
            }
        });
        let _ = d.qdel(id);
        assert!(d.await_drained(Duration::from_secs(2)));
        d.shutdown();
    }

    /// The qdel-of-a-DynQueued-job leak, end to end: deleting a job whose
    /// negotiated request is parked must promptly deny the parked caller
    /// (pre-fix it hung until its negotiation timeout, its reply channel
    /// leaked at the mom).
    #[test]
    fn qdel_of_dyn_queued_job_denies_parked_caller() {
        let d = DaemonHandle::start(hp_config(2));
        let id = d.qsub(spec("app", 16, 10_000)).expect("qsub");
        assert!(d.await_running(id, Duration::from_secs(2)));
        let (tx, rx) = channel();
        thread::scope(|s| {
            s.spawn(|| {
                // Machine full and nothing will free cores: parks until
                // answered. The 30 s window is far past the test timeout —
                // only the qdel path can unblock it promptly.
                let _ = tx.send(d.tm_dynget_negotiated(id, 4, Duration::from_secs(30)));
            });
            thread::sleep(Duration::from_millis(50));
            assert_eq!(d.qstat(id), Some(JobState::DynQueued));
            d.qdel(id).expect("qdel DynQueued job");
            let resp = rx
                .recv_timeout(Duration::from_secs(2))
                .expect("qdel must answer the parked negotiated dynget");
            assert!(matches!(resp, TmResponse::DynDenied), "{resp:?}");
        });
        assert!(d.await_drained(Duration::from_secs(2)));
        assert_eq!(d.qstat(id), Some(JobState::Cancelled));
        d.shutdown();
    }

    // ------------------------------------------------------------------
    // Command reactor, ensemble level.
    // ------------------------------------------------------------------

    /// The reactor path end to end on a live ensemble: submit, stat, a
    /// malformed line and an out-of-order command all answer (denials,
    /// never a daemon panic), and the workload drains through the same
    /// scheduler the typed client path uses.
    #[test]
    fn reactor_commands_roundtrip_on_live_daemon() {
        let d = DaemonHandle::start(hp_config(2));
        let c = d.connect();
        c.send("qsub name=rj user=3 group=0 cores=8 wall_ms=40");
        let id = match c.recv_timeout(Duration::from_secs(2)) {
            Some(ReactorReply::Submitted(id)) => id,
            other => panic!("expected Submitted, got {other:?}"),
        };
        // Out-of-order: freeing cores of a job that was never submitted.
        c.send("dynfree 999 0:4");
        assert!(
            matches!(
                c.recv_timeout(Duration::from_secs(2)),
                Some(ReactorReply::Denied(_))
            ),
            "dynfree of an unknown job must deny"
        );
        // Malformed: must deny, never panic the daemon.
        c.send("qsub name=broken cores=banana");
        assert!(matches!(
            c.recv_timeout(Duration::from_secs(2)),
            Some(ReactorReply::Denied(_))
        ));
        c.send(&format!("qstat {}", id.0));
        assert!(matches!(
            c.recv_timeout(Duration::from_secs(2)),
            Some(ReactorReply::Status(_))
        ));
        assert!(d.await_drained(Duration::from_secs(5)));
        assert_eq!(d.qstat(id), Some(JobState::Completed));
        // A second client deletes a queued job submitted by the first.
        let c2 = d.connect();
        c.send("qsub name=doomed user=1 group=0 cores=8 wall_ms=60000");
        let doomed = match c.recv_timeout(Duration::from_secs(2)) {
            Some(ReactorReply::Submitted(id)) => id,
            other => panic!("expected Submitted, got {other:?}"),
        };
        c2.send(&format!("qdel {}", doomed.0));
        assert_eq!(
            c2.recv_timeout(Duration::from_secs(2)),
            Some(ReactorReply::Ok)
        );
        assert!(d.await_drained(Duration::from_secs(5)));
        d.shutdown();
    }

    // ------------------------------------------------------------------
    // Fairshare charging: now journalled at the server (segment-level
    // behaviour is pinned by `dynbatch-server`'s usage tests); here the
    // ensemble-level property that the PR-5 ledger forfeited — charges
    // surviving a server crash — gets its regression test.
    // ------------------------------------------------------------------

    /// Fairshare charges survive a server crash: they live in the
    /// server's journalled usage ledger and delta-resync into the fresh
    /// post-recovery Maui (pre-fix the in-memory `UsageLedger` died with
    /// the process and the user's priority reset to uncharged).
    #[test]
    fn fairshare_charges_survive_server_crash() {
        let mut config = hp_config(2);
        // Records: genesis snapshot, submit, start outcome, finish — the
        // server dies at the first command boundary after the billed
        // job's finish (and therefore its usage) hits the journal.
        config.faults = Some(FaultPlan {
            server_crashes: vec![ServerCrash { after_record: 4 }],
            ..FaultPlan::none(2)
        });
        let d = DaemonHandle::start(config);
        let mut billed = spec("billed", 8, 100);
        billed.user = UserId(7);
        let id = d.qsub(billed).expect("qsub");
        assert!(d.await_drained(Duration::from_secs(5)));
        assert_eq!(d.qstat(id), Some(JobState::Completed));
        // Post-crash activity forces cycles against the recovered server,
        // which recharge the recovered totals into the fresh tracker.
        let id2 = d.qsub(spec("after", 8, 30)).expect("qsub");
        assert!(d.await_drained(Duration::from_secs(5)));
        assert_eq!(d.qstat(id2), Some(JobState::Completed));
        // 8 cores × ≥0.1 s ≈ 0.8 core·s; pre-fix this read exactly 0.
        let charged = d.fairshare_charged(UserId(7));
        assert!(charged > 0.5, "pre-crash usage forfeited: {charged}");
        d.shutdown();
    }
}
