//! The threaded deployment: server thread, mom threads, client handle.

use crate::wire::{ClientReq, MomMsg, PeerMsg, ServerCmd};
use dynbatch_cluster::{Allocation, Cluster};
use dynbatch_core::{JobId, JobSpec, JobState, NodeId, SchedulerConfig, SimTime};
use dynbatch_sched::Maui;
use dynbatch_server::{
    Applied, Mom, MomOutput, MomToServer, PbsServer, ServerToMom, TmRequest, TmResponse,
};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Daemon deployment parameters.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Compute nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Scheduler configuration.
    pub sched: SchedulerConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            nodes: 15,
            cores_per_node: 8,
            sched: SchedulerConfig::paper_eval(),
        }
    }
}

/// Client handle to a running daemon ensemble.
///
/// Wall-clock milliseconds map one-to-one onto [`SimTime`] milliseconds:
/// a job whose execution model says "500 ms" really runs for 500 ms of
/// wall time. The protocol path (client → mom → server → scheduler →
/// mom fan-out → client) is identical to the simulator's, which is the
/// point: the Fig 12 overhead study measures these real hops.
pub struct DaemonHandle {
    server_tx: Sender<ServerCmd>,
    mom_txs: Vec<Sender<MomMsg>>,
    ms_directory: Arc<Mutex<HashMap<JobId, NodeId>>>,
    threads: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// Boots the ensemble: one server thread plus one mom thread per node.
    pub fn start(config: DaemonConfig) -> Self {
        let (server_tx, server_rx) = channel::<ServerCmd>();
        let mut mom_txs = Vec::new();
        let mut mom_rxs = Vec::new();
        for _ in 0..config.nodes {
            let (tx, rx) = channel::<MomMsg>();
            mom_txs.push(tx);
            mom_rxs.push(rx);
        }
        let ms_directory: Arc<Mutex<HashMap<JobId, NodeId>>> = Arc::default();

        let mut threads = Vec::new();
        // Mom threads.
        for (i, rx) in mom_rxs.into_iter().enumerate() {
            let server_tx = server_tx.clone();
            let peers: Vec<Sender<MomMsg>> = mom_txs.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("pbs_mom.{i}"))
                    .spawn(move || mom_main(NodeId(i as u32), rx, server_tx, peers))
                    .expect("spawn mom"),
            );
        }
        // Server thread.
        {
            let mom_txs = mom_txs.clone();
            let ms_dir = Arc::clone(&ms_directory);
            let server_tx_for_timers = server_tx.clone();
            threads.push(
                thread::Builder::new()
                    .name("pbs_server".into())
                    .spawn(move || {
                        server_main(config, server_rx, server_tx_for_timers, mom_txs, ms_dir)
                    })
                    .expect("spawn server"),
            );
        }
        DaemonHandle {
            server_tx,
            mom_txs,
            ms_directory,
            threads,
        }
    }

    /// Submits a job (blocking).
    pub fn qsub(&self, spec: JobSpec) -> Result<JobId, String> {
        let (tx, rx) = channel();
        self.server_tx
            .send(ServerCmd::Client(ClientReq::QSub {
                spec: Box::new(spec),
                reply: tx,
            }))
            .map_err(|e| e.to_string())?;
        rx.recv().map_err(|e| e.to_string())?
    }

    /// Deletes a job (blocking).
    pub fn qdel(&self, job: JobId) -> Result<(), String> {
        let (tx, rx) = channel();
        self.server_tx
            .send(ServerCmd::Client(ClientReq::QDel { job, reply: tx }))
            .map_err(|e| e.to_string())?;
        rx.recv().map_err(|e| e.to_string())?
    }

    /// Queries a job's state (blocking).
    pub fn qstat(&self, job: JobId) -> Option<JobState> {
        let (tx, rx) = channel();
        self.server_tx
            .send(ServerCmd::Client(ClientReq::QStat { job, reply: tx }))
            .ok()?;
        rx.recv().ok().flatten()
    }

    /// Polls until `job` reaches `state` or `timeout` elapses.
    pub fn wait_for_state(&self, job: JobId, state: JobState, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.qstat(job) == Some(state) {
                return true;
            }
            thread::sleep(Duration::from_millis(1));
        }
        false
    }

    /// Calls `tm_dynget()` from the job's mother superior, blocking until
    /// the batch system answers (grant with the added hostlist, or
    /// denial).
    pub fn tm_dynget(&self, job: JobId, extra_cores: u32) -> TmResponse {
        self.tm_dynget_with(job, extra_cores, None)
    }

    /// The negotiation extension: blocks up to `timeout` while the server
    /// keeps the request queued, retrying at every scheduling iteration;
    /// the call returns as soon as the request is granted, or denied once
    /// the window closes.
    pub fn tm_dynget_negotiated(
        &self,
        job: JobId,
        extra_cores: u32,
        timeout: Duration,
    ) -> TmResponse {
        self.tm_dynget_with(
            job,
            extra_cores,
            Some(dynbatch_core::SimDuration::from_millis(
                timeout.as_millis() as u64
            )),
        )
    }

    fn tm_dynget_with(
        &self,
        job: JobId,
        extra_cores: u32,
        timeout: Option<dynbatch_core::SimDuration>,
    ) -> TmResponse {
        let Some(ms) = self.ms_directory.lock().unwrap().get(&job).copied() else {
            return TmResponse::DynDenied;
        };
        let (tx, rx) = channel();
        if self.mom_txs[ms.0 as usize]
            .send(MomMsg::Tm {
                job,
                req: TmRequest::DynGet {
                    extra_cores,
                    timeout,
                },
                reply: tx,
            })
            .is_err()
        {
            return TmResponse::DynDenied;
        }
        rx.recv().unwrap_or(TmResponse::DynDenied)
    }

    /// [`DaemonHandle::tm_dynget`] plus a wall-clock latency measurement —
    /// the paper's Fig 12 metric.
    pub fn tm_dynget_timed(&self, job: JobId, extra_cores: u32) -> (TmResponse, Duration) {
        let t0 = Instant::now();
        let resp = self.tm_dynget(job, extra_cores);
        (resp, t0.elapsed())
    }

    /// Calls `tm_dynfree()` to release part of the allocation.
    pub fn tm_dynfree(&self, job: JobId, released: Allocation) -> TmResponse {
        let Some(ms) = self.ms_directory.lock().unwrap().get(&job).copied() else {
            return TmResponse::DynDenied;
        };
        let (tx, rx) = channel();
        if self.mom_txs[ms.0 as usize]
            .send(MomMsg::Tm {
                job,
                req: TmRequest::DynFree { released },
                reply: tx,
            })
            .is_err()
        {
            return TmResponse::DynDenied;
        }
        rx.recv().unwrap_or(TmResponse::DynDenied)
    }

    /// Blocks until every submitted job is terminal, or `timeout`.
    pub fn await_drained(&self, timeout: Duration) -> bool {
        let (tx, rx) = channel();
        if self
            .server_tx
            .send(ServerCmd::Client(ClientReq::AwaitDrained { reply: tx }))
            .is_err()
        {
            return false;
        }
        rx.recv_timeout(timeout).is_ok()
    }

    /// Stops all daemons and joins their threads.
    pub fn shutdown(self) {
        let _ = self.server_tx.send(ServerCmd::Shutdown);
        for tx in &self.mom_txs {
            let _ = tx.send(MomMsg::Shutdown);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// The server daemon: owns `pbs_server` and the Maui scheduler; every
/// state change triggers a scheduling cycle, exactly like the simulator.
fn server_main(
    config: DaemonConfig,
    rx: Receiver<ServerCmd>,
    self_tx: Sender<ServerCmd>,
    mom_txs: Vec<Sender<MomMsg>>,
    ms_directory: Arc<Mutex<HashMap<JobId, NodeId>>>,
) {
    let cluster = Cluster::homogeneous(config.nodes, config.cores_per_node);
    let alloc_policy = config.sched.alloc;
    let mut server = PbsServer::new(cluster, alloc_policy);
    let mut maui = Maui::new(config.sched);
    let epoch = Instant::now();
    let now = move || SimTime::from_millis(epoch.elapsed().as_millis() as u64);
    let mut drain_waiters: Vec<Sender<()>> = Vec::new();
    let mut job_gen: HashMap<JobId, u64> = HashMap::new();

    while let Ok(cmd) = rx.recv() {
        let t = now();
        let mut state_changed = true;
        match cmd {
            ServerCmd::Client(ClientReq::QSub { spec, reply }) => {
                let res = server.qsub(*spec, t).map_err(|e| e.to_string());
                let _ = reply.send(res);
            }
            ServerCmd::Client(ClientReq::QDel { job, reply }) => {
                let res = server.qdel(job, t).map_err(|e| e.to_string());
                let _ = reply.send(res);
            }
            ServerCmd::Client(ClientReq::QStat { job, reply }) => {
                let _ = reply.send(server.job(job).map(|j| j.state).ok());
                state_changed = false;
            }
            ServerCmd::Client(ClientReq::AwaitDrained { reply }) => {
                drain_waiters.push(reply);
                state_changed = false;
            }
            ServerCmd::FromMom(MomToServer::DynRequest {
                job,
                extra_cores,
                timeout,
            }) => {
                // tm_dynget landed: DynQueued + immediate scheduling cycle
                // (paper: "This triggers a new scheduling cycle").
                let deadline = timeout.map(|w| t + w);
                let res = server.tm_dynget_negotiated(job, extra_cores, deadline, t);
                if res.is_ok() {
                    if let Some(d) = deadline {
                        // Negotiation expiry timer: wakes the server at the
                        // deadline to time the request out if still pending.
                        let tx = self_tx.clone();
                        let wait = Duration::from_millis(d.duration_since(t).as_millis());
                        thread::Builder::new()
                            .name(format!("dyn-expire.{}", job.0))
                            .spawn(move || {
                                thread::sleep(wait);
                                let _ = tx.send(ServerCmd::ExpireDyn(job));
                            })
                            .expect("spawn expiry timer");
                    }
                } else {
                    // Already pending or not running: deny straight back.
                    if let Some(&ms) = ms_directory.lock().unwrap().get(&job) {
                        let _ = mom_txs[ms.0 as usize]
                            .send(MomMsg::FromServer(ServerToMom::DynReject { job }));
                    }
                    state_changed = false;
                }
            }
            ServerCmd::ExpireDyn(job) => {
                let expired = server.expire_dyn_requests(t);
                if expired.contains(&job) {
                    if let Some(&ms) = ms_directory.lock().unwrap().get(&job) {
                        let _ = mom_txs[ms.0 as usize]
                            .send(MomMsg::FromServer(ServerToMom::DynReject { job }));
                    }
                } else {
                    state_changed = false;
                }
            }
            ServerCmd::FromMom(MomToServer::DynFree { job, released }) => {
                let _ = server.tm_dynfree(job, &released, t);
            }
            ServerCmd::FromMom(MomToServer::JobStarted {
                job,
                mother_superior,
            }) => {
                ms_directory.lock().unwrap().insert(job, mother_superior);
                state_changed = false;
            }
            ServerCmd::FromMom(MomToServer::JobFinished { job }) | ServerCmd::JobExited(job) => {
                // Ignore exits of jobs that already left (preempted timer).
                if server
                    .job(job)
                    .map(|j| j.state.is_active())
                    .unwrap_or(false)
                {
                    let user = server.job(job).expect("checked").spec.user;
                    let start = server.job(job).expect("checked").start_time;
                    let cores = server.job(job).expect("checked").cores_allocated;
                    server.job_finished(job, t).expect("active job finishes");
                    maui.dfs_mut().job_left_queue(job);
                    if let Some(s) = start {
                        maui.fairshare_mut()
                            .charge_span(user, cores, t.duration_since(s));
                    }
                    if let Some(&ms) = ms_directory.lock().unwrap().get(&job) {
                        let _ = mom_txs[ms.0 as usize]
                            .send(MomMsg::FromServer(ServerToMom::KillJob { job }));
                    }
                } else {
                    state_changed = false;
                }
            }
            ServerCmd::Shutdown => break,
        }

        if state_changed {
            run_cycle(
                &mut server,
                &mut maui,
                t,
                &mom_txs,
                &ms_directory,
                &self_tx,
                &mut job_gen,
            );
        }
        if !drain_waiters.is_empty() && server.is_drained() {
            for w in drain_waiters.drain(..) {
                let _ = w.send(());
            }
        }
    }
}

fn run_cycle(
    server: &mut PbsServer,
    maui: &mut Maui,
    now: SimTime,
    mom_txs: &[Sender<MomMsg>],
    ms_directory: &Arc<Mutex<HashMap<JobId, NodeId>>>,
    self_tx: &Sender<ServerCmd>,
    job_gen: &mut HashMap<JobId, u64>,
) {
    let snapshot = server.snapshot(now);
    let outcome = maui.iterate(&snapshot);
    let applied = server.apply(&outcome, now);
    for action in applied {
        match action {
            Applied::Started { job, alloc, .. } => {
                let ms = alloc.entries().next().expect("non-empty allocation").0;
                ms_directory.lock().unwrap().insert(job, ms);
                let _ = mom_txs[ms.0 as usize]
                    .send(MomMsg::FromServer(ServerToMom::RunJob { job, alloc }));
                // The "application": a timer that exits after the job's
                // modelled runtime (1 SimTime ms == 1 wall ms here).
                let gen = {
                    let g = job_gen.entry(job).or_insert(0);
                    *g += 1;
                    *g
                };
                let dur = {
                    let j = server.job(job).expect("started job exists");
                    j.spec.exec.static_duration(j.cores_allocated)
                };
                let tx = self_tx.clone();
                let dir = Arc::clone(ms_directory);
                let expect_gen = gen;
                thread::Builder::new()
                    .name(format!("app.{}", job.0))
                    .spawn(move || {
                        thread::sleep(Duration::from_millis(dur.as_millis()));
                        // Stale timers (job preempted & restarted) are
                        // filtered by the generation map snapshot below.
                        let _ = dir; // directory kept alive for symmetry
                        let _ = expect_gen;
                        let _ = tx.send(ServerCmd::JobExited(job));
                    })
                    .expect("spawn app timer");
            }
            Applied::DynGranted { job, added } => {
                if let Some(&ms) = ms_directory.lock().unwrap().get(&job) {
                    let _ = mom_txs[ms.0 as usize]
                        .send(MomMsg::FromServer(ServerToMom::DynJoin { job, added }));
                }
            }
            Applied::DynRejected { job, .. } => {
                if let Some(&ms) = ms_directory.lock().unwrap().get(&job) {
                    let _ = mom_txs[ms.0 as usize]
                        .send(MomMsg::FromServer(ServerToMom::DynReject { job }));
                }
            }
            Applied::DynDeferred { .. } => {
                // Negotiation: the request stays pending at the server; the
                // application keeps waiting on its TM reply channel until a
                // later cycle grants it or the expiry timer fires.
            }
            Applied::Preempted { job } => {
                if let Some(ms) = ms_directory.lock().unwrap().remove(&job) {
                    let _ = mom_txs[ms.0 as usize]
                        .send(MomMsg::FromServer(ServerToMom::KillJob { job }));
                }
            }
            Applied::Resized {
                job,
                from_cores,
                to_cores,
                changed,
            } => {
                // Keep the mother superior's hostlist current. Note the
                // daemon's app timers are not re-paced by resizes (the
                // virtual-time simulator models work-pool speedups; here a
                // job runs its submitted duration).
                if let Some(&ms) = ms_directory.lock().unwrap().get(&job) {
                    let msg = if to_cores > from_cores {
                        ServerToMom::DynJoin {
                            job,
                            added: changed,
                        }
                    } else {
                        ServerToMom::DynDisjoin {
                            job,
                            released: changed,
                        }
                    };
                    let _ = mom_txs[ms.0 as usize].send(MomMsg::FromServer(msg));
                }
            }
        }
    }
}

/// One `pbs_mom` daemon: wraps the pure [`Mom`] state machine with the
/// dyn_join fan-out (ping/ack every newly allocated node before answering
/// the application — the real cost Fig 12 measures).
fn mom_main(
    node: NodeId,
    rx: Receiver<MomMsg>,
    server_tx: Sender<ServerCmd>,
    peers: Vec<Sender<MomMsg>>,
) {
    let mut mom = Mom::new(node);
    let mut tm_replies: HashMap<JobId, Sender<TmResponse>> = HashMap::new();
    let mut pending_join: HashMap<JobId, (usize, Allocation)> = HashMap::new();

    let route = |outputs: Vec<MomOutput>,
                 tm_replies: &mut HashMap<JobId, Sender<TmResponse>>,
                 server_tx: &Sender<ServerCmd>| {
        for out in outputs {
            match out {
                MomOutput::ToServer(m) => {
                    let _ = server_tx.send(ServerCmd::FromMom(m));
                }
                MomOutput::ToApp(job, resp) => {
                    if let Some(reply) = tm_replies.remove(&job) {
                        let _ = reply.send(resp);
                    }
                }
            }
        }
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            MomMsg::FromServer(ServerToMom::DynJoin { job, added }) => {
                // dyn_join: every newly allocated host joins the group
                // before the application gets its hostlist.
                let others: Vec<NodeId> = added
                    .entries()
                    .map(|(n, _)| n)
                    .filter(|&n| n != node)
                    .collect();
                if others.is_empty() {
                    let out = mom.handle_server(ServerToMom::DynJoin { job, added });
                    route(out, &mut tm_replies, &server_tx);
                } else {
                    pending_join.insert(job, (others.len(), added));
                    for peer in others {
                        let _ = peers[peer.0 as usize].send(MomMsg::Peer(PeerMsg::JoinPing {
                            job,
                            reply_to: node,
                        }));
                    }
                }
            }
            MomMsg::FromServer(other) => {
                let out = mom.handle_server(other);
                route(out, &mut tm_replies, &server_tx);
            }
            MomMsg::Peer(PeerMsg::JoinPing { job, reply_to }) => {
                let _ = peers[reply_to.0 as usize].send(MomMsg::Peer(PeerMsg::JoinAck { job }));
            }
            MomMsg::Peer(PeerMsg::JoinAck { job }) => {
                let complete = match pending_join.get_mut(&job) {
                    Some((need, _)) => {
                        *need -= 1;
                        *need == 0
                    }
                    None => false,
                };
                if complete {
                    let (_, added) = pending_join.remove(&job).expect("present");
                    let out = mom.handle_server(ServerToMom::DynJoin { job, added });
                    route(out, &mut tm_replies, &server_tx);
                }
            }
            MomMsg::Tm { job, req, reply } => {
                tm_replies.insert(job, reply);
                let out = mom.handle_tm(job, req);
                route(out, &mut tm_replies, &server_tx);
            }
            MomMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{DfsConfig, ExecutionModel, GroupId, SimDuration, UserId};

    fn spec(name: &str, cores: u32, millis: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            user: UserId(0),
            group: GroupId(0),
            class: dynbatch_core::JobClass::Rigid,
            cores,
            walltime: SimDuration::from_millis(millis),
            exec: ExecutionModel::Fixed {
                duration: SimDuration::from_millis(millis),
            },
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            malleable: None,
            moldable: None,
            dyn_timeout: None,
        }
    }

    fn hp_config(nodes: u32) -> DaemonConfig {
        let mut sched = SchedulerConfig::paper_eval();
        sched.dfs = DfsConfig::highest_priority();
        DaemonConfig {
            nodes,
            cores_per_node: 8,
            sched,
        }
    }

    #[test]
    fn submit_run_finish() {
        let d = DaemonHandle::start(hp_config(4));
        let id = d.qsub(spec("demo", 8, 50)).expect("qsub");
        assert!(d.wait_for_state(id, JobState::Running, Duration::from_secs(2)));
        assert!(d.wait_for_state(id, JobState::Completed, Duration::from_secs(2)));
        d.shutdown();
    }

    #[test]
    fn dynget_roundtrip_grants() {
        let d = DaemonHandle::start(hp_config(4));
        // A long-running 8-core job on a 32-core system.
        let id = d.qsub(spec("app", 8, 5_000)).expect("qsub");
        assert!(d.wait_for_state(id, JobState::Running, Duration::from_secs(2)));
        let (resp, latency) = d.tm_dynget_timed(id, 8);
        match resp {
            TmResponse::DynGranted { added } => assert_eq!(added.total_cores(), 8),
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(
            latency < Duration::from_secs(1),
            "sub-second overhead: {latency:?}"
        );
        let _ = d.qdel(id);
        d.shutdown();
    }

    #[test]
    fn dynget_denied_when_full() {
        let d = DaemonHandle::start(hp_config(2));
        let id = d.qsub(spec("big", 16, 5_000)).expect("qsub");
        assert!(d.wait_for_state(id, JobState::Running, Duration::from_secs(2)));
        let resp = d.tm_dynget(id, 4);
        assert!(matches!(resp, TmResponse::DynDenied), "{resp:?}");
        let _ = d.qdel(id);
        d.shutdown();
    }

    #[test]
    fn dynfree_releases() {
        let d = DaemonHandle::start(hp_config(4));
        let id = d.qsub(spec("app", 16, 5_000)).expect("qsub");
        assert!(d.wait_for_state(id, JobState::Running, Duration::from_secs(2)));
        let (resp, _) = d.tm_dynget_timed(id, 8);
        let TmResponse::DynGranted { added } = resp else {
            panic!("grant expected");
        };
        let resp = d.tm_dynfree(id, added);
        assert!(matches!(resp, TmResponse::Freed), "{resp:?}");
        let _ = d.qdel(id);
        d.shutdown();
    }

    #[test]
    fn queue_drains() {
        let d = DaemonHandle::start(hp_config(2));
        for i in 0..6 {
            d.qsub(spec(&format!("j{i}"), 8, 30)).expect("qsub");
        }
        assert!(d.await_drained(Duration::from_secs(5)));
        d.shutdown();
    }
}
