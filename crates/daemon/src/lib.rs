//! # dynbatch-daemon
//!
//! A *real* (threaded, wall-clock) deployment of the dynamic batch system.
//!
//! Where `dynbatch-sim` drives the server/scheduler state machines in
//! virtual time, this crate runs them as live daemons: one server thread
//! (hosting `pbs_server` + the Maui scheduler), one `pbs_mom` thread per
//! compute node, and client handles applications call into. Messages
//! travel over std `mpsc` channels — the same hop structure as the paper's
//! Fig 3:
//!
//! ```text
//! app ── tm_dynget ──► mother-superior mom ──► server ──► scheduler
//!                                                    ▼
//! app ◄── hostlist ─── mother-superior mom ◄── DynJoin (after grant)
//!                       ▲    │ dyn_join fan-out to each added mom
//!                       └────┘ (one ping/ack per newly allocated node)
//! ```
//!
//! The paper's Fig 12 measures exactly this round trip (sub-second for up
//! to 10 nodes); the bench harness reproduces it with
//! [`DaemonHandle::tm_dynget_timed`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemon;
pub mod fault;
pub mod timer;
pub mod wire;

pub use daemon::{DaemonConfig, DaemonHandle, ReplicationConfig};
pub use fault::{FaultPlan, ServerCrash};
pub use timer::{TimerHandle, TimerId, TimerService};
pub use wire::{ClientReq, MomMsg, PeerMsg, ReplicationStatus, ServerCmd};
