//! Channel message types for the threaded deployment.
//!
//! Every enum is `Clone` so the fault-injection harness ([`crate::fault`])
//! can duplicate deliveries. Timer-originated commands carry the tag of
//! the state they were armed against (`gen` for app-exit timers, `seq` for
//! negotiation expiries): the server drops firings whose tag no longer
//! matches, so a stale timer can never act on a successor run or request.

use dynbatch_core::{JobId, JobOutcome, JobSpec, JobState, NodeId, UserId};
use dynbatch_server::{MomToServer, ServerToMom, TmResponse};
use std::sync::mpsc::Sender;

/// Client → server requests, each carrying its reply channel.
#[derive(Debug, Clone)]
pub enum ClientReq {
    /// Submit a job; replies with the assigned id (or an error string).
    QSub {
        /// The job to submit.
        spec: Box<JobSpec>,
        /// Reply channel.
        reply: Sender<Result<JobId, String>>,
    },
    /// Delete a job.
    QDel {
        /// The job.
        job: JobId,
        /// Reply channel.
        reply: Sender<Result<(), String>>,
    },
    /// Query a job's state.
    QStat {
        /// The job.
        job: JobId,
        /// Reply channel.
        reply: Sender<Option<JobState>>,
    },
    /// Start notification: replies `true` once the job has started (or
    /// `false` if it became terminal without ever starting). Event-driven
    /// — no polling.
    AwaitRunning {
        /// The job.
        job: JobId,
        /// Reply channel (fires when started or terminally not-started).
        reply: Sender<bool>,
    },
    /// Drain notification: replies once no job is queued or active.
    AwaitDrained {
        /// Reply channel (fires when drained).
        reply: Sender<()>,
    },
    /// Snapshot of the accounting log (completed-job outcomes).
    Outcomes {
        /// Reply channel.
        reply: Sender<Vec<JobOutcome>>,
    },
    /// Total core-seconds charged to a user by the fairshare tracker.
    FairshareCharged {
        /// The user.
        user: UserId,
        /// Reply channel.
        reply: Sender<f64>,
    },
    /// Snapshot of the replication layer (`None` when replication is
    /// off).
    ReplicationStatus {
        /// Reply channel.
        reply: Sender<Option<ReplicationStatus>>,
    },
}

/// A point-in-time view of the replication layer, answered by
/// [`ClientReq::ReplicationStatus`].
#[derive(Debug, Clone, Default)]
pub struct ReplicationStatus {
    /// Current leader term (1 before any failover).
    pub term: u64,
    /// Per-follower acked watermark under the current term (0 for dead
    /// or still-reseeding followers).
    pub follower_watermarks: Vec<u64>,
    /// The leader journal's `total_appended`.
    pub leader_appended: u64,
    /// Watermark through which replication-gated acks were released.
    pub acked_watermark: u64,
    /// Completed failovers.
    pub failovers: u64,
    /// Records the last failover reported appended-but-unreplicated.
    pub lost_records: u64,
    /// Of those, how many had been ack-gated (must stay 0 under
    /// `ack_after_replicate`).
    pub acked_lost: u64,
    /// Divergence errors reported by followers (poisoned replicas).
    pub errors: Vec<String>,
}

/// Everything the server thread receives.
#[derive(Debug, Clone)]
pub enum ServerCmd {
    /// A client request.
    Client(ClientReq),
    /// A mom notification.
    FromMom(MomToServer),
    /// An application exited (sent by the job's app-exit timer). `gen` is
    /// the run generation the timer was armed for; a firing whose `gen`
    /// does not match the job's current generation is stale (the job was
    /// preempted and restarted since) and is dropped.
    JobExited(JobId, u64),
    /// A negotiated dynamic request's expiry timer fired. `seq` identifies
    /// the exact request the timer was armed for; expiry is a no-op once
    /// that request left the pending set (granted, rejected, superseded).
    ExpireDyn {
        /// The job.
        job: JobId,
        /// The pending request's FIFO sequence number.
        seq: u64,
    },
    /// A mom lost its state and restarted (fault injection); the server
    /// re-sends `RunJob` for every active job mothered there.
    MomRestarted(NodeId),
    /// A reactor client sent something: poll the command reactor. Pure
    /// nudge — commands travel on the reactor's own (unfaultable)
    /// channel; spurious wakes poll an empty mailbox and move on.
    ReactorWake,
    /// Stop the daemon.
    Shutdown,
}

/// Mom-to-mom messages (the dyn_join fan-out).
///
/// Pings and acks are the one *expendable* message class: the mother
/// superior retransmits unacked pings with exponential backoff, acks are
/// idempotent (keyed by acker), and both carry the fan-out `round` so a
/// late ack from a previous round cannot complete the current one.
#[derive(Debug, Clone)]
pub enum PeerMsg {
    /// "Join job `job`'s host group" — sent by the mother superior to each
    /// newly allocated node during dyn_join; retransmitted until acked.
    JoinPing {
        /// The job being expanded.
        job: JobId,
        /// The mother superior's fan-out round.
        round: u64,
        /// Who to ack.
        reply_to: NodeId,
    },
    /// Acknowledgement of a [`PeerMsg::JoinPing`].
    JoinAck {
        /// The job being expanded.
        job: JobId,
        /// Echo of the ping's round.
        round: u64,
        /// The acking node (dedup key — duplicated acks count once).
        from: NodeId,
    },
}

/// Everything a mom thread receives.
#[derive(Debug, Clone)]
pub enum MomMsg {
    /// A server command.
    FromServer(ServerToMom),
    /// A peer-mom message.
    Peer(PeerMsg),
    /// A TM call from an application process on this node.
    Tm {
        /// The calling job.
        job: JobId,
        /// The request.
        req: dynbatch_server::TmRequest,
        /// Where the TM response goes.
        reply: Sender<TmResponse>,
    },
    /// Failover reconciliation from a freshly promoted leader: `live` is
    /// the set of jobs whose dynamic requests are still pending on the
    /// promoted state. A parked `tm_dynget` caller whose request record
    /// was lost with the dead leader (its job is not in `live`) is denied
    /// rather than left hanging; callers in `live` stay parked — their
    /// negotiations survived the failover and the new leader will answer
    /// them.
    ReconcileDyn {
        /// Jobs with a live pending dynamic request on the new leader.
        live: Vec<JobId>,
    },
    /// Fault injection: the mom "process" dies and restarts, losing all
    /// in-memory state. Pending TM calls are failed back to their
    /// applications, then the mom announces [`ServerCmd::MomRestarted`].
    Crash,
    /// Stop the mom.
    Shutdown,
}
