//! Channel message types for the threaded deployment.

use dynbatch_core::{JobId, JobSpec, JobState, NodeId};
use dynbatch_server::{MomToServer, ServerToMom, TmResponse};
use std::sync::mpsc::Sender;

/// Client → server requests, each carrying its reply channel.
#[derive(Debug)]
pub enum ClientReq {
    /// Submit a job; replies with the assigned id (or an error string).
    QSub {
        /// The job to submit.
        spec: Box<JobSpec>,
        /// Reply channel.
        reply: Sender<Result<JobId, String>>,
    },
    /// Delete a job.
    QDel {
        /// The job.
        job: JobId,
        /// Reply channel.
        reply: Sender<Result<(), String>>,
    },
    /// Query a job's state.
    QStat {
        /// The job.
        job: JobId,
        /// Reply channel.
        reply: Sender<Option<JobState>>,
    },
    /// Drain notification: replies once no job is queued or active.
    AwaitDrained {
        /// Reply channel (fires when drained).
        reply: Sender<()>,
    },
}

/// Everything the server thread receives.
#[derive(Debug)]
pub enum ServerCmd {
    /// A client request.
    Client(ClientReq),
    /// A mom notification.
    FromMom(MomToServer),
    /// An application exited (sent by the job timer).
    JobExited(JobId),
    /// A negotiated dynamic request's expiry timer fired.
    ExpireDyn(JobId),
    /// Stop the daemon.
    Shutdown,
}

/// Mom-to-mom messages (the dyn_join fan-out).
#[derive(Debug, Clone)]
pub enum PeerMsg {
    /// "Join job `job`'s host group" — sent by the mother superior to each
    /// newly allocated node during dyn_join.
    JoinPing {
        /// The job being expanded.
        job: JobId,
        /// Who to ack.
        reply_to: NodeId,
    },
    /// Acknowledgement of a [`PeerMsg::JoinPing`].
    JoinAck {
        /// The job being expanded.
        job: JobId,
    },
}

/// Everything a mom thread receives.
#[derive(Debug)]
pub enum MomMsg {
    /// A server command.
    FromServer(ServerToMom),
    /// A peer-mom message.
    Peer(PeerMsg),
    /// A TM call from an application process on this node.
    Tm {
        /// The calling job.
        job: JobId,
        /// The request.
        req: dynbatch_server::TmRequest,
        /// Where the TM response goes.
        reply: Sender<TmResponse>,
    },
    /// Stop the mom.
    Shutdown,
}
