//! A cancellable deadline service: one worker thread, a binary heap of
//! deadlines, generation-tagged payloads.
//!
//! The daemon previously spawned one **detached** sleep thread per app
//! exit and per negotiation expiry — unjoinable, uncancellable, and alive
//! past `shutdown()`. The [`TimerService`] replaces all of them: owners
//! schedule a payload for a deadline and get a [`TimerId`] back; firings
//! are delivered in deadline order (ties broken by schedule order) to a
//! single sink; cancelled entries never fire; the one worker thread is
//! joined on shutdown (or on drop), so an ensemble leaves zero live
//! threads behind.
//!
//! Determinism contract: for a fixed set of `schedule` calls, the firing
//! *order* is a pure function of (deadline, schedule sequence). Wall-clock
//! jitter can shift *when* a payload fires, never *whether* or in what
//! order relative to other due payloads — which is why payloads carry
//! generation/sequence tags and receivers drop stale ones.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies one scheduled firing; pass to [`TimerHandle::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

enum TimerCmd<T> {
    Schedule { id: u64, at: Instant, payload: T },
    Cancel(u64),
    Shutdown,
}

/// A cloneable scheduling endpoint of a [`TimerService`].
#[derive(Debug)]
pub struct TimerHandle<T> {
    tx: Sender<TimerCmd<T>>,
    next_id: Arc<AtomicU64>,
}

// Derived `Clone` would require `T: Clone`; the handle never clones
// payloads.
impl<T> Clone for TimerHandle<T> {
    fn clone(&self) -> Self {
        TimerHandle {
            tx: self.tx.clone(),
            next_id: Arc::clone(&self.next_id),
        }
    }
}

impl<T: Send + 'static> TimerHandle<T> {
    /// Schedules `payload` to be delivered to the sink `after` from now.
    pub fn schedule(&self, after: Duration, payload: T) -> TimerId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let _ = self.tx.send(TimerCmd::Schedule {
            id,
            at: Instant::now() + after,
            payload,
        });
        TimerId(id)
    }

    /// Cancels a scheduled firing. A no-op if it already fired.
    pub fn cancel(&self, id: TimerId) {
        let _ = self.tx.send(TimerCmd::Cancel(id.0));
    }
}

/// The service: owns the worker thread. Dropping (or calling
/// [`TimerService::shutdown`]) stops and **joins** the worker; payloads
/// still pending are discarded.
#[derive(Debug)]
pub struct TimerService<T: Send + 'static> {
    handle: TimerHandle<T>,
    worker: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> TimerService<T> {
    /// Starts the worker thread (named `name`); every due payload is
    /// passed to `sink` on that thread.
    pub fn start(name: &str, sink: impl FnMut(T) + Send + 'static) -> Self {
        let (tx, rx) = channel();
        let worker = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || worker_main(rx, sink))
            .expect("spawn timer worker");
        TimerService {
            handle: TimerHandle {
                tx,
                next_id: Arc::new(AtomicU64::new(0)),
            },
            worker: Some(worker),
        }
    }

    /// A cloneable scheduling endpoint.
    pub fn handle(&self) -> TimerHandle<T> {
        self.handle.clone()
    }

    /// Stops the worker and joins it. Pending payloads never fire.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.handle.tx.send(TimerCmd::Shutdown);
            let _ = worker.join();
        }
    }
}

impl<T: Send + 'static> Drop for TimerService<T> {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_main<T>(rx: Receiver<TimerCmd<T>>, mut sink: impl FnMut(T)) {
    // Min-heap on (deadline, schedule id): id is monotonic, so ties fire
    // in schedule order. Cancellation removes the payload; the heap entry
    // is skipped lazily when popped.
    let mut heap: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut payloads: HashMap<u64, T> = HashMap::new();
    loop {
        let now = Instant::now();
        while let Some(&Reverse((at, id))) = heap.peek() {
            if at > now {
                break;
            }
            heap.pop();
            if let Some(p) = payloads.remove(&id) {
                sink(p);
            }
        }
        let cmd = match heap.peek() {
            Some(&Reverse((at, _))) => {
                match rx.recv_timeout(at.saturating_duration_since(Instant::now())) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
        };
        match cmd {
            TimerCmd::Schedule { id, at, payload } => {
                heap.push(Reverse((at, id)));
                payloads.insert(id, payload);
            }
            TimerCmd::Cancel(id) => {
                payloads.remove(&id);
            }
            TimerCmd::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn fires_in_deadline_order() {
        let (tx, rx) = channel();
        let svc = TimerService::start("t.order", move |v: u32| {
            let _ = tx.send(v);
        });
        let h = svc.handle();
        h.schedule(Duration::from_millis(60), 3);
        h.schedule(Duration::from_millis(10), 1);
        h.schedule(Duration::from_millis(30), 2);
        let got: Vec<u32> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(2)).expect("firing"))
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
        svc.shutdown();
    }

    #[test]
    fn equal_deadlines_fire_in_schedule_order() {
        let (tx, rx) = channel();
        let svc = TimerService::start("t.ties", move |v: u32| {
            let _ = tx.send(v);
        });
        let h = svc.handle();
        let at = Duration::from_millis(20);
        for v in 0..5u32 {
            h.schedule(at, v);
        }
        let got: Vec<u32> = (0..5)
            .map(|_| rx.recv_timeout(Duration::from_secs(2)).expect("firing"))
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        svc.shutdown();
    }

    #[test]
    fn cancelled_entries_never_fire() {
        let (tx, rx) = channel();
        let svc = TimerService::start("t.cancel", move |v: u32| {
            let _ = tx.send(v);
        });
        let h = svc.handle();
        let doomed = h.schedule(Duration::from_millis(30), 99);
        h.schedule(Duration::from_millis(50), 7);
        h.cancel(doomed);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)).expect("survivor"),
            7
        );
        assert!(rx.try_recv().is_err(), "cancelled payload leaked through");
        svc.shutdown();
    }

    #[test]
    fn shutdown_joins_and_discards_pending() {
        let (tx, rx) = channel();
        let svc = TimerService::start("t.down", move |v: u32| {
            let _ = tx.send(v);
        });
        svc.handle().schedule(Duration::from_secs(600), 1);
        svc.shutdown(); // returns promptly despite the far deadline
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn drop_also_joins() {
        let svc: TimerService<u32> = TimerService::start("t.drop", |_| {});
        svc.handle().schedule(Duration::from_secs(600), 1);
        drop(svc); // must not hang
    }
}
