//! Deterministic fault injection for the daemon's channel layer.
//!
//! A [`FaultPlan`] (seeded by [`SplitMix64`]) wraps every daemon-internal
//! channel in a link that can **drop**, **delay**, **duplicate**, and —
//! via delays overtaking each other — **reorder** deliveries, plus
//! schedule mom **crash/restart** events. Delayed and duplicated messages
//! are carried by a postman [`TimerService`] thread that is joined on
//! shutdown, so even a fault-ridden ensemble leaves zero live threads.
//!
//! ## Fault model (what may happen to which message)
//!
//! | class | messages | faults |
//! |---|---|---|
//! | *expendable* | `PeerMsg` ping/ack fan-out | drop, duplicate, delay |
//! | *sturdy* | everything else | duplicate, delay |
//!
//! Only the dyn_join ping/ack traffic may be dropped, because only it has
//! retransmission (exponential-backoff retries in `mom_main`); dropping a
//! message with no retry path would model a failure the real protocol
//! handles at the TCP layer. Sturdy duplicates are survivable because the
//! receiving state machines are idempotent: the server drops stale
//! `JobExited`/`ExpireDyn` by tag and ignores `JobFinished` for inactive
//! jobs, and moms ignore acks from completed rounds. Client↔server,
//! app↔mom (TM calls) and timer→server channels are never faulted — they
//! model in-process or node-local calls, not network hops.
//!
//! Determinism: all randomness comes from streams derived from the plan's
//! seed. Thread interleaving still varies between runs, so a seed pins the
//! *fault pressure*, not an exact trace — the chaos suite asserts
//! interleaving-independent invariants (drain, outcome equivalence, clean
//! shutdown) across many seeds.

use crate::timer::{TimerHandle, TimerService};
use crate::wire::{MomMsg, ServerCmd};
use dynbatch_simtime::SplitMix64;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A seeded fault schedule for one daemon ensemble.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of every derived randomness stream.
    pub seed: u64,
    /// Drop probability (‰) for expendable (retried) messages.
    pub drop_permille: u32,
    /// Duplicate probability (‰).
    pub dup_permille: u32,
    /// Delay probability (‰); a delayed message may overtake or be
    /// overtaken — this is also the reorder mechanism.
    pub delay_permille: u32,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
    /// Mom crash/restart schedule: (time after boot, node index).
    pub mom_kills: Vec<(Duration, u32)>,
    /// Server crash/recovery schedule, in journal-record coordinates:
    /// the server daemon crashes at the first command boundary once its
    /// write-ahead journal has appended `after_record` records, then
    /// restarts by snapshot-load + replay.
    pub server_crashes: Vec<ServerCrash>,
    /// Leader kill/failover schedule, in journal-record coordinates: the
    /// leader dies for good at the first command boundary past
    /// `after_record` and the highest-watermark replication follower is
    /// promoted in its place. Ignored when replication is off.
    pub leader_kills: Vec<ServerCrash>,
    /// Faults on the replication stream itself (frame drop/delay/
    /// reorder, follower crashes). `None` = clean stream.
    pub replication: Option<dynbatch_server::replication::ReplFaultPlan>,
}

/// One scheduled server crash, positioned by journal progress rather than
/// wall time so a seed pins *where in the mutation history* the server
/// dies, independent of thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCrash {
    /// Crash once this many journal records have been appended.
    pub after_record: u64,
}

impl FaultPlan {
    /// The zero-fault plan: the harness is engaged (every message routes
    /// through the chaos layer) but no fault ever triggers. Used as the
    /// smoke seed: behaviour must be identical to running without a plan.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_permille: 0,
            dup_permille: 0,
            delay_permille: 0,
            max_delay: Duration::ZERO,
            mom_kills: Vec::new(),
            server_crashes: Vec::new(),
            leader_kills: Vec::new(),
            replication: None,
        }
    }

    /// A randomized schedule derived entirely from `seed` for an ensemble
    /// of `nodes` moms: moderate drop/dup/delay pressure plus up to two
    /// mom crashes inside the first `horizon` of the run.
    pub fn from_seed(seed: u64, nodes: u32, horizon: Duration) -> Self {
        let mut rng = SplitMix64::new(seed).derive(0x9A7);
        let kills = rng.next_below(3) as usize;
        let mom_kills = (0..kills)
            .map(|_| {
                let at = Duration::from_millis(rng.next_below(horizon.as_millis().max(1) as u64));
                (at, rng.next_below(nodes.max(1) as u64) as u32)
            })
            .collect();
        // Server crash points are drawn *after* every other field so that
        // adding them left the pre-existing derivation (and thus every
        // previously pinned seed's drop/dup/delay pressure) untouched.
        let (drop_permille, dup_permille, delay_permille, max_delay) = (
            rng.next_below(301) as u32,
            rng.next_below(201) as u32,
            rng.next_below(251) as u32,
            Duration::from_millis(5 + rng.next_below(36)),
        );
        let crashes = rng.next_below(3) as usize;
        let mut server_crashes: Vec<ServerCrash> = (0..crashes)
            .map(|_| ServerCrash {
                after_record: 1 + rng.next_below(40),
            })
            .collect();
        server_crashes.sort_by_key(|c| c.after_record);
        server_crashes.dedup();
        FaultPlan {
            seed,
            drop_permille,
            dup_permille,
            delay_permille,
            max_delay,
            mom_kills,
            server_crashes,
            // Replication faults are opt-in (the replication chaos suite
            // builds them explicitly), so pinned seeds keep their exact
            // historical pressure: nothing new is drawn here.
            leader_kills: Vec::new(),
            replication: None,
        }
    }
}

/// A faulted delivery in flight (held by the postman until due).
pub(crate) enum Delivery {
    /// To mom `idx`.
    ToMom(usize, MomMsg),
    /// To the server.
    ToServer(ServerCmd),
}

pub(crate) struct ChaosCore {
    plan: FaultPlan,
    rng: Mutex<SplitMix64>,
    postman: TimerHandle<Delivery>,
}

impl ChaosCore {
    fn draw_delay(&self, rng: &mut SplitMix64) -> Option<Duration> {
        if !rng.chance_permille(self.plan.delay_permille) {
            return None;
        }
        let max = self.plan.max_delay.as_millis() as u64;
        Some(Duration::from_millis(if max == 0 {
            0
        } else {
            1 + rng.next_below(max)
        }))
    }

    /// Routes one message: returns `false` when the message was consumed
    /// (dropped, or rescheduled onto the postman); `true` when the caller
    /// should deliver it on the raw channel now.
    fn route(&self, expendable: bool, make: impl Fn() -> Delivery) -> bool {
        let mut rng = self.rng.lock().unwrap();
        if expendable && rng.chance_permille(self.plan.drop_permille) {
            return false; // dropped on the floor
        }
        if rng.chance_permille(self.plan.dup_permille) {
            let extra = self
                .draw_delay(&mut rng)
                .unwrap_or(Duration::from_millis(1));
            self.postman.schedule(extra, make());
        }
        if let Some(delay) = self.draw_delay(&mut rng) {
            self.postman.schedule(delay, make());
            return false;
        }
        true
    }
}

/// The per-ensemble chaos engine: owns the postman thread.
pub(crate) struct Chaos {
    core: Arc<ChaosCore>,
    postman: TimerService<Delivery>,
}

impl Chaos {
    /// Builds the engine and schedules the plan's mom kills.
    pub(crate) fn start(
        plan: FaultPlan,
        name: &str,
        server_raw: Sender<ServerCmd>,
        mom_raw: Vec<Sender<MomMsg>>,
    ) -> Self {
        let postman = TimerService::start(name, move |d: Delivery| match d {
            Delivery::ToMom(idx, msg) => {
                if let Some(tx) = mom_raw.get(idx) {
                    let _ = tx.send(msg);
                }
            }
            Delivery::ToServer(cmd) => {
                let _ = server_raw.send(cmd);
            }
        });
        let handle = postman.handle();
        for &(at, node) in &plan.mom_kills {
            handle.schedule(at, Delivery::ToMom(node as usize, MomMsg::Crash));
        }
        let rng = SplitMix64::new(plan.seed).derive(0xFA01);
        Chaos {
            core: Arc::new(ChaosCore {
                plan,
                rng: Mutex::new(rng),
                postman: handle,
            }),
            postman,
        }
    }

    pub(crate) fn core(&self) -> Arc<ChaosCore> {
        Arc::clone(&self.core)
    }

    /// Stops and joins the postman; undelivered faults are discarded.
    pub(crate) fn shutdown(self) {
        self.postman.shutdown();
    }
}

/// A (possibly faulted) sender towards one mom.
#[derive(Clone)]
pub(crate) struct MomLink {
    pub(crate) idx: usize,
    raw: Sender<MomMsg>,
    chaos: Option<Arc<ChaosCore>>,
}

impl MomLink {
    pub(crate) fn new(idx: usize, raw: Sender<MomMsg>, chaos: Option<Arc<ChaosCore>>) -> Self {
        MomLink { idx, raw, chaos }
    }

    /// Sends through the fault layer. Control messages ([`MomMsg::Crash`],
    /// [`MomMsg::Shutdown`]) and TM calls ([`MomMsg::Tm`] — an app talking
    /// to its node-local mom, not a network hop) always bypass it.
    pub(crate) fn send(&self, msg: MomMsg) {
        let faultable = !matches!(msg, MomMsg::Crash | MomMsg::Shutdown | MomMsg::Tm { .. });
        match (&self.chaos, faultable) {
            (Some(chaos), true) => {
                let expendable = matches!(msg, MomMsg::Peer(_));
                if chaos.route(expendable, || Delivery::ToMom(self.idx, msg.clone())) {
                    let _ = self.raw.send(msg);
                }
            }
            _ => {
                let _ = self.raw.send(msg);
            }
        }
    }
}

/// A (possibly faulted) sender towards the server.
#[derive(Clone)]
pub(crate) struct ServerLink {
    raw: Sender<ServerCmd>,
    chaos: Option<Arc<ChaosCore>>,
}

impl ServerLink {
    pub(crate) fn new(raw: Sender<ServerCmd>, chaos: Option<Arc<ChaosCore>>) -> Self {
        ServerLink { raw, chaos }
    }

    /// Sends through the fault layer (mom→server traffic is sturdy: never
    /// dropped, possibly delayed or duplicated).
    pub(crate) fn send(&self, cmd: ServerCmd) {
        match &self.chaos {
            Some(chaos) => {
                if chaos.route(false, || Delivery::ToServer(cmd.clone())) {
                    let _ = self.raw.send(cmd);
                }
            }
            None => {
                let _ = self.raw.send(cmd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_plan_never_triggers() {
        let plan = FaultPlan::none(7);
        assert_eq!(plan.drop_permille, 0);
        assert_eq!(plan.dup_permille, 0);
        assert_eq!(plan.delay_permille, 0);
        assert!(plan.mom_kills.is_empty());
        assert!(plan.server_crashes.is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::from_seed(42, 8, Duration::from_millis(400));
        let b = FaultPlan::from_seed(42, 8, Duration::from_millis(400));
        assert_eq!(a.drop_permille, b.drop_permille);
        assert_eq!(a.mom_kills, b.mom_kills);
        assert_eq!(a.server_crashes, b.server_crashes);
        let mut seeds_with_crashes = 0;
        for seed in 0..200 {
            let p = FaultPlan::from_seed(seed, 4, Duration::from_millis(300));
            assert!(p.drop_permille <= 300);
            assert!(p.dup_permille <= 200);
            assert!(p.delay_permille <= 250);
            assert!(p.max_delay <= Duration::from_millis(40));
            assert!(p.mom_kills.len() <= 2);
            for &(at, node) in &p.mom_kills {
                assert!(at < Duration::from_millis(300));
                assert!(node < 4);
            }
            assert!(p.server_crashes.len() <= 2);
            assert!(p
                .server_crashes
                .windows(2)
                .all(|w| w[0].after_record < w[1].after_record));
            for c in &p.server_crashes {
                assert!((1..=40).contains(&c.after_record));
            }
            seeds_with_crashes += usize::from(!p.server_crashes.is_empty());
        }
        // The stream really exercises server crashes across the seed space.
        assert!(seeds_with_crashes > 50, "{seeds_with_crashes}");
    }

    #[test]
    fn zero_fault_links_deliver_immediately_and_in_order() {
        let (server_tx, server_rx) = std::sync::mpsc::channel();
        let (mom_tx, mom_rx) = std::sync::mpsc::channel();
        let chaos = Chaos::start(
            FaultPlan::none(1),
            "t.chaos0",
            server_tx.clone(),
            vec![mom_tx.clone()],
        );
        let link = MomLink::new(0, mom_tx, Some(chaos.core()));
        let slink = ServerLink::new(server_tx, Some(chaos.core()));
        for i in 0..50u64 {
            link.send(MomMsg::FromServer(dynbatch_server::ServerToMom::KillJob {
                job: dynbatch_core::JobId(i),
            }));
            slink.send(ServerCmd::JobExited(dynbatch_core::JobId(i), 0));
        }
        for i in 0..50u64 {
            match mom_rx.try_recv().expect("synchronous delivery") {
                MomMsg::FromServer(dynbatch_server::ServerToMom::KillJob { job }) => {
                    assert_eq!(job.0, i)
                }
                other => panic!("{other:?}"),
            }
            match server_rx.try_recv().expect("synchronous delivery") {
                ServerCmd::JobExited(job, 0) => assert_eq!(job.0, i),
                other => panic!("{other:?}"),
            }
        }
        chaos.shutdown();
    }

    #[test]
    fn dropping_plan_loses_only_expendable_messages() {
        let (server_tx, server_rx) = std::sync::mpsc::channel();
        let (mom_tx, mom_rx) = std::sync::mpsc::channel();
        let mut plan = FaultPlan::none(3);
        plan.drop_permille = 1000; // drop every droppable message
        let chaos = Chaos::start(plan, "t.chaos1", server_tx.clone(), vec![mom_tx.clone()]);
        let link = MomLink::new(0, mom_tx, Some(chaos.core()));
        let slink = ServerLink::new(server_tx, Some(chaos.core()));
        link.send(MomMsg::Peer(crate::wire::PeerMsg::JoinAck {
            job: dynbatch_core::JobId(1),
            round: 0,
            from: dynbatch_core::NodeId(2),
        }));
        slink.send(ServerCmd::JobExited(dynbatch_core::JobId(1), 0));
        assert!(mom_rx.try_recv().is_err(), "peer message dropped");
        assert!(server_rx.try_recv().is_ok(), "sturdy message survived");
        chaos.shutdown();
    }
}
