//! Property test pinning [`EventQueue`]'s observable semantics — FIFO
//! tie-break at equal timestamps, lazy cancellation, clock advancement,
//! and the batched `pop_group_into` / `drain_until` fast paths — against
//! a naive sorted-Vec reference model over random operation
//! interleavings.
//!
//! The model stores every scheduled event in issue order and answers each
//! query by scanning for the minimum `(time, issue index)` among live
//! entries; issue index equals the queue's tie-breaking sequence number,
//! so any divergence in ordering, liveness accounting or clock state
//! between the two implementations fails the run. Times are drawn from a
//! deliberately tiny domain so timestamp collisions (the FIFO-tie-break
//! regime) and cancellations of already-buried entries (the
//! lazy-cancellation regime) both occur constantly.

use dynbatch_core::testkit::{check, TestRng};
use dynbatch_core::SimTime;
use dynbatch_simtime::{EventQueue, ScheduledEvent, Token};

/// One scheduled event as the reference model sees it. The issue index
/// doubles as the expected sequence number and the payload.
struct ModelEvent {
    at: SimTime,
    alive: bool,
}

/// Naive reference: a flat Vec in issue order, scanned on every query.
#[derive(Default)]
struct Model {
    events: Vec<ModelEvent>,
    now: SimTime,
}

impl Model {
    fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| i)
    }

    fn len(&self) -> usize {
        self.live_indices().count()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.live_indices().map(|i| self.events[i].at).min()
    }

    fn schedule(&mut self, at: SimTime) -> usize {
        self.events.push(ModelEvent { at, alive: true });
        self.events.len() - 1
    }

    fn cancel(&mut self, idx: usize) -> bool {
        let was_alive = self.events[idx].alive;
        self.events[idx].alive = false;
        was_alive
    }

    /// Earliest live event by `(time, issue index)` — the contract's
    /// FIFO tie-break, computed the obvious quadratic way.
    fn pop(&mut self) -> Option<(SimTime, usize)> {
        let idx = self
            .live_indices()
            .min_by_key(|&i| (self.events[i].at, i))?;
        self.events[idx].alive = false;
        self.now = self.events[idx].at;
        Some((self.events[idx].at, idx))
    }

    fn pop_group(&mut self) -> Option<(SimTime, Vec<usize>)> {
        let at = self.peek_time()?;
        let group: Vec<usize> = self
            .live_indices()
            .filter(|&i| self.events[i].at == at)
            .collect();
        for &i in &group {
            self.events[i].alive = false;
        }
        self.now = at;
        Some((at, group))
    }

    fn drain_until(&mut self, limit: SimTime) -> Vec<(SimTime, usize)> {
        let mut due: Vec<(SimTime, usize)> = self
            .live_indices()
            .filter(|&i| self.events[i].at <= limit)
            .map(|i| (self.events[i].at, i))
            .collect();
        due.sort();
        for &(at, i) in &due {
            self.events[i].alive = false;
            self.now = at;
        }
        due
    }
}

fn assert_events_match(got: &[ScheduledEvent<usize>], want: &[(SimTime, usize)]) {
    let got: Vec<(SimTime, usize)> = got.iter().map(|e| (e.at, e.payload)).collect();
    assert_eq!(got, want, "popped events diverged from reference model");
    // Payload was chosen to equal the issue index, which must also equal
    // the tie-breaking sequence number the queue reports.
}

#[test]
fn queue_matches_sorted_vec_model() {
    check(64, 0xE0_51, |rng: &mut TestRng| {
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut model = Model::default();
        let mut tokens: Vec<Token> = Vec::new();
        let mut group = Vec::new();

        for _ in 0..120 {
            match rng.below(10) {
                // Schedule (weighted heaviest so the queue stays busy).
                0..=3 => {
                    // Tiny time domain: collisions are the common case.
                    let at = q.now() + dynbatch_core::SimDuration::from_secs(rng.below(6));
                    let idx = model.schedule(at);
                    tokens.push(q.schedule(at, idx));
                }
                // Cancel a random token — possibly already popped or
                // already cancelled, exercising the `false` path.
                4..=5 => {
                    if !tokens.is_empty() {
                        let idx = rng.below(tokens.len() as u64) as usize;
                        assert_eq!(q.cancel(tokens[idx]), model.cancel(idx));
                    }
                }
                6 => {
                    let got = q.pop();
                    let want = model.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some(e), Some((at, idx))) => {
                            assert_eq!((e.at, e.payload), (at, idx));
                            assert_eq!(e.seq, idx as u64, "seq must be issue order");
                        }
                        (got, want) => panic!("pop diverged: {got:?} vs {want:?}"),
                    }
                }
                7 => {
                    let got_time = q.pop_group_into(&mut group);
                    match (got_time, model.pop_group()) {
                        (None, None) => assert!(group.is_empty()),
                        (Some(at), Some((want_at, idxs))) => {
                            assert_eq!(at, want_at);
                            let want: Vec<(SimTime, usize)> =
                                idxs.into_iter().map(|i| (want_at, i)).collect();
                            assert_events_match(&group, &want);
                        }
                        (got, want) => panic!("pop_group diverged: {got:?} vs {want:?}"),
                    }
                }
                8 => {
                    let limit = q.now() + dynbatch_core::SimDuration::from_secs(rng.below(8));
                    q.drain_until(limit, &mut group);
                    let want = model.drain_until(limit);
                    assert_events_match(&group, &want);
                }
                _ => {
                    assert_eq!(q.peek_time(), model.peek_time());
                }
            }
            // Invariants checked after every single operation.
            assert_eq!(q.len(), model.len());
            assert_eq!(q.is_empty(), model.len() == 0);
            assert_eq!(q.now(), model.now);
            assert_eq!(q.peek_time(), model.peek_time());
        }

        // Drain both to the end: total order must match exactly.
        while let Some((at, idx)) = model.pop() {
            let e = q.pop().expect("queue drained before model");
            assert_eq!((e.at, e.payload, e.seq), (at, idx, idx as u64));
        }
        assert!(q.pop().is_none());
    });
}

#[test]
fn reset_preserves_semantics() {
    // After reset, a recycled queue must behave exactly like a fresh one:
    // sequence numbers restart at zero and the clock rewinds.
    check(16, 2014, |rng: &mut TestRng| {
        let mut q: EventQueue<usize> = EventQueue::new();
        for i in 0..rng.range_usize(1, 20) {
            q.schedule(SimTime::from_secs(rng.below(50)), i);
        }
        for _ in 0..rng.range_usize(0, 10) {
            q.pop();
        }
        q.reset();
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), None);
        let tok = q.schedule(SimTime::from_secs(3), 7);
        let e = q.pop().expect("just scheduled");
        assert_eq!((e.at, e.seq, e.payload), (SimTime::from_secs(3), 0, 7));
        assert!(!q.cancel(tok), "already popped");
    });
}
