//! The deterministic event queue.

use dynbatch_core::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(u64);

/// An event as stored in the queue.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-breaking sequence number (insertion order).
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
    cancelled_slot: usize,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks time ties by insertion order, which makes the
        // whole simulation deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events fire in `(time, insertion sequence)` order. Cancellation is O(1)
/// (lazy): cancelled events are skipped on pop.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    cancelled: Vec<bool>,
    next_seq: u64,
    now: SimTime,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            live: 0,
        }
    }

    /// The current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the past (before the last popped event's time):
    /// causality violations are always bugs.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> Token {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.cancelled.len();
        self.cancelled.push(false);
        self.heap.push(HeapEntry {
            at,
            seq,
            payload,
            cancelled_slot: slot,
        });
        self.live += 1;
        Token(slot as u64)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending.
    pub fn cancel(&mut self, token: Token) -> bool {
        let slot = token.0 as usize;
        match self.cancelled.get_mut(slot) {
            Some(flag) if !*flag => {
                *flag = true;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Pops the next live event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled[entry.cancelled_slot] {
                continue;
            }
            self.cancelled[entry.cancelled_slot] = true; // slot consumed
            self.live -= 1;
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            return Some(ScheduledEvent {
                at: entry.at,
                seq: entry.seq,
                payload: entry.payload,
            });
        }
        None
    }

    /// Pops **all** live events sharing the earliest pending timestamp
    /// into `out` (cleared first), in insertion-sequence order, and
    /// advances the clock to that timestamp. Returns the group's time, or
    /// `None` when the queue is drained.
    ///
    /// This is the batched-pop fast path for simultaneous-event bursts:
    /// the caller pays one peek per event instead of a full
    /// [`EventQueue::peek_time`] between pops — and `peek_time` degrades
    /// to a linear scan whenever lazily-cancelled entries are buried in
    /// the heap, which made the pop-then-peek loop quadratic on
    /// cancellation-heavy runs.
    pub fn pop_group_into(&mut self, out: &mut Vec<ScheduledEvent<E>>) -> Option<SimTime> {
        out.clear();
        let first = self.pop()?;
        let at = first.at;
        out.push(first);
        while let Some(top) = self.heap.peek() {
            if self.cancelled[top.cancelled_slot] {
                // Lazily-cancelled entry: discard and keep scanning.
                self.heap.pop();
                continue;
            }
            if top.at != at {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.cancelled[entry.cancelled_slot] = true; // slot consumed
            self.live -= 1;
            out.push(ScheduledEvent {
                at: entry.at,
                seq: entry.seq,
                payload: entry.payload,
            });
        }
        Some(at)
    }

    /// Pops all live events with time ≤ `limit` into `out` (cleared
    /// first), in `(time, insertion sequence)` order, advancing the clock
    /// to the last popped event's time. Events scheduled after `limit`
    /// stay queued.
    pub fn drain_until(&mut self, limit: SimTime, out: &mut Vec<ScheduledEvent<E>>) {
        out.clear();
        loop {
            match self.heap.peek() {
                Some(top) if self.cancelled[top.cancelled_slot] => {
                    self.heap.pop();
                }
                Some(top) if top.at <= limit => {
                    let entry = self.heap.pop().expect("peeked entry exists");
                    self.cancelled[entry.cancelled_slot] = true; // slot consumed
                    self.live -= 1;
                    self.now = entry.at;
                    out.push(ScheduledEvent {
                        at: entry.at,
                        seq: entry.seq,
                        payload: entry.payload,
                    });
                }
                _ => break,
            }
        }
    }

    /// Empties the queue and rewinds the clock to zero, **retaining** the
    /// heap and cancellation-table storage. A sweep worker recycling one
    /// simulator across hundreds of runs calls this instead of allocating
    /// a fresh queue per run.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.live = 0;
    }

    /// The time of the next live event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Fast path: nothing cancelled, the heap top is authoritative.
        if self.live == self.heap.len() {
            return self.heap.peek().map(|e| e.at);
        }
        // Slow path: find the minimum live entry.
        self.heap
            .iter()
            .filter(|e| !self.cancelled[e.cancelled_slot])
            .map(|e| (e.at, e.seq))
            .min()
            .map(|(at, _)| at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(1), 2);
        q.schedule(t(1), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(5), ());
        q.pop();
        q.schedule(t(1), ());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.peek_time(), Some(t(1)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn same_time_scheduling_during_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.payload, 1);
        // Scheduling at the current instant is allowed (zero-delay events).
        q.schedule(q.now(), 2);
        assert_eq!(q.pop().unwrap().payload, 2);
    }

    #[test]
    fn pop_group_collects_one_timestamp_in_seq_order() {
        let mut q = EventQueue::new();
        q.schedule(t(2), "late");
        q.schedule(t(1), "a");
        q.schedule(t(1), "b");
        let c = q.schedule(t(1), "c");
        q.schedule(t(1), "d");
        q.cancel(c);
        let mut buf = Vec::new();
        assert_eq!(q.pop_group_into(&mut buf), Some(t(1)));
        let got: Vec<_> = buf.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec!["a", "b", "d"], "seq order, cancelled skipped");
        assert_eq!(q.now(), t(1));
        assert_eq!(q.pop_group_into(&mut buf), Some(t(2)));
        assert_eq!(buf.len(), 1);
        assert_eq!(q.pop_group_into(&mut buf), None);
        assert!(buf.is_empty(), "drained pop_group clears the buffer");
    }

    #[test]
    fn pop_group_leaves_later_events_live() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(1), 2);
        q.schedule(t(5), 3);
        let mut buf = Vec::new();
        q.pop_group_into(&mut buf);
        assert_eq!(q.len(), 1);
        // Zero-delay events scheduled mid-group land in a *new* group at
        // the same instant — exactly what the pop-then-peek loop did.
        q.schedule(t(1), 4);
        assert_eq!(q.pop_group_into(&mut buf), Some(t(1)));
        assert_eq!(buf[0].payload, 4);
    }

    #[test]
    fn drain_until_respects_limit_and_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), "c");
        q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        q.schedule(t(2), "b2");
        q.schedule(t(9), "z");
        q.cancel(b);
        let mut buf = Vec::new();
        q.drain_until(t(3), &mut buf);
        let got: Vec<_> = buf.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec!["a", "b2", "c"]);
        assert_eq!(q.now(), t(3));
        assert_eq!(q.len(), 1);
        q.drain_until(t(3), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn reset_rewinds_clock_and_clears_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(4), "a");
        q.schedule(t(6), "b");
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert!(!q.cancel(a), "stale tokens are dead after reset");
        // Scheduling "into the past" relative to the pre-reset clock is
        // legal again, and sequence numbering restarts.
        q.schedule(t(1), "x");
        q.schedule(t(1), "y");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["x", "y"]);
    }

    #[test]
    fn interleaved_schedule_pop_is_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 0);
        q.schedule(t(20), 1);
        let mut fired = Vec::new();
        while let Some(e) = q.pop() {
            fired.push(e.payload);
            if e.payload == 0 {
                q.schedule(t(15), 2);
                q.schedule(t(15), 3);
            }
        }
        assert_eq!(fired, vec![0, 2, 3, 1]);
    }
}
