//! # dynbatch-simtime
//!
//! A small, deterministic discrete-event simulation (DES) engine.
//!
//! The paper's evaluation ran on a real 15-node cluster for hours of wall
//! time. We reproduce the same scheduling decisions in virtual time: the
//! batch-system state machines are driven by an [`EventQueue`] whose
//! ordering is fully deterministic — events fire in (time, insertion
//! sequence) order, so identical inputs always produce identical runs.
//!
//! The engine is generic over the event payload type and deliberately tiny:
//! the orchestration logic lives in `dynbatch-sim`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod queue;
pub mod rng;

pub use queue::{EventQueue, ScheduledEvent, Token};
pub use rng::SplitMix64;
