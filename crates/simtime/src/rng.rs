//! A tiny deterministic RNG for simulation-internal randomness.
//!
//! Workload *generation* uses the `rand` crate (in `dynbatch-workload`);
//! this SplitMix64 exists so the simulator itself never depends on global
//! RNG state — every stochastic choice inside a run is reproducible from
//! the run's seed.

/// The SplitMix64 generator (Steele, Lea & Flood 2014). Passes BigCrush on
/// its 64-bit output; plenty for jitter and shuffles.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    ///
    /// Uses rejection sampling to avoid modulo bias.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And actually permutes with overwhelming probability.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
