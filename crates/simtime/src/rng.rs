//! A tiny deterministic RNG for simulation-internal randomness.
//!
//! Workload *generation* uses the `rand` crate (in `dynbatch-workload`);
//! this SplitMix64 exists so the simulator itself never depends on global
//! RNG state — every stochastic choice inside a run is reproducible from
//! the run's seed.

/// The SplitMix64 generator (Steele, Lea & Flood 2014). Passes BigCrush on
/// its 64-bit output; plenty for jitter and shuffles.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    ///
    /// Uses rejection sampling to avoid modulo bias.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: true with probability `permille`/1000.
    ///
    /// `permille >= 1000` is always true, `0` never — so a zero-fault
    /// plan consumes no randomness budget unevenly across classes.
    pub fn chance_permille(&mut self, permille: u32) -> bool {
        if permille == 0 {
            return false;
        }
        if permille >= 1000 {
            return true;
        }
        self.next_below(1000) < permille as u64
    }

    /// A statistically independent child generator for stream `label`.
    ///
    /// Deriving (rather than cloning) keeps sub-systems that draw at
    /// different rates from perturbing each other's sequences — the
    /// fault-injection harness derives one stream per concern.
    pub fn derive(&self, label: u64) -> SplitMix64 {
        let mut child = SplitMix64 {
            state: self
                .state
                .wrapping_add(label.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        };
        // One warm-up step decorrelates nearby labels.
        let _ = child.next_u64();
        child
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And actually permutes with overwhelming probability.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn chance_extremes_draw_nothing() {
        let mut r = SplitMix64::new(11);
        let before = r.next_u64();
        let mut r = SplitMix64::new(11);
        assert!(!r.chance_permille(0));
        assert!(r.chance_permille(1000));
        // Neither extreme consumed the stream.
        assert_eq!(r.next_u64(), before);
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut r = SplitMix64::new(5);
        let hits = (0..10_000).filter(|_| r.chance_permille(250)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let root = SplitMix64::new(99);
        let mut a1 = root.derive(1);
        let mut a2 = root.derive(1);
        let mut b = root.derive(2);
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64(), "same label, same stream");
        assert_ne!(x, b.next_u64(), "different labels diverge");
    }
}
