//! The multi-tenant command reactor — the server's client front-end.
//!
//! Thousands of concurrent clients submit textual commands (`qsub`,
//! `qstat`, `qdel`, `dynget`, `dynfree`); the reactor multiplexes them
//! into the single-writer [`crate::PbsServer`] without giving up the
//! byte-identical determinism contract:
//!
//! * **Ticket-stamped admission.** Every command draws a ticket from a
//!   shared monotonic counter *at send time* ([`ReactorClient::send`]),
//!   fixing its application position before any thread race can occur.
//!   The reactor holds out-of-order arrivals in a reorder buffer and
//!   applies only the contiguous ticket prefix, so the command order —
//!   and therefore every assigned job id, every scheduling decision, and
//!   the journal itself — is independent of client interleaving.
//! * **Ack-on-append (group commit).** A command's reply is delivered
//!   only after the *whole batch* it was applied in has returned from the
//!   server — by which point every mutation's journal record has been
//!   appended ([`crate::PbsServer`] logs before returning). An acked
//!   command therefore always survives crash recovery, and the acks of a
//!   batch amortise into one flush. `ack_each` mode
//!   ([`Reactor::set_ack_each`]) acks per command, as the perf baseline.
//! * **Backpressure without blocking.** Replies go out through bounded
//!   per-connection channels with `try_send`; a stalled reader's replies
//!   spill into a bounded overflow queue and, past the limit, the
//!   connection is dropped. The reactor — and the scheduler cycle it runs
//!   beside — **never blocks on a slow client**.
//!
//! The reactor is driver-agnostic: [`Reactor::poll_with`] hands each
//! parsed command to a closure (the daemon applies it to its `PbsServer`
//! between scheduler cycles; tests apply to a bare server). A malformed
//! command consumes its ticket and earns [`Reply::Denied`] — parse
//! failures are deterministic, so they too replay identically.

use dynbatch_cluster::Allocation;
use dynbatch_core::{
    ExecutionModel, GroupId, JobId, JobSpec, NodeId, SimDuration, SimTime, UserId,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Submit a job.
    QSub(Box<JobSpec>),
    /// Query a job's state.
    QStat(JobId),
    /// Cancel a job.
    QDel(JobId),
    /// A dynamic allocation request (negotiated when a timeout is given).
    DynGet {
        /// The evolving job.
        job: JobId,
        /// Cores requested.
        extra: u32,
        /// Negotiation window, milliseconds from command application; the
        /// deadline is `now + timeout_ms`.
        timeout_ms: Option<u64>,
    },
    /// A dynamic release.
    DynFree {
        /// The releasing job.
        job: JobId,
        /// The released hosts.
        released: Allocation,
    },
}

/// The reply a command earns. Delivery order per connection is FIFO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `qsub` accepted; the assigned id.
    Submitted(JobId),
    /// The command took effect (qdel, dynget queued/granted, dynfree).
    Ok,
    /// `qstat` answer: the job's current state.
    Status(String),
    /// `qstat` answer served from a replication follower under the
    /// bounded-staleness contract: the state plus the follower's
    /// applied-record watermark (every journal record through that
    /// position is reflected in the answer).
    StatusAt {
        /// The job's state, as [`Reply::Status`] would report it.
        state: String,
        /// The serving follower's applied-record watermark.
        watermark: u64,
    },
    /// The command was refused — malformed, unknown job, out of order.
    /// Never a panic: denial is the contract for bad input.
    Denied(String),
}

/// How acks are released to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AckMode {
    /// Buffer the batch's replies, flush after the whole batch applied
    /// (every journal record appended) — the default.
    GroupCommit,
    /// Deliver each reply as its command applies (perf baseline).
    AckEach,
}

/// One step of a [`Reactor::poll_batch`] drive.
pub enum BatchEvent<'a> {
    /// Apply this command and return `Some(reply)`.
    Apply {
        /// The command's application position.
        ticket: u64,
        /// The issuing connection — staleness-aware read routing keys
        /// read-your-writes bounds on it.
        conn: u64,
        /// The parsed command.
        cmd: &'a Command,
    },
    /// The group-commit batch has fully applied and its held acks are
    /// about to flush. Return `None`. Not fired for empty batches or in
    /// ack-each mode (those acks already went out per command).
    Commit,
}

/// What travels from clients to the reactor.
enum Envelope {
    /// A new connection and its bounded reply channel.
    Connect {
        conn: u64,
        replies: SyncSender<Reply>,
    },
    /// One command line, position fixed by `ticket`.
    Command {
        conn: u64,
        ticket: u64,
        line: String,
    },
    /// The client hung up; buffered commands still apply (their tickets
    /// must stay contiguous), but replies are discarded.
    Disconnect { conn: u64 },
}

/// Reactor-side per-connection state.
struct Conn {
    replies: SyncSender<Reply>,
    /// Replies that did not fit the bounded channel, oldest first.
    overflow: VecDeque<Reply>,
    /// Set when the peer vanished or overflowed past the limit; further
    /// replies are discarded.
    dropped: bool,
}

/// Counters exposed for tests and the perf harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Commands applied (including parse denials, which consume tickets).
    pub applied: u64,
    /// Commands denied at the parse stage.
    pub denied_parse: u64,
    /// Non-empty poll batches.
    pub batches: u64,
    /// Connections dropped for overflowing the backpressure limit.
    pub dropped_slow: u64,
}

/// The poll-based command reactor. Single-threaded by design: it runs on
/// the server daemon's thread, between scheduler cycles, and is the only
/// caller into the single-writer server.
pub struct Reactor {
    rx: Receiver<Envelope>,
    tx: Sender<Envelope>,
    /// Shared ticket counter: every client stamps commands from it.
    tickets: Arc<AtomicU64>,
    conn_ids: Arc<AtomicU64>,
    /// Wake hook armed once; clients invoke it after every send so a
    /// hosting event loop can interrupt its blocking receive.
    wake: Arc<OnceLock<Box<dyn Fn() + Send + Sync>>>,
    /// Reorder buffer: ticket → (conn, line). Only the contiguous prefix
    /// starting at `next_apply` is admissible.
    pending: BTreeMap<u64, (u64, String)>,
    next_apply: u64,
    conns: HashMap<u64, Conn>,
    mode: AckMode,
    reply_capacity: usize,
    overflow_limit: usize,
    stats: ReactorStats,
}

impl Default for Reactor {
    fn default() -> Self {
        Self::new()
    }
}

impl Reactor {
    /// A reactor with group-commit acks, a 64-reply channel per
    /// connection and a 1024-reply overflow limit.
    pub fn new() -> Self {
        let (tx, rx) = channel();
        Reactor {
            rx,
            tx,
            tickets: Arc::new(AtomicU64::new(0)),
            conn_ids: Arc::new(AtomicU64::new(0)),
            wake: Arc::new(OnceLock::new()),
            pending: BTreeMap::new(),
            next_apply: 0,
            conns: HashMap::new(),
            mode: AckMode::GroupCommit,
            reply_capacity: 64,
            overflow_limit: 1024,
            stats: ReactorStats::default(),
        }
    }

    /// Switches between per-command acks (`true`) and group commit.
    pub fn set_ack_each(&mut self, on: bool) {
        self.mode = if on {
            AckMode::AckEach
        } else {
            AckMode::GroupCommit
        };
    }

    /// Shrinks the per-connection bounded reply channel (tests exercise
    /// backpressure with tiny capacities). Applies to future connections.
    pub fn set_reply_capacity(&mut self, capacity: usize) {
        self.reply_capacity = capacity.max(1);
    }

    /// Caps the per-connection overflow queue; a connection exceeding it
    /// is dropped (slow-reader policy).
    pub fn set_overflow_limit(&mut self, limit: usize) {
        self.overflow_limit = limit;
    }

    /// Arms the wake hook clients invoke after each send. One-shot: the
    /// hosting loop installs it before serving traffic.
    pub fn set_wake(&self, hook: impl Fn() + Send + Sync + 'static) {
        let _ = self.wake.set(Box::new(hook));
    }

    /// Opens a client connection. Cheap and thread-safe; the handle is
    /// `Send`, so one reactor serves any number of client threads.
    pub fn connect(&self) -> ReactorClient {
        self.connector().connect()
    }

    /// A detachable, cloneable connection factory: a hosting daemon keeps
    /// the connector on the client side while the reactor itself lives on
    /// the server thread.
    pub fn connector(&self) -> ReactorConnector {
        ReactorConnector {
            tx: self.tx.clone(),
            tickets: Arc::clone(&self.tickets),
            conn_ids: Arc::clone(&self.conn_ids),
            wake: Arc::clone(&self.wake),
            reply_capacity: self.reply_capacity,
        }
    }

    /// Drains the mailbox and applies every admissible command:
    /// the contiguous ticket prefix, in ticket order. `apply` receives
    /// `(ticket, command)` and returns the reply; parse failures never
    /// reach it (they deny deterministically and consume the ticket).
    /// Returns the number of commands consumed.
    pub fn poll_with<F>(&mut self, apply: F) -> usize
    where
        F: FnMut(u64, &Command) -> Reply,
    {
        self.poll_bounded(u64::MAX, apply)
    }

    /// Like [`Reactor::poll_with`], but admits only tickets below
    /// `limit` — the equivalence harness uses this to interleave
    /// deterministic world-advance between command prefixes while all
    /// commands race in flight from real client threads.
    pub fn poll_bounded<F>(&mut self, limit: u64, mut apply: F) -> usize
    where
        F: FnMut(u64, &Command) -> Reply,
    {
        self.poll_batch(limit, |ev| match ev {
            BatchEvent::Apply { ticket, cmd, .. } => Some(apply(ticket, cmd)),
            BatchEvent::Commit => None,
        })
    }

    /// The full-control drive: like [`Reactor::poll_bounded`], but the
    /// closure also sees the issuing connection id (for staleness-aware
    /// read routing) and a [`BatchEvent::Commit`] event fired after the
    /// whole group-commit batch has applied but *before* its held acks
    /// flush — the hook where an `ack_after_replicate` host blocks until
    /// the batch's journal records are on every live follower, making
    /// every ack replication-safe, not just crash-safe.
    pub fn poll_batch<F>(&mut self, limit: u64, mut f: F) -> usize
    where
        F: FnMut(BatchEvent<'_>) -> Option<Reply>,
    {
        self.drain_mailbox();
        let mut held: Vec<(u64, Reply)> = Vec::new();
        let mut n = 0usize;
        while self.next_apply < limit {
            let Some((conn, line)) = self.pending.remove(&self.next_apply) else {
                break;
            };
            let ticket = self.next_apply;
            let reply = match parse_command(&line) {
                Ok(cmd) => f(BatchEvent::Apply {
                    ticket,
                    conn,
                    cmd: &cmd,
                })
                .unwrap_or_else(|| Reply::Denied("apply produced no reply".into())),
                Err(e) => {
                    self.stats.denied_parse += 1;
                    Reply::Denied(e)
                }
            };
            self.next_apply += 1;
            n += 1;
            match self.mode {
                AckMode::AckEach => self.deliver(conn, reply),
                AckMode::GroupCommit => held.push((conn, reply)),
            }
        }
        // Group-commit flush: `apply` has returned for the whole batch,
        // so every mutation's journal record is appended — each ack below
        // is crash-safe by construction. The Commit event runs first, so
        // a replicating host can additionally gate the flush on follower
        // acknowledgement.
        if !held.is_empty() {
            let _ = f(BatchEvent::Commit);
        }
        for (conn, reply) in held {
            self.deliver(conn, reply);
        }
        if n > 0 {
            self.stats.batches += 1;
            self.stats.applied += n as u64;
        }
        n
    }

    /// Moves every queued envelope into the reorder buffer / conn table.
    fn drain_mailbox(&mut self) {
        while let Ok(env) = self.rx.try_recv() {
            match env {
                Envelope::Connect { conn, replies } => {
                    self.conns.insert(
                        conn,
                        Conn {
                            replies,
                            overflow: VecDeque::new(),
                            dropped: false,
                        },
                    );
                }
                Envelope::Command { conn, ticket, line } => {
                    self.pending.insert(ticket, (conn, line));
                }
                Envelope::Disconnect { conn } => {
                    self.conns.remove(&conn);
                }
            }
        }
    }

    /// Non-blocking reply delivery: bounded channel first, then the
    /// overflow queue, then — past the limit — the connection is dropped.
    fn deliver(&mut self, conn_id: u64, reply: Reply) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return; // disconnected: reply discarded, command still applied
        };
        if conn.dropped {
            return;
        }
        // FIFO: spilled replies go out before this one.
        while let Some(front) = conn.overflow.front() {
            match conn.replies.try_send(front.clone()) {
                Ok(()) => {
                    conn.overflow.pop_front();
                }
                Err(TrySendError::Full(_)) => break,
                Err(TrySendError::Disconnected(_)) => {
                    conn.dropped = true;
                    conn.overflow.clear();
                    return;
                }
            }
        }
        let reply = if conn.overflow.is_empty() {
            match conn.replies.try_send(reply) {
                Ok(()) => return,
                Err(TrySendError::Full(r)) => r,
                Err(TrySendError::Disconnected(_)) => {
                    conn.dropped = true;
                    return;
                }
            }
        } else {
            reply
        };
        conn.overflow.push_back(reply);
        if conn.overflow.len() > self.overflow_limit {
            conn.dropped = true;
            conn.overflow.clear();
            self.stats.dropped_slow += 1;
        }
    }

    /// Commands received but not yet admissible (waiting on a ticket gap
    /// or a [`Reactor::poll_bounded`] limit). Excludes the mailbox.
    pub fn reorder_backlog(&self) -> usize {
        self.pending.len()
    }

    /// The next ticket the reactor will apply.
    pub fn next_apply(&self) -> u64 {
        self.next_apply
    }

    /// Tickets issued so far (commands sent, applied or in flight).
    pub fn tickets_issued(&self) -> u64 {
        self.tickets.load(Ordering::Relaxed)
    }

    /// Counters.
    pub fn stats(&self) -> ReactorStats {
        self.stats
    }
}

/// A cloneable connection factory for a [`Reactor`] owned by another
/// thread (see [`Reactor::connector`]).
#[derive(Clone)]
pub struct ReactorConnector {
    tx: Sender<Envelope>,
    tickets: Arc<AtomicU64>,
    conn_ids: Arc<AtomicU64>,
    wake: Arc<OnceLock<Box<dyn Fn() + Send + Sync>>>,
    reply_capacity: usize,
}

impl ReactorConnector {
    /// Opens a client connection (see [`Reactor::connect`]).
    pub fn connect(&self) -> ReactorClient {
        let conn = self.conn_ids.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = sync_channel(self.reply_capacity);
        let _ = self.tx.send(Envelope::Connect {
            conn,
            replies: reply_tx,
        });
        if let Some(w) = self.wake.get() {
            w();
        }
        ReactorClient {
            conn,
            tx: self.tx.clone(),
            tickets: Arc::clone(&self.tickets),
            wake: Arc::clone(&self.wake),
            replies: reply_rx,
        }
    }
}

/// A client handle: `Send`, cheap to clone state from, usable from any
/// thread. Dropping it without [`ReactorClient::disconnect`] leaves the
/// reactor-side connection allocated until the reactor is dropped (the
/// reply channel's hang-up is still detected on the next delivery).
pub struct ReactorClient {
    conn: u64,
    tx: Sender<Envelope>,
    tickets: Arc<AtomicU64>,
    wake: Arc<OnceLock<Box<dyn Fn() + Send + Sync>>>,
    replies: Receiver<Reply>,
}

impl ReactorClient {
    /// Sends one command line; returns the ticket that fixes its
    /// application position. Never blocks.
    pub fn send(&self, line: &str) -> u64 {
        let ticket = self.tickets.fetch_add(1, Ordering::Relaxed);
        self.send_ticketed(ticket, line);
        ticket
    }

    /// Sends a command under a **caller-assigned** ticket. For harnesses
    /// that pre-assign the global order (e.g. ticket = index in a replay
    /// stream); do not mix with [`ReactorClient::send`] unless the caller
    /// guarantees the combined ticket space stays contiguous.
    pub fn send_ticketed(&self, ticket: u64, line: &str) {
        let _ = self.tx.send(Envelope::Command {
            conn: self.conn,
            ticket,
            line: line.to_owned(),
        });
        if let Some(w) = self.wake.get() {
            w();
        }
    }

    /// Blocking receive of the next reply (`None`: reactor gone).
    pub fn recv(&self) -> Option<Reply> {
        self.replies.recv().ok()
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Reply> {
        self.replies.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Reply> {
        self.replies.try_recv().ok()
    }

    /// Hangs up. Commands already sent still apply; their replies are
    /// discarded.
    pub fn disconnect(self) {
        let _ = self.tx.send(Envelope::Disconnect { conn: self.conn });
        if let Some(w) = self.wake.get() {
            w();
        }
    }
}

// ---------------------------------------------------------------------------
// Command grammar.

/// Parses one command line. The grammar (whitespace-separated):
///
/// ```text
/// qsub name=<s> user=<u32> group=<u32> cores=<u32> wall_ms=<u64>
/// qsub name=<s> user=<u32> group=<u32> cores=<u32> class=evolving
///      set_s=<u64> det_s=<u64> extra=<u32> [timeout_ms=<u64>]
/// qstat <job>
/// qdel <job>
/// dynget <job> <extra> [timeout_ms]
/// dynfree <job> <node>:<cores>[,<node>:<cores>…]
/// ```
///
/// Errors are strings destined for [`Reply::Denied`]; parsing is pure, so
/// a malformed line denies identically on every replay.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut it = line.split_whitespace();
    let verb = it.next().ok_or_else(|| "empty command".to_owned())?;
    let parse_job = |tok: Option<&str>| -> Result<JobId, String> {
        tok.ok_or_else(|| format!("{verb}: missing job id"))?
            .parse::<u64>()
            .map(JobId)
            .map_err(|_| format!("{verb}: job id is not an integer"))
    };
    match verb {
        "qsub" => {
            let mut fields: HashMap<&str, &str> = HashMap::new();
            for tok in it {
                let (k, v) = tok
                    .split_once('=')
                    .ok_or_else(|| format!("qsub: `{tok}` is not key=value"))?;
                if fields.insert(k, v).is_some() {
                    return Err(format!("qsub: duplicate field `{k}`"));
                }
            }
            let req = |key: &str| -> Result<&str, String> {
                fields
                    .get(key)
                    .copied()
                    .ok_or_else(|| format!("qsub: missing `{key}`"))
            };
            let num = |key: &str| -> Result<u64, String> {
                req(key)?
                    .parse::<u64>()
                    .map_err(|_| format!("qsub: `{key}` is not an integer"))
            };
            let num32 = |key: &str| -> Result<u32, String> {
                u32::try_from(num(key)?).map_err(|_| format!("qsub: `{key}` exceeds u32"))
            };
            let name = req("name")?;
            let user = UserId(num32("user")?);
            let group = GroupId(num32("group")?);
            let cores = num32("cores")?;
            let spec = match fields.get("class").copied() {
                None | Some("rigid") => JobSpec::rigid(
                    name,
                    user,
                    group,
                    cores,
                    SimDuration::from_millis(num("wall_ms")?),
                ),
                Some("evolving") => {
                    let mut spec = JobSpec::evolving(
                        name,
                        user,
                        group,
                        cores,
                        ExecutionModel::esp_evolving(num("set_s")?, num("det_s")?, num32("extra")?),
                    );
                    if fields.contains_key("timeout_ms") {
                        spec.dyn_timeout = Some(SimDuration::from_millis(num("timeout_ms")?));
                    }
                    spec
                }
                Some(other) => return Err(format!("qsub: unknown class `{other}`")),
            };
            spec.validate().map_err(|e| format!("qsub: {e}"))?;
            Ok(Command::QSub(Box::new(spec)))
        }
        "qstat" => Ok(Command::QStat(parse_job(it.next())?)),
        "qdel" => Ok(Command::QDel(parse_job(it.next())?)),
        "dynget" => {
            let job = parse_job(it.next())?;
            let extra = it
                .next()
                .ok_or("dynget: missing core count")?
                .parse::<u32>()
                .map_err(|_| "dynget: core count is not a u32".to_owned())?;
            let timeout_ms = match it.next() {
                None => None,
                Some(tok) => Some(
                    tok.parse::<u64>()
                        .map_err(|_| "dynget: timeout is not an integer".to_owned())?,
                ),
            };
            Ok(Command::DynGet {
                job,
                extra,
                timeout_ms,
            })
        }
        "dynfree" => {
            let job = parse_job(it.next())?;
            let mut released = Allocation::empty();
            for pair in it.next().ok_or("dynfree: missing hostlist")?.split(',') {
                let (node, cores) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("dynfree: `{pair}` is not node:cores"))?;
                let node = node
                    .parse::<u32>()
                    .map_err(|_| "dynfree: node is not a u32".to_owned())?;
                let cores = cores
                    .parse::<u32>()
                    .map_err(|_| "dynfree: cores is not a u32".to_owned())?;
                if cores == 0 {
                    return Err("dynfree: zero-core entry".into());
                }
                released.add(NodeId(node), cores);
            }
            Ok(Command::DynFree { job, released })
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Formats a `qsub` line for [`parse_command`] — the generator side of
/// the grammar, used by the SWF replay driver and tests.
pub fn format_qsub(spec: &JobSpec) -> String {
    use dynbatch_core::JobClass;
    let base = format!(
        "qsub name={} user={} group={} cores={}",
        spec.name, spec.user.0, spec.group.0, spec.cores
    );
    match spec.class {
        JobClass::Evolving => {
            let (set_s, det_s) = match spec.exec {
                ExecutionModel::Evolving { set, det, .. } => (set.as_secs(), det.as_secs()),
                _ => (spec.walltime.as_secs(), 0),
            };
            let mut line = format!(
                "{base} class=evolving set_s={set_s} det_s={det_s} extra={}",
                spec.exec.extra_cores()
            );
            if let Some(t) = spec.dyn_timeout {
                line.push_str(&format!(" timeout_ms={}", t.as_millis()));
            }
            line
        }
        _ => format!("{base} wall_ms={}", spec.walltime.as_millis()),
    }
}

/// Applies one parsed command to a bare [`crate::PbsServer`] — the serial
/// reference semantics the daemon mirrors (minus timer/mom side effects)
/// and the equivalence harness uses directly. Every mutation's journal
/// record is appended before this returns, which is what makes the
/// reactor's ack-on-append contract hold.
pub fn apply_to_server(server: &mut crate::PbsServer, cmd: &Command, now: SimTime) -> Reply {
    match cmd {
        Command::QSub(spec) => match server.qsub((**spec).clone(), now) {
            Ok(id) => Reply::Submitted(id),
            Err(e) => Reply::Denied(e.to_string()),
        },
        Command::QStat(job) => match server.job(*job) {
            Ok(j) => Reply::Status(format!("{:?}", j.state)),
            Err(e) => Reply::Denied(e.to_string()),
        },
        Command::QDel(job) => match server.qdel(*job, now) {
            Ok(()) => Reply::Ok,
            Err(e) => Reply::Denied(e.to_string()),
        },
        Command::DynGet {
            job,
            extra,
            timeout_ms,
        } => {
            let deadline = timeout_ms.map(|w| now + SimDuration::from_millis(w));
            match server.tm_dynget_negotiated(*job, *extra, deadline, now) {
                Ok(()) => Reply::Ok,
                Err(e) => Reply::Denied(e.to_string()),
            }
        }
        Command::DynFree { job, released } => match server.tm_dynfree(*job, released, now) {
            Ok(()) => Reply::Ok,
            Err(e) => Reply::Denied(e.to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PbsServer;
    use dynbatch_cluster::Cluster;
    use dynbatch_core::AllocPolicy;
    use std::thread;

    fn echo_reply(ticket: u64, _cmd: &Command) -> Reply {
        Reply::Status(format!("t{ticket}"))
    }

    #[test]
    fn tickets_fix_order_regardless_of_arrival() {
        let mut r = Reactor::new();
        let a = r.connect();
        let b = r.connect();
        // b's command is sent under a later ticket but delivered first on
        // its own channel — the reactor must still apply a's first.
        let tb = 1u64;
        let ta = 0u64;
        b.send_ticketed(tb, "qstat 2");
        a.send_ticketed(ta, "qstat 1");
        let mut order = Vec::new();
        r.poll_with(|ticket, cmd| {
            order.push((ticket, cmd.clone()));
            Reply::Ok
        });
        assert_eq!(
            order,
            vec![(0, Command::QStat(JobId(1))), (1, Command::QStat(JobId(2)))]
        );
    }

    #[test]
    fn contiguous_prefix_only() {
        let mut r = Reactor::new();
        let c = r.connect();
        c.send_ticketed(1, "qstat 2"); // gap: ticket 0 missing
        assert_eq!(r.poll_with(echo_reply), 0);
        assert_eq!(r.reorder_backlog(), 1);
        c.send_ticketed(0, "qstat 1");
        assert_eq!(r.poll_with(echo_reply), 2);
        assert_eq!(r.reorder_backlog(), 0);
        assert_eq!(c.try_recv(), Some(Reply::Status("t0".into())));
        assert_eq!(c.try_recv(), Some(Reply::Status("t1".into())));
    }

    #[test]
    fn poll_bounded_holds_later_tickets() {
        let mut r = Reactor::new();
        let c = r.connect();
        for i in 0..4 {
            c.send(&format!("qstat {i}"));
        }
        assert_eq!(r.poll_bounded(2, echo_reply), 2);
        assert_eq!(r.reorder_backlog(), 2);
        assert_eq!(r.poll_with(echo_reply), 2);
    }

    #[test]
    fn group_commit_acks_arrive_after_the_batch() {
        let mut r = Reactor::new();
        let c = r.connect();
        c.send("qstat 1");
        c.send("qstat 2");
        let mut seen_during_batch = Vec::new();
        r.poll_with(|t, _| {
            // During the batch no reply may have been delivered yet.
            seen_during_batch.push(c.try_recv());
            Reply::Status(format!("t{t}"))
        });
        assert_eq!(seen_during_batch, vec![None, None]);
        assert_eq!(c.try_recv(), Some(Reply::Status("t0".into())));
        assert_eq!(c.try_recv(), Some(Reply::Status("t1".into())));
    }

    #[test]
    fn ack_each_delivers_immediately() {
        let mut r = Reactor::new();
        r.set_ack_each(true);
        let c = r.connect();
        c.send("qstat 1");
        c.send("qstat 2");
        let mut seen = Vec::new();
        r.poll_with(|t, _| {
            seen.push(c.try_recv().is_some());
            Reply::Status(format!("t{t}"))
        });
        // The second command already sees the first's ack delivered.
        assert_eq!(seen, vec![false, true]);
    }

    #[test]
    fn malformed_commands_deny_and_consume_their_ticket() {
        let mut r = Reactor::new();
        let c = r.connect();
        c.send("frobnicate 1");
        c.send("qsub name=X cores=banana");
        c.send("dynget 5");
        c.send("qstat 1"); // must still apply after the denials
        let mut applied = 0;
        r.poll_with(|_, _| {
            applied += 1;
            Reply::Ok
        });
        assert_eq!(applied, 1, "only the well-formed command reaches apply");
        assert_eq!(r.stats().denied_parse, 3);
        assert_eq!(r.next_apply(), 4, "denials consume tickets");
        for _ in 0..3 {
            assert!(matches!(c.try_recv(), Some(Reply::Denied(_))));
        }
        assert_eq!(c.try_recv(), Some(Reply::Ok));
    }

    #[test]
    fn slow_reader_overflows_then_drops_without_blocking() {
        let mut r = Reactor::new();
        r.set_reply_capacity(2);
        r.set_overflow_limit(3);
        let c = r.connect();
        let fast = r.connect();
        // 10 replies at capacity 2 + overflow 3: must drop the conn, and
        // the poll must return (never block on the stalled reader).
        for i in 0..10 {
            c.send(&format!("qstat {i}"));
        }
        fast.send("qstat 99");
        r.poll_with(echo_reply);
        assert_eq!(r.stats().dropped_slow, 1);
        // The fast client is unaffected.
        assert_eq!(fast.try_recv(), Some(Reply::Status("t10".into())));
        // The slow client still gets what fit before the drop.
        assert!(c.try_recv().is_some());
    }

    #[test]
    fn disconnect_discards_replies_but_applies_commands() {
        let mut r = Reactor::new();
        let c = r.connect();
        c.send("qstat 1");
        c.disconnect();
        let mut applied = 0;
        r.poll_with(|_, _| {
            applied += 1;
            Reply::Ok
        });
        assert_eq!(applied, 1);
    }

    #[test]
    fn grammar_round_trips_and_rejects() {
        let spec = JobSpec::rigid(
            "A",
            UserId(3),
            GroupId(1),
            16,
            SimDuration::from_millis(120_500),
        );
        let Command::QSub(parsed) = parse_command(&format_qsub(&spec)).unwrap() else {
            panic!("not a qsub");
        };
        assert_eq!(*parsed, spec);

        let ev = JobSpec::evolving(
            "EV",
            UserId(2),
            GroupId(0),
            8,
            ExecutionModel::esp_evolving(1846, 1230, 4),
        );
        let Command::QSub(parsed) = parse_command(&format_qsub(&ev)).unwrap() else {
            panic!("not a qsub");
        };
        assert_eq!(*parsed, ev);

        assert_eq!(
            parse_command("dynget 5 4 60000").unwrap(),
            Command::DynGet {
                job: JobId(5),
                extra: 4,
                timeout_ms: Some(60_000)
            }
        );
        assert_eq!(
            parse_command("dynfree 5 3:2,4:1").unwrap(),
            Command::DynFree {
                job: JobId(5),
                released: Allocation::from_pairs([(NodeId(3), 2), (NodeId(4), 1)]),
            }
        );
        for bad in [
            "",
            "qsub",
            "qsub name=X",
            "qsub name=X user=1 group=0 cores=0 wall_ms=10",
            "qsub name=X user=1 group=0 cores=4 class=warp",
            "qstat",
            "qdel xyz",
            "dynget 1",
            "dynfree 1 3",
            "dynfree 1 3:0",
            "launch-missiles",
        ] {
            assert!(parse_command(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn concurrent_clients_replay_byte_identically() {
        // The determinism contract end-to-end at module scale: the same
        // command set sent from 8 racing threads (tickets pre-assigned)
        // lands the server in the exact serial-order state.
        let lines: Vec<String> = (0..40)
            .map(|i| match i % 4 {
                0 => format!(
                    "qsub name=J{i} user={} group=0 cores=4 wall_ms=60000",
                    i % 5
                ),
                1 => format!("qstat {}", i / 2),
                2 => "dynget 999 4".to_owned(), // denies: unknown job
                _ => format!("qdel {i}"),       // mostly denies: not submitted yet
            })
            .collect();

        let serial_digest = {
            let mut s = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
            s.enable_journal(0);
            for line in &lines {
                if let Ok(cmd) = parse_command(line) {
                    apply_to_server(&mut s, &cmd, SimTime::ZERO);
                }
            }
            s.state_digest()
        };

        for _ in 0..3 {
            let mut r = Reactor::new();
            let clients: Vec<ReactorClient> = (0..8).map(|_| r.connect()).collect();
            thread::scope(|scope| {
                for (t, c) in clients.into_iter().enumerate() {
                    let lines = &lines;
                    scope.spawn(move || {
                        for (i, line) in lines.iter().enumerate() {
                            if i % 8 == t {
                                c.send_ticketed(i as u64, line);
                            }
                        }
                    });
                }
            });
            let mut s = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
            s.enable_journal(0);
            while r.next_apply() < lines.len() as u64 {
                r.poll_with(|_, cmd| apply_to_server(&mut s, cmd, SimTime::ZERO));
            }
            assert_eq!(s.state_digest(), serial_digest);
        }
    }
}
